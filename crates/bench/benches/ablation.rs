//! Ablations of the design choices DESIGN.md §8 calls out.
//!
//! Each variant runs a short evolution on a reduced Adult instance; wall
//! time per run is the headline number, and the printed final-mean scores
//! (via `--nocapture`-style stderr) let quality be compared offline from
//! the emitted CSVs of the main harness.
//!
//! 1. Selection weighting: inverse / complement / rank / literal Eq. 3.
//! 2. Crowding pairing: index-paired (paper) vs distance-paired (classic).
//! 3. Aggregators: mean (Eq. 1), max (Eq. 2), weighted, distance-to-ideal.
//! 4. Incremental vs full mutation — and crossover — evaluation (the
//!    future-work item; the patch-based crossover path is new).
//! 5. Parallel vs serial initial-population evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdp_core::{evaluate_all, EvoConfig, Evolution, ReplacementPolicy, SelectionWeighting};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_dataset::SubTable;
use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
use cdp_sdc::{build_population, NamedProtection, SuiteConfig};

const RECORDS: usize = 150;
const ITERS: usize = 30;

fn setup() -> (Evaluator, Vec<NamedProtection>) {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(5).with_records(RECORDS));
    let pop = build_population(&ds, &SuiteConfig::small(), 5).expect("suite");
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    (ev, pop)
}

fn run(ev: &Evaluator, pop: &[NamedProtection], cfg: EvoConfig) -> f64 {
    let items: Vec<(String, SubTable)> = pop
        .iter()
        .map(|p| (p.name.clone(), p.data.clone()))
        .collect();
    let outcome = Evolution::new(ev.clone(), cfg)
        .with_named_population(items)
        .expect("compatible population")
        .run();
    outcome.summary().final_mean
}

fn bench_ablation(c: &mut Criterion) {
    let (ev, pop) = setup();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    for sel in [
        SelectionWeighting::InverseScore,
        SelectionWeighting::Complement,
        SelectionWeighting::Rank,
        SelectionWeighting::RawScore,
        SelectionWeighting::Tournament { k: 3 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("selection", sel.name()),
            &sel,
            |b, &sel| {
                b.iter(|| {
                    let cfg = EvoConfig::builder()
                        .iterations(ITERS)
                        .selection(sel)
                        .seed(1)
                        .build();
                    std::hint::black_box(run(&ev, &pop, cfg))
                })
            },
        );
    }

    for rep in [
        ReplacementPolicy::IndexPairedCrowding,
        ReplacementPolicy::DistancePairedCrowding,
    ] {
        group.bench_with_input(BenchmarkId::new("crowding", rep.name()), &rep, |b, &rep| {
            b.iter(|| {
                let cfg = EvoConfig::builder()
                    .iterations(ITERS)
                    .mutation_rate(0.0)
                    .replacement(rep)
                    .seed(2)
                    .build();
                std::hint::black_box(run(&ev, &pop, cfg))
            })
        });
    }

    for (name, agg) in [
        ("mean", ScoreAggregator::Mean),
        ("max", ScoreAggregator::Max),
        ("weighted", ScoreAggregator::Weighted { w: 0.3 }),
        ("dist", ScoreAggregator::DistanceToIdeal),
    ] {
        group.bench_with_input(BenchmarkId::new("aggregator", name), &agg, |b, &agg| {
            b.iter(|| {
                let cfg = EvoConfig::builder()
                    .iterations(ITERS)
                    .aggregator(agg)
                    .seed(3)
                    .build();
                std::hint::black_box(run(&ev, &pop, cfg))
            })
        });
    }

    for (name, incremental) in [("full", false), ("incremental", true)] {
        group.bench_with_input(
            BenchmarkId::new("mutation_eval", name),
            &incremental,
            |b, &inc| {
                b.iter(|| {
                    let cfg = EvoConfig::builder()
                        .iterations(ITERS)
                        .mutation_rate(1.0)
                        .incremental_mutation(inc)
                        .seed(4)
                        .build();
                    std::hint::black_box(run(&ev, &pop, cfg))
                })
            },
        );
    }

    for (name, incremental) in [("full", false), ("incremental", true)] {
        group.bench_with_input(
            BenchmarkId::new("crossover_eval", name),
            &incremental,
            |b, &inc| {
                b.iter(|| {
                    let cfg = EvoConfig::builder()
                        .iterations(ITERS)
                        .mutation_rate(0.0)
                        .incremental_crossover(inc)
                        .seed(6)
                        .build();
                    std::hint::black_box(run(&ev, &pop, cfg))
                })
            },
        );
    }

    let items: Vec<(String, SubTable)> = pop
        .iter()
        .map(|p| (p.name.clone(), p.data.clone()))
        .collect();
    for (name, parallel) in [("serial", false), ("parallel", true)] {
        group.bench_with_input(BenchmarkId::new("init_eval", name), &parallel, |b, &par| {
            b.iter(|| std::hint::black_box(evaluate_all(&ev, &items, par)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
