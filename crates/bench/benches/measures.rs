//! Per-measure cost across record counts.
//!
//! The paper names fitness cost its major drawback; this bench shows where
//! it goes: the three O(n²) linkage measures dwarf the O(n) information-
//! loss measures, and the gap widens quadratically with the file size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_dataset::SubTable;
use cdp_metrics::dr::interval_disclosure;
use cdp_metrics::il::{ctbil, dbil, ebil};
use cdp_metrics::linkage::{dbrl, prl, rsrl};
use cdp_metrics::PreparedOriginal;
use cdp_sdc::{MethodContext, Pram, PramMode, ProtectionMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn masked_copy(sub: &SubTable, seed: u64) -> SubTable {
    let hs: Vec<&cdp_dataset::Hierarchy> = vec![];
    let ctx = MethodContext { hierarchies: &hs };
    let mut rng = StdRng::seed_from_u64(seed);
    Pram::new(0.8, PramMode::Proportional)
        .protect(sub, &ctx, &mut rng)
        .expect("pram")
}

fn bench_measures(c: &mut Criterion) {
    let mut group = c.benchmark_group("measure_cost");
    group.sample_size(10);

    for records in [100usize, 300, 600] {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(records));
        let orig = ds.protected_subtable();
        let prep = PreparedOriginal::new(&orig);
        let masked = masked_copy(&orig, 7);

        group.bench_with_input(BenchmarkId::new("ctbil", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(ctbil(&prep, &masked)))
        });
        group.bench_with_input(BenchmarkId::new("dbil", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(dbil(&prep, &masked)))
        });
        group.bench_with_input(BenchmarkId::new("ebil", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(ebil(&prep, &masked)))
        });
        group.bench_with_input(BenchmarkId::new("id", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(interval_disclosure(&prep, &masked, 0.1)))
        });
        group.bench_with_input(BenchmarkId::new("dbrl", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(dbrl(&prep, &masked)))
        });
        group.bench_with_input(BenchmarkId::new("prl", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(prl(&prep, &masked, 15)))
        });
        group.bench_with_input(BenchmarkId::new("rsrl", records), &records, |b, _| {
            b.iter(|| std::hint::black_box(rsrl(&prep, &masked, 0.05)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_measures);
criterion_main!(benches);
