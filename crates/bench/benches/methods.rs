//! Protection-method cost at paper scale.
//!
//! The six SDC methods build the initial population once per experiment;
//! this bench documents their relative cost (microaggregation's sort-based
//! grouping vs PRAM's per-cell sampling vs the O(n·c) recodings).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_sdc::{
    Aggregate, BottomCoding, GlobalRecoding, Grouping, MethodContext, MicroVariant,
    Microaggregation, Pram, PramMode, ProtectionMethod, RankSwapping, TopCoding,
};

fn bench_methods(c: &mut Criterion) {
    let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(1));
    let sub = ds.protected_subtable();
    let hierarchies = ds.protected_hierarchies();
    let ctx = MethodContext {
        hierarchies: &hierarchies,
    };

    let methods: Vec<Box<dyn ProtectionMethod>> = vec![
        Box::new(Microaggregation::new(
            5,
            MicroVariant {
                grouping: Grouping::Univariate,
                aggregate: Aggregate::Median,
            },
        )),
        Box::new(Microaggregation::new(
            5,
            MicroVariant {
                grouping: Grouping::Multivariate,
                aggregate: Aggregate::Mode,
            },
        )),
        Box::new(BottomCoding { fraction: 0.1 }),
        Box::new(TopCoding { fraction: 0.1 }),
        Box::new(GlobalRecoding::uniform(1)),
        Box::new(RankSwapping::new(5)),
        Box::new(Pram::new(0.8, PramMode::Proportional)),
        Box::new(Pram::new(0.8, PramMode::Invariant)),
    ];

    let mut group = c.benchmark_group("protection_methods");
    group.sample_size(20);
    for method in &methods {
        group.bench_function(method.name(), |b| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| std::hint::black_box(method.protect(&sub, &ctx, &mut rng).expect("protect")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
