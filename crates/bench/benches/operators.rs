//! Genetic-operator cost across the four datasets.
//!
//! Confirms the paper's observation that the evolutionary machinery itself
//! is negligible (its testbed measured 0.02 s of non-fitness work per
//! generation): both operators are linear in the protected cells and run in
//! microseconds.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cdp_core::operators::{crossover, mutate};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_cost");
    group.sample_size(20);

    for kind in DatasetKind::all() {
        let ds = kind.generate(&GeneratorConfig::seeded(1));
        let a = ds.protected_subtable();
        let b = {
            let other = kind.generate(&GeneratorConfig::seeded(2));
            other.protected_subtable()
        };

        group.bench_with_input(BenchmarkId::new("mutate", kind.name()), &a, |bench, a| {
            let mut rng = StdRng::seed_from_u64(3);
            bench.iter_batched(
                || a.clone(),
                |mut child| {
                    mutate(&mut child, &mut rng);
                    std::hint::black_box(child)
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_with_input(
            BenchmarkId::new("crossover", kind.name()),
            &(a, b),
            |bench, (a, b)| {
                let mut rng = StdRng::seed_from_u64(4);
                bench.iter(|| std::hint::black_box(crossover(a, b, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
