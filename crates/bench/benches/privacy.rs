//! Cost of the privacy-model layer: equivalence partitioning, model
//! assessment, and the two lattice search strategies.
//!
//! Two claims are measured:
//! * partitioning is O(n log n) and dwarfed by the paper's O(n²) linkage
//!   measures, so adding a k-anonymity audit to a fitness function is
//!   nearly free;
//! * predictive tagging (the imprecision-cost search) computes strictly
//!   fewer partitions than the exhaustive discernibility search, and
//!   Samarati's binary search fewer still.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_privacy::{models, CostKind, LatticeSearch, Partition, Recoder};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_partition");
    for records in [100usize, 300, 1000] {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(records));
        let sub = ds.protected_subtable();
        group.bench_with_input(
            BenchmarkId::new("of_subtable", records),
            &records,
            |b, _| b.iter(|| std::hint::black_box(Partition::of_subtable(&sub).unwrap())),
        );
        let partition = Partition::of_subtable(&sub).unwrap();
        group.bench_with_input(
            BenchmarkId::new("k_anonymity", records),
            &records,
            |b, _| b.iter(|| std::hint::black_box(models::k_anonymity(&partition))),
        );
        let sensitive = ds.table.column(0);
        let n_cats = ds.table.schema().attr(0).n_categories();
        group.bench_with_input(
            BenchmarkId::new("l_diversity", records),
            &records,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        models::l_diversity(&partition, sensitive, n_cats).unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_lattice_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_lattice_search");
    group.sample_size(10);
    for records in [300usize, 1000] {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(records));
        let sub = ds.protected_subtable();
        let hierarchies = ds.protected_hierarchies();
        let recoder = Recoder::new(&sub, hierarchies).unwrap();
        let search = LatticeSearch::new(&sub, &recoder);

        group.bench_with_input(
            BenchmarkId::new("samarati_k3", records),
            &records,
            |b, _| b.iter(|| std::hint::black_box(search.samarati_minimal(3).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("optimal_tagged_k3", records),
            &records,
            |b, _| {
                b.iter(|| std::hint::black_box(search.optimal(3, CostKind::Imprecision).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("optimal_full_k3", records),
            &records,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(search.optimal(3, CostKind::Discernibility).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partition, bench_lattice_search);
criterion_main!(benches);
