//! Criterion counterpart of the paper's in-text timing table: cost of a
//! mutation generation vs a crossover generation and the fitness share.
//!
//! The paper reports 120.34 s / 242.48 s per generation with > 99.9% spent
//! in the fitness function. Absolute numbers are testbed-bound; the claims
//! to verify are (a) fitness dominates, (b) crossover generations cost
//! about twice mutation generations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cdp_core::operators::{crossover, mutate};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig};
use cdp_sdc::{build_population, NamedProtection, SuiteConfig};

const RECORDS: usize = 300;

fn setup() -> (Evaluator, Vec<NamedProtection>) {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(RECORDS));
    let pop = build_population(&ds, &SuiteConfig::paper(ds.kind), 1).expect("suite");
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    (ev, pop)
}

fn bench_timing(c: &mut Criterion) {
    let (ev, pop) = setup();
    let mut group = c.benchmark_group("generation_cost");
    group.sample_size(10);

    group.bench_function("fitness_evaluation", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % pop.len();
            std::hint::black_box(ev.evaluate(&pop[i].data))
        })
    });

    group.bench_function("mutation_operator_only", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter_batched(
            || pop[0].data.clone(),
            |mut child| {
                mutate(&mut child, &mut rng);
                std::hint::black_box(child)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("crossover_operator_only", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| std::hint::black_box(crossover(&pop[0].data, &pop[1].data, &mut rng)))
    });

    group.bench_function("mutation_generation", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let i = rng.gen_range(0..pop.len());
            let mut child = pop[i].data.clone();
            mutate(&mut child, &mut rng);
            std::hint::black_box(ev.evaluate(&child))
        })
    });

    group.bench_function("crossover_generation", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let i = rng.gen_range(0..pop.len());
            let j = rng.gen_range(0..pop.len());
            let (z1, z2, _) = crossover(&pop[i].data, &pop[j].data, &mut rng);
            std::hint::black_box((ev.evaluate(&z1), ev.evaluate(&z2)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_timing);
criterion_main!(benches);
