//! Dataset diagnostics: verify that the synthetic stand-ins carry the
//! structure the substitution argument (DESIGN.md §5) relies on.
//!
//! For each of the paper's four datasets, prints per-protected-attribute
//! cardinalities, marginal entropy, skew, the pairwise Cramér's V
//! associations, and the raw disclosure indicators (uniqueness,
//! k-anonymity) of the protected sub-table.
//!
//! ```text
//! cargo run --release -p cdp-bench --bin diagnose [--records N] [--seed S]
//! ```

use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_dataset::stats::{entropy, k_anonymity, table_association, uniqueness};

fn main() {
    let mut records = None;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--records" => {
                records = args.next().and_then(|v| v.parse().ok());
            }
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(1);
            }
        }
    }

    for kind in DatasetKind::all() {
        let mut gc = GeneratorConfig::seeded(seed);
        if let Some(n) = records {
            gc = gc.with_records(n);
        }
        let ds = kind.generate(&gc);
        let schema = ds.table.schema();
        println!(
            "== {} — {} records × {} attributes ==",
            kind.name(),
            ds.table.n_rows(),
            ds.table.n_attrs()
        );
        println!("protected attributes:");
        for &a in &ds.protected {
            let attr = schema.attr(a);
            let col = ds.table.column(a);
            let h = entropy(col, attr.n_categories());
            let h_max = (attr.n_categories() as f64).log2();
            println!(
                "  {:<16} {:>2} categories ({:?}), H = {:.2}/{:.2} bits",
                attr.name(),
                attr.n_categories(),
                attr.kind(),
                h,
                h_max
            );
        }
        println!("protected-pair associations (Cramér's V):");
        for (i, &a) in ds.protected.iter().enumerate() {
            for &b in ds.protected.iter().skip(i + 1) {
                println!(
                    "  {:<16} x {:<16} V = {:.3}",
                    schema.attr(a).name(),
                    schema.attr(b).name(),
                    table_association(&ds.table, a, b)
                );
            }
        }
        let sub = ds.protected_subtable();
        println!(
            "raw disclosure indicators: uniqueness = {:.1}%, k-anonymity = {}\n",
            100.0 * uniqueness(&sub),
            k_anonymity(&sub)
        );
    }
}
