//! Delta-vs-full evaluation benchmark: the perf baseline for the
//! `Evaluator::assess` / `Evaluator::reassess` hot path.
//!
//! Five sections, written as `BENCH_evaluator.json`:
//!
//! 1. **micro** — per-dataset-size cost of a full assessment vs a
//!    single-cell and a quarter-segment patch re-assessment (ns/op and the
//!    resulting speedups), across 1k/5k/20k/50k/100k rows (full
//!    assessments run the default blocked linkage).
//! 2. **linkage** — all-pairs vs blocked DBRL credit scans per size, with
//!    the distinct-pattern counts behind the blocked complexity bound.
//!    The all-pairs scan (and the credit-equality cross-check over DBRL
//!    *and* RSRL) runs only up to 20k rows — beyond that O(n²·a) is the
//!    wall this section exists to document.
//! 3. **prepare** — cold `Evaluator::new` preparation vs rehydrating the
//!    same prepared state from a `cdp_metrics::snapshot` file, at
//!    1k/20k/100k rows, with the snapshot size and a bit-identity check
//!    of the rehydrated evaluator's assessment.
//! 4. **evolution** — a 250-iteration paper-suite evolution run with the
//!    incremental knobs off vs on: wall time, the full/incremental
//!    assessment split, and the best point's (IL, DR) drift.
//! 5. **objectives** — the objective-vector overhead: the same NSGA-II
//!    run over the canonical (IL, DR) pair vs the 3-component
//!    (IL, DR, eps) vector, with per-generation wall cost and the
//!    N=3/N=2 ratio (dominance, crowding, and hypervolume all scale
//!    with the vector length; the canonical path must stay at its
//!    pre-refactor cost).
//!
//! ```text
//! cargo run --release -p cdp_bench --bin evaluator_bench -- \
//!     [--quick] [--check-drift] [--rows N] [--no-evolution] \
//!     [--out PATH] [--seed S]
//! ```
//!
//! `--quick` shrinks sizes and budgets for CI smoke runs (~seconds).
//! `--rows N` replaces the size ladder with the single size `N` (scaling
//! smoke runs). `--no-evolution` skips section 3.
//! `--check-drift` exits nonzero unless (a) the full-vs-incremental
//! evolution runs publish a best point with *exactly zero* (IL, DR) drift,
//! (b) the patch-vs-full exactness delta is exactly zero, (c) every
//! blocked-vs-all-pairs credit comparison is `==`-equal, and (d) every
//! snapshot-rehydrated evaluator assesses bit-identically to its cold
//! counterpart — all four are bit-exactness contracts, so any difference
//! at all is a regression.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use cdp_core::{EvoConfig, Evolution, EvolutionOutcome, Nsga2, NsgaConfig};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_dataset::{Code, PatternIndex, SubTable};
use cdp_metrics::linkage::{
    dbrl_credits, dbrl_credits_blocked, rsrl_credits, rsrl_credits_blocked,
};
use cdp_metrics::{
    snapshot, Evaluator, MaskedStats, MetricConfig, ObjectiveSet, Patch, PreparedOriginal,
};
use cdp_sdc::{build_population, SuiteConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    quick: bool,
    check_drift: bool,
    rows: Option<usize>,
    no_evolution: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check_drift: false,
        rows: None,
        no_evolution: false,
        out: PathBuf::from("BENCH_evaluator.json"),
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check-drift" => args.check_drift = true,
            "--rows" => args.rows = it.next().and_then(|v| v.parse().ok()),
            "--no-evolution" => args.no_evolution = true,
            "--out" => args.out = it.next().map(PathBuf::from).unwrap_or(args.out),
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(1);
            }
        }
    }
    args
}

/// Largest row count at which the O(n²·a) all-pairs scans still run in
/// reasonable bench time; beyond it the linkage section reports the
/// blocked numbers alone.
const PAIRS_CEILING: usize = 20_000;

/// A masked variant with ~30% of cells re-drawn (a realistic distance from
/// the original, so linkage work is neither trivial nor degenerate).
fn masked_variant(original: &SubTable, seed: u64) -> SubTable {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE9C);
    let mut m = original.clone();
    for k in 0..m.n_attrs() {
        let c = m.attr(k).n_categories() as Code;
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.3) {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
    }
    m
}

struct MicroRow {
    rows: usize,
    ns_assess: f64,
    ns_reassess_cell: f64,
    ns_reassess_segment: f64,
}

fn micro_row(rows: usize, assess_reps: usize, seed: u64) -> MicroRow {
    let original = DatasetKind::Adult
        .generate(&GeneratorConfig::seeded(seed).with_records(rows))
        .protected_subtable();
    let ev = Evaluator::new(&original, MetricConfig::default()).expect("evaluator");
    let mut masked = masked_variant(&original, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);

    let t0 = Instant::now();
    for _ in 0..assess_reps {
        std::hint::black_box(ev.assess(&masked));
    }
    let ns_assess = t0.elapsed().as_nanos() as f64 / assess_reps as f64;

    // single-cell patches into a reused scratch (the mutation path's shape)
    let state = ev.assess(&masked);
    let mut scratch = state.clone();
    let cell_reps = (assess_reps * 16).max(32);
    let t0 = Instant::now();
    for _ in 0..cell_reps {
        let row = rng.gen_range(0..masked.n_rows());
        let k = rng.gen_range(0..masked.n_attrs());
        let c = masked.attr(k).n_categories() as Code;
        let old = masked.get(row, k);
        masked.set(row, k, rng.gen_range(0..c));
        ev.reassess_into(&state, &masked, &Patch::cell(row, k, old), &mut scratch);
        masked.set(row, k, old); // revert so `state` stays the baseline
    }
    let ns_reassess_cell = t0.elapsed().as_nanos() as f64 / cell_reps as f64;

    // quarter-of-the-file flat segments (the crossover path's shape)
    let other = masked_variant(&original, seed ^ 0x5EC);
    let seg_reps = (assess_reps * 4).max(8);
    let seg_len = (masked.flat_len() / 4).max(1);
    let t0 = Instant::now();
    for _ in 0..seg_reps {
        let s = rng.gen_range(0..masked.flat_len() - seg_len + 1);
        let r = s + seg_len - 1;
        let old_values: Vec<Code> = (s..=r).map(|p| masked.get_flat(p)).collect();
        let mut child = masked.clone();
        for p in s..=r {
            child.set_flat(p, other.get_flat(p));
        }
        std::hint::black_box(ev.reassess(&state, &child, &Patch::flat_range(s, r, old_values)));
    }
    let ns_reassess_segment = t0.elapsed().as_nanos() as f64 / seg_reps as f64;

    MicroRow {
        rows,
        ns_assess,
        ns_reassess_cell,
        ns_reassess_segment,
    }
}

struct LinkageRow {
    rows: usize,
    patterns_original: usize,
    patterns_masked: usize,
    ns_blocked: f64,
    /// `None` above `PAIRS_CEILING` — the all-pairs scan is skipped there.
    ns_pairs: Option<f64>,
    /// DBRL *and* RSRL credit vectors `==`-equal across backends
    /// (`None` when the all-pairs reference was skipped).
    credits_equal: Option<bool>,
}

/// Time the blocked DBRL credit scan against the all-pairs reference on the
/// same (original, masked) pair and cross-check bit-equality of the DBRL
/// and RSRL credit vectors. The all-pairs side runs only up to
/// `PAIRS_CEILING` rows.
fn linkage_row(rows: usize, seed: u64) -> LinkageRow {
    let original = DatasetKind::Adult
        .generate(&GeneratorConfig::seeded(seed).with_records(rows))
        .protected_subtable();
    let prep = PreparedOriginal::new(&original);
    let masked = masked_variant(&original, seed);
    let index = PatternIndex::build(&masked);

    let blocked_reps = 5;
    let t0 = Instant::now();
    for _ in 0..blocked_reps {
        std::hint::black_box(dbrl_credits_blocked(&prep, &masked, &index));
    }
    let ns_blocked = t0.elapsed().as_nanos() as f64 / blocked_reps as f64;

    let (ns_pairs, credits_equal) = if rows <= PAIRS_CEILING {
        let t0 = Instant::now();
        let pairs_dbrl = dbrl_credits(&prep, &masked);
        let ns_pairs = t0.elapsed().as_nanos() as f64;
        let blocked_dbrl = dbrl_credits_blocked(&prep, &masked, &index);
        let stats = MaskedStats::build(&prep, &masked);
        let window = (MetricConfig::default().rsrl_window_fraction * rows as f64).max(1.0);
        let equal = blocked_dbrl == pairs_dbrl
            && rsrl_credits_blocked(&prep, &stats, &index, window)
                == rsrl_credits(&prep, &stats, &masked, window);
        (Some(ns_pairs), Some(equal))
    } else {
        (None, None)
    };

    LinkageRow {
        rows,
        patterns_original: prep.pattern_index().n_patterns(),
        patterns_masked: index.n_patterns(),
        ns_blocked,
        ns_pairs,
        credits_equal,
    }
}

struct PrepareRow {
    rows: usize,
    ms_prepare_cold: f64,
    ms_snapshot_load: f64,
    snapshot_bytes: u64,
    rehydrated_identical: bool,
}

/// Time a cold `Evaluator::new` preparation against rehydrating the same
/// prepared state from a snapshot file, and cross-check that the
/// rehydrated evaluator assesses a masked variant bit-identically.
fn prepare_row(rows: usize, seed: u64) -> PrepareRow {
    let original = DatasetKind::Adult
        .generate(&GeneratorConfig::seeded(seed).with_records(rows))
        .protected_subtable();

    let t0 = Instant::now();
    let cold = Evaluator::new(&original, MetricConfig::default()).expect("evaluator");
    let ms_prepare_cold = t0.elapsed().as_secs_f64() * 1e3;

    let dir = std::env::temp_dir().join("cdp_bench_snapshots");
    let path = snapshot::write(&cold, &dir).expect("write snapshot");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let t0 = Instant::now();
    let loaded = snapshot::load(&path, &original, &MetricConfig::default()).expect("load snapshot");
    let ms_snapshot_load = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_file(&path);

    let masked = masked_variant(&original, seed);
    let (a, b) = (
        cold.assess(&masked).assessment,
        loaded.assess(&masked).assessment,
    );
    let rehydrated_identical = [
        (a.il_parts.ctbil, b.il_parts.ctbil),
        (a.il_parts.dbil, b.il_parts.dbil),
        (a.il_parts.ebil, b.il_parts.ebil),
        (a.dr_parts.id, b.dr_parts.id),
        (a.dr_parts.dbrl, b.dr_parts.dbrl),
        (a.dr_parts.prl, b.dr_parts.prl),
        (a.dr_parts.rsrl, b.dr_parts.rsrl),
    ]
    .into_iter()
    .all(|(x, y)| x.to_bits() == y.to_bits());

    PrepareRow {
        rows,
        ms_prepare_cold,
        ms_snapshot_load,
        snapshot_bytes,
        rehydrated_identical,
    }
}

/// Largest absolute difference across **all seven measures** between a
/// multi-cell patch re-assessment and the full recompute (the delta engine
/// is bit-exact, PRL/RSRL included, so this must be exactly zero).
fn exactness_delta(seed: u64) -> f64 {
    let original = DatasetKind::Adult
        .generate(&GeneratorConfig::seeded(seed).with_records(400))
        .protected_subtable();
    let ev = Evaluator::new(&original, MetricConfig::default()).expect("evaluator");
    let mut masked = masked_variant(&original, seed);
    let state = ev.assess(&masked);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE44C7);
    let mut cells = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while cells.len() < 60 {
        let row = rng.gen_range(0..masked.n_rows());
        let k = rng.gen_range(0..masked.n_attrs());
        if !seen.insert((row, k)) {
            continue;
        }
        let c = masked.attr(k).n_categories() as Code;
        let old = masked.get(row, k);
        masked.set(row, k, rng.gen_range(0..c));
        cells.push(cdp_metrics::PatchCell { row, attr: k, old });
    }
    let patched = ev.reassess(&state, &masked, &Patch::from_cells(cells));
    let full = ev.assess(&masked);
    let (p, f) = (patched.assessment, full.assessment);
    [
        p.il_parts.ctbil - f.il_parts.ctbil,
        p.il_parts.dbil - f.il_parts.dbil,
        p.il_parts.ebil - f.il_parts.ebil,
        p.dr_parts.id - f.dr_parts.id,
        p.dr_parts.dbrl - f.dr_parts.dbrl,
        p.dr_parts.prl - f.dr_parts.prl,
        p.dr_parts.rsrl - f.dr_parts.rsrl,
    ]
    .into_iter()
    .map(f64::abs)
    .fold(0.0, f64::max)
}

struct EvoRun {
    wall_ms: f64,
    outcome: EvolutionOutcome,
}

fn evolution_run(
    kind: DatasetKind,
    records: usize,
    iterations: usize,
    paper_suite: bool,
    incremental: bool,
    seed: u64,
) -> EvoRun {
    let ds = kind.generate(&GeneratorConfig::seeded(seed).with_records(records));
    let suite = if paper_suite {
        SuiteConfig::paper(kind)
    } else {
        SuiteConfig::small()
    };
    let pop = build_population(&ds, &suite, seed).expect("suite");
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let cfg = EvoConfig::builder()
        .iterations(iterations)
        .incremental_mutation(incremental)
        .incremental_crossover(incremental)
        .seed(seed)
        .build();
    let t0 = Instant::now();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .expect("compatible population")
        .run();
    EvoRun {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        outcome,
    }
}

struct ObjRun {
    n: usize,
    wall_ms: f64,
    ms_per_generation: f64,
    front_size: usize,
    final_hypervolume: f64,
    evaluations: usize,
}

/// One NSGA-II run over `il,dr` plus `extra` objective keys, timed
/// wall-to-wall (evaluator preparation excluded — the vector length only
/// touches selection, so that is what the section isolates).
fn objectives_run(extra: &[&str], records: usize, generations: usize, seed: u64) -> ObjRun {
    let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(seed).with_records(records));
    let pop = build_population(&ds, &SuiteConfig::small(), seed).expect("suite");
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let mut keys = vec!["il", "dr"];
    keys.extend_from_slice(extra);
    let objectives = ObjectiveSet::from_keys(&keys).expect("valid objective keys");
    let cfg = NsgaConfig {
        generations,
        seed,
        ..NsgaConfig::default()
    };
    let t0 = Instant::now();
    let outcome = Nsga2::new(ev, cfg)
        .with_objectives(objectives)
        .with_named_population(pop)
        .expect("compatible population")
        .run();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ObjRun {
        n: 2 + extra.len(),
        wall_ms,
        ms_per_generation: wall_ms / generations as f64,
        front_size: outcome.front.len(),
        final_hypervolume: *outcome.hypervolume_series.last().expect("series non-empty"),
        evaluations: outcome.evaluations,
    }
}

fn obj_json(run: &ObjRun) -> String {
    format!(
        "{{\"n\": {}, \"wall_ms\": {:.1}, \"ms_per_generation\": {:.2}, \
         \"front_size\": {}, \"hypervolume\": {:.1}, \"evaluations\": {}}}",
        run.n,
        run.wall_ms,
        run.ms_per_generation,
        run.front_size,
        run.final_hypervolume,
        run.evaluations
    )
}

fn evo_json(run: &EvoRun) -> String {
    let best = run.outcome.final_best();
    format!(
        "{{\"wall_ms\": {:.1}, \"assess_full\": {}, \"assess_incremental\": {}, \
         \"best_il\": {:.4}, \"best_dr\": {:.4}, \"best_score\": {:.4}}}",
        run.wall_ms,
        run.outcome.eval_counts.full,
        run.outcome.eval_counts.incremental,
        best.il,
        best.dr,
        best.score
    )
}

fn main() {
    let args = parse_args();
    let sizes: Vec<(usize, usize)> = if let Some(rows) = args.rows {
        vec![(rows, if rows <= 20_000 { 2 } else { 1 })] // (rows, assess reps)
    } else if args.quick {
        vec![(1000, 2)]
    } else {
        vec![(1000, 6), (5000, 3), (20000, 2), (50000, 1), (100000, 1)]
    };

    let mut micro = Vec::new();
    let mut linkage = Vec::new();
    for &(rows, reps) in &sizes {
        eprintln!("micro: {rows} rows …");
        micro.push(micro_row(rows, reps, args.seed));
        eprintln!("linkage: {rows} rows …");
        linkage.push(linkage_row(rows, args.seed));
    }
    let exact_delta = exactness_delta(args.seed);

    let prepare_sizes: Vec<usize> = if let Some(rows) = args.rows {
        vec![rows]
    } else if args.quick {
        vec![1000]
    } else {
        vec![1000, 20000, 100000]
    };
    let mut prepare = Vec::new();
    for &rows in &prepare_sizes {
        eprintln!("prepare: {rows} rows …");
        prepare.push(prepare_row(rows, args.seed));
    }

    // the acceptance-criteria run: paper suite, 250 iterations (reduced
    // under --quick so CI smoke stays in seconds)
    let (records, iterations, paper_suite) = if args.quick {
        (300, 80, false)
    } else {
        (1000, 250, true)
    };
    let evolution = if args.no_evolution {
        None
    } else {
        eprintln!("evolution: full …");
        let full = evolution_run(
            DatasetKind::Adult,
            records,
            iterations,
            paper_suite,
            false,
            args.seed,
        );
        eprintln!("evolution: incremental …");
        let inc = evolution_run(
            DatasetKind::Adult,
            records,
            iterations,
            paper_suite,
            true,
            args.seed,
        );
        Some((full, inc))
    };

    let objectives_bench = if args.no_evolution {
        None
    } else {
        let (obj_records, obj_gens) = if args.quick { (200, 10) } else { (500, 40) };
        eprintln!("objectives: N=2 …");
        let two = objectives_run(&[], obj_records, obj_gens, args.seed);
        eprintln!("objectives: N=3 …");
        let three = objectives_run(&["eps"], obj_records, obj_gens, args.seed);
        Some((two, three, obj_records, obj_gens))
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"micro\": [");
    for (i, row) in micro.iter().enumerate() {
        let comma = if i + 1 < micro.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"ns_assess\": {:.0}, \"ns_reassess_cell\": {:.0}, \
             \"ns_reassess_segment\": {:.0}, \"speedup_cell\": {:.1}, \
             \"speedup_segment\": {:.1}}}{comma}",
            row.rows,
            row.ns_assess,
            row.ns_reassess_cell,
            row.ns_reassess_segment,
            row.ns_assess / row.ns_reassess_cell,
            row.ns_assess / row.ns_reassess_segment,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"linkage\": [");
    for (i, row) in linkage.iter().enumerate() {
        let comma = if i + 1 < linkage.len() { "," } else { "" };
        let ns_pairs = row
            .ns_pairs
            .map_or("null".to_string(), |v| format!("{v:.0}"));
        let speedup = row
            .ns_pairs
            .map_or("null".to_string(), |v| format!("{:.1}", v / row.ns_blocked));
        let equal = row
            .credits_equal
            .map_or("null".to_string(), |e| e.to_string());
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"patterns_original\": {}, \"patterns_masked\": {}, \
             \"ns_dbrl_blocked\": {:.0}, \"ns_dbrl_pairs\": {ns_pairs}, \
             \"pairs_over_blocked\": {speedup}, \"credits_equal\": {equal}}}{comma}",
            row.rows, row.patterns_original, row.patterns_masked, row.ns_blocked,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"prepare\": [");
    for (i, row) in prepare.iter().enumerate() {
        let comma = if i + 1 < prepare.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"ms_prepare_cold\": {:.2}, \"ms_snapshot_load\": {:.2}, \
             \"cold_over_load\": {:.1}, \"snapshot_bytes\": {}, \
             \"rehydrated_identical\": {}}}{comma}",
            row.rows,
            row.ms_prepare_cold,
            row.ms_snapshot_load,
            row.ms_prepare_cold / row.ms_snapshot_load.max(1e-9),
            row.snapshot_bytes,
            row.rehydrated_identical,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"exactness_max_abs_delta\": {exact_delta:e},");
    if let Some((two, three, obj_records, obj_gens)) = &objectives_bench {
        let _ = writeln!(json, "  \"objectives\": {{");
        let _ = writeln!(
            json,
            "    \"dataset\": \"german\", \"records\": {obj_records}, \
             \"generations\": {obj_gens},"
        );
        let _ = writeln!(json, "    \"n2\": {},", obj_json(two));
        let _ = writeln!(json, "    \"n3\": {},", obj_json(three));
        let _ = writeln!(
            json,
            "    \"n3_over_n2_ms_per_generation\": {:.2}",
            three.ms_per_generation / two.ms_per_generation.max(1e-9)
        );
        let _ = writeln!(json, "  }},");
    } else {
        let _ = writeln!(json, "  \"objectives\": null,");
    }
    let (il_drift, dr_drift) = if let Some((full, inc)) = &evolution {
        let _ = writeln!(json, "  \"evolution\": {{");
        let _ = writeln!(
            json,
            "    \"dataset\": \"adult\", \"records\": {records}, \"iterations\": {iterations}, \
             \"suite\": \"{}\",",
            if paper_suite { "paper" } else { "small" }
        );
        let _ = writeln!(json, "    \"full\": {},", evo_json(full));
        let _ = writeln!(json, "    \"incremental\": {},", evo_json(inc));
        let _ = writeln!(
            json,
            "    \"full_assess_reduction\": {:.2},",
            full.outcome.eval_counts.full as f64 / inc.outcome.eval_counts.full.max(1) as f64
        );
        let _ = writeln!(
            json,
            "    \"wall_speedup\": {:.2},",
            full.wall_ms / inc.wall_ms.max(1e-9)
        );
        let il_drift = (full.outcome.final_best().il - inc.outcome.final_best().il).abs();
        let dr_drift = (full.outcome.final_best().dr - inc.outcome.final_best().dr).abs();
        let _ = writeln!(
            json,
            "    \"best_il_drift\": {il_drift:.4}, \"best_dr_drift\": {dr_drift:.4}"
        );
        let _ = writeln!(json, "  }}");
        (il_drift, dr_drift)
    } else {
        let _ = writeln!(json, "  \"evolution\": null");
        (0.0, 0.0)
    };
    let _ = writeln!(json, "}}");

    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write BENCH_evaluator.json");
    print!("{json}");
    eprintln!("wrote {}", args.out.display());

    // three bit-exactness contracts: under --check-drift any difference at
    // all (not merely above a tolerance) fails the run — after the JSON is
    // on disk, so CI still uploads the failing numbers
    if args.check_drift {
        let mut failed = false;
        if il_drift != 0.0 || dr_drift != 0.0 {
            eprintln!(
                "DRIFT CHECK FAILED: full vs incremental best diverged \
                 (|ΔIL| = {il_drift:e}, |ΔDR| = {dr_drift:e}); \
                 the incremental engine must be bit-exact"
            );
            failed = true;
        }
        if exact_delta != 0.0 {
            eprintln!(
                "DRIFT CHECK FAILED: patch re-assessment diverged from the \
                 full recompute (max |Δ| = {exact_delta:e})"
            );
            failed = true;
        }
        for row in &linkage {
            if row.credits_equal == Some(false) {
                eprintln!(
                    "DRIFT CHECK FAILED: blocked vs all-pairs credit mismatch \
                     at {} rows; the blocked scans must be bit-exact",
                    row.rows
                );
                failed = true;
            }
        }
        for row in &prepare {
            if !row.rehydrated_identical {
                eprintln!(
                    "DRIFT CHECK FAILED: snapshot-rehydrated evaluator diverged \
                     from the cold preparation at {} rows; rehydration must be \
                     bit-exact",
                    row.rows
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
