//! Island-model sweep: the scalar evolution at K ∈ {1, 2, 4, 8} islands
//! on one shared evaluation budget, written as `BENCH_islands.json`.
//!
//! Two timings per K:
//!
//! * **wall_ms** — elapsed time of the run as observed on this machine.
//!   On a box with fewer than K free cores the scoped island threads
//!   time-slice, so wall does *not* show the parallel win.
//! * **critical_path_ms** — the sum over migration epochs of the busiest
//!   island's compute time: the wall time a machine with ≥ K free cores
//!   would see. The speedup column is computed on this, and the JSON
//!   records `threads_available` so the reader can judge which of the two
//!   timings is the honest one for their hardware.
//!
//! The sweep also re-runs the largest K twice and cross-checks the winner
//! bit-for-bit (`determinism_repeat_ok`) — the scheduler's contract is
//! identical output for identical (seed, K, M) regardless of thread
//! interleaving.
//!
//! ```text
//! cargo run --release -p cdp_bench --bin islands_bench -- \
//!     [--quick] [--out PATH] [--seed S]
//! ```
//!
//! `--quick` shrinks records/budget/K-ladder for CI smoke runs (~seconds).

use std::fmt::Write as _;
use std::path::PathBuf;

use cdp_core::{EvoConfig, EvolutionOutcome, IslandEvent, IslandModel, IslandTiming};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig};
use cdp_sdc::{build_population, SuiteConfig};

struct Args {
    quick: bool,
    out: PathBuf,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("BENCH_islands.json"),
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().map(PathBuf::from).unwrap_or(args.out),
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(1);
            }
        }
    }
    args
}

struct SweepRow {
    islands: usize,
    timing: IslandTiming,
    migrations: usize,
    emigrants: usize,
    outcome: EvolutionOutcome,
}

fn sweep_run(
    kind: DatasetKind,
    records: usize,
    iterations: usize,
    paper_suite: bool,
    islands: usize,
    seed: u64,
) -> SweepRow {
    let ds = kind.generate(&GeneratorConfig::seeded(seed).with_records(records));
    let suite = if paper_suite {
        SuiteConfig::paper(kind)
    } else {
        SuiteConfig::small()
    };
    let pop = build_population(&ds, &suite, seed).expect("suite");
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    // islands are the parallel grain here: nested offspring threads would
    // oversubscribe the cores AND hide their CPU from the per-island
    // thread clock the critical path is built on (see `IslandTiming`)
    let cfg = EvoConfig::builder()
        .iterations(iterations)
        .islands(islands)
        .parallel_offspring(false)
        .seed(seed)
        .build();
    let mut migrations = 0usize;
    let mut emigrants = 0usize;
    let (outcome, timing) = IslandModel::scalar(ev, cfg)
        .with_named_population(pop)
        .expect("compatible population")
        .run_with_timing(|event| {
            if let IslandEvent::Migration {
                emigrants: moved, ..
            } = event
            {
                migrations += 1;
                emigrants += moved;
            }
        });
    SweepRow {
        islands,
        timing,
        migrations,
        emigrants,
        outcome,
    }
}

fn main() {
    let args = parse_args();
    let (kind, records, iterations, paper_suite, ladder): (_, _, _, _, &[usize]) = if args.quick {
        (DatasetKind::Adult, 300, 80, false, &[1, 2, 4])
    } else {
        (DatasetKind::Adult, 1000, 250, true, &[1, 2, 4, 8])
    };

    let mut rows = Vec::new();
    for &k in ladder {
        eprintln!("islands: K = {k} …");
        rows.push(sweep_run(
            kind,
            records,
            iterations,
            paper_suite,
            k,
            args.seed,
        ));
    }

    // determinism cross-check: the largest K, re-run from scratch, must
    // publish the bit-identical winner and eval counts
    let &k_max = ladder.last().expect("non-empty ladder");
    eprintln!("determinism: K = {k_max} repeat …");
    let repeat = sweep_run(kind, records, iterations, paper_suite, k_max, args.seed);
    let baseline = rows.last().expect("swept");
    let determinism_ok = {
        let (a, b) = (baseline.outcome.final_best(), repeat.outcome.final_best());
        a.il == b.il
            && a.dr == b.dr
            && a.score == b.score
            && baseline.outcome.eval_counts == repeat.outcome.eval_counts
            && baseline.migrations == repeat.migrations
    };

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base_cp = rows[0].timing.critical_path.as_secs_f64().max(1e-12);
    let base_wall = rows[0].timing.wall.as_secs_f64().max(1e-12);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"dataset\": \"{}\", \"records\": {records}, \"iterations\": {iterations}, \
         \"suite\": \"{}\",",
        kind.name(),
        if paper_suite { "paper" } else { "small" }
    );
    let _ = writeln!(json, "  \"threads_available\": {threads},");
    let _ = writeln!(
        json,
        "  \"note\": \"iterations is the total budget, split across islands; \
         speedup_critical_path is the projected speedup on >= K free cores \
         (sum over epochs of the busiest island), speedup_wall is what this \
         machine actually observed — on {threads} thread(s) the two diverge \
         and wall is the honest local number\","
    );
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let best = row.outcome.final_best();
        let _ = writeln!(
            json,
            "    {{\"islands\": {}, \"wall_ms\": {:.1}, \"critical_path_ms\": {:.1}, \
             \"speedup_wall\": {:.2}, \"speedup_critical_path\": {:.2}, \
             \"migrations\": {}, \"emigrants\": {}, \
             \"assess_full\": {}, \"assess_incremental\": {}, \
             \"best_il\": {:.4}, \"best_dr\": {:.4}, \"best_score\": {:.4}}}{comma}",
            row.islands,
            row.timing.wall.as_secs_f64() * 1e3,
            row.timing.critical_path.as_secs_f64() * 1e3,
            base_wall / row.timing.wall.as_secs_f64().max(1e-12),
            base_cp / row.timing.critical_path.as_secs_f64().max(1e-12),
            row.migrations,
            row.emigrants,
            row.outcome.eval_counts.full,
            row.outcome.eval_counts.incremental,
            best.il,
            best.dr,
            best.score,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"determinism_repeat_ok\": {determinism_ok}");
    let _ = writeln!(json, "}}");

    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, &json).expect("write BENCH_islands.json");
    print!("{json}");
    eprintln!("wrote {}", args.out.display());

    if !determinism_ok {
        eprintln!(
            "DETERMINISM CHECK FAILED: two K={k_max} runs with the same seed \
             published different winners"
        );
        std::process::exit(1);
    }
}
