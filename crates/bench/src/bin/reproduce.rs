//! Regenerate the paper's tables and figures.
//!
//! ```text
//! reproduce [--records N] [--iters N] [--seed S] [--out DIR] <target>...
//!
//! targets:
//!   fig1 .. fig20     one figure (CSV + ASCII plot under --out)
//!   timing            the in-text generation-cost table
//!   summary-eq1       §3.1 improvement table (mean fitness)
//!   summary-eq2       §3.2 improvement table (max fitness)
//!   summary-robust    §3.3 robustness gaps
//!   ext-kanon         extension: GA vs optimal lattice k-anonymization
//!   ext-pareto        extension: scalar fitness vs NSGA-II hypervolume
//!   all               everything above
//! ```
//!
//! Defaults reproduce the paper scale (1000/1066 records, 1000 iterations);
//! pass `--records 200 --iters 100` for a quick smoke run.

use std::path::PathBuf;
use std::process::ExitCode;

use cdp_bench::{
    figure_spec, kanon_comparison, markdown_table, measure_timing, pareto_comparison, write_csv,
    ExperimentConfig, Harness, SummaryRow, ALL_FIGURES,
};
use cdp_dataset::generators::DatasetKind;
use cdp_metrics::ScoreAggregator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: reproduce [--records N] [--iters N] [--seed S] [--out DIR] \
                 <fig1..fig20|timing|summary-eq1|summary-eq2|summary-robust|\
                 ext-kanon|ext-pareto|all>..."
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut cfg = ExperimentConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--records" => {
                cfg.records = Some(parse(it.next(), "--records")?);
            }
            "--iters" => {
                cfg.iterations = parse(it.next(), "--iters")?;
            }
            "--seed" => {
                cfg.seed = parse(it.next(), "--seed")?;
            }
            "--out" => {
                cfg.out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        return Err("no targets given".into());
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_FIGURES
            .iter()
            .map(|id| format!("fig{id}"))
            .chain(
                [
                    "timing",
                    "summary-eq1",
                    "summary-eq2",
                    "summary-robust",
                    "ext-kanon",
                    "ext-pareto",
                ]
                .iter()
                .map(|s| s.to_string()),
            )
            .collect();
    }

    let out_dir = cfg.out_dir.clone();
    let records = cfg.records;
    let seed = cfg.seed;
    let mut harness = Harness::new(cfg);
    let mut summary_md = String::new();

    for target in targets {
        if let Some(id) = target
            .strip_prefix("fig")
            .and_then(|s| s.parse::<u8>().ok())
        {
            if figure_spec(id).is_none() {
                return Err(format!("unknown figure id {id}"));
            }
            let fig = harness.figure(id).map_err(|e| e.to_string())?;
            println!("{}", fig.plot);
            println!("  -> {}", fig.csv_path.display());
            continue;
        }
        match target.as_str() {
            "timing" => {
                println!("measuring generation cost decomposition (Adult)...");
                let t = measure_timing(DatasetKind::Adult, records, 5, seed);
                let md = t.to_markdown();
                println!("{md}");
                summary_md.push_str("## Timing table\n\n");
                summary_md.push_str(&md);
                summary_md.push('\n');
            }
            "summary-eq1" | "summary-eq2" => {
                let agg = if target.ends_with("1") {
                    ScoreAggregator::Mean
                } else {
                    ScoreAggregator::Max
                };
                let rows = harness.summary(agg);
                let md = summary_markdown(&rows);
                println!("Improvement summary, fitness = {}:", agg.name());
                println!("{md}");
                summary_md.push_str(&format!("## Summary ({})\n\n", agg.name()));
                summary_md.push_str(&md);
                summary_md.push('\n');
            }
            "summary-robust" => {
                let r = harness.robustness();
                let md = markdown_table(
                    &["population", "final min score", "gap to full"],
                    &[
                        vec!["full".into(), format!("{:.2}", r.full_min), "—".into()],
                        vec![
                            "best 5% removed".into(),
                            format!("{:.2}", r.drop5_min),
                            format!("{:+.2} (paper: +1.33)", r.gap5()),
                        ],
                        vec![
                            "best 10% removed".into(),
                            format!("{:.2}", r.drop10_min),
                            format!("{:+.2} (paper: +1.08)", r.gap10()),
                        ],
                    ],
                );
                println!("Robustness (Flare, Eq. 2):");
                println!("{md}");
                summary_md.push_str("## Robustness (Flare, Eq. 2)\n\n");
                summary_md.push_str(&md);
                summary_md.push('\n');
            }
            "ext-kanon" => {
                println!("extension: GA vs optimal lattice k-anonymization (Adult)...");
                let cmp = kanon_comparison(&mut harness, DatasetKind::Adult, &[2, 3, 5, 10]);
                let md = cmp.to_markdown();
                println!("{md}");
                let rows: Vec<Vec<String>> = cmp
                    .rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.label.clone(),
                            format!("{:.4}", r.il),
                            format!("{:.4}", r.dr),
                            format!("{:.4}", r.score_max),
                            r.achieved_k.to_string(),
                        ]
                    })
                    .collect();
                std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
                write_csv(
                    out_dir.join("ext_kanon.csv"),
                    &["contender", "il", "dr", "score_max", "k"],
                    &rows,
                )
                .map_err(|e| e.to_string())?;
                summary_md.push_str("## Extension: GA vs lattice k-anonymization (Adult)\n\n");
                summary_md.push_str(&md);
                summary_md.push('\n');
            }
            "ext-pareto" => {
                println!("extension: scalar fitness vs NSGA-II (German)...");
                let cmp = pareto_comparison(&mut harness, DatasetKind::German);
                let md = cmp.to_markdown();
                println!("{md}");
                let rows: Vec<Vec<String>> = cmp
                    .nsga_front
                    .iter()
                    .map(|p| {
                        vec![
                            p.name.clone(),
                            format!("{:.4}", p.il),
                            format!("{:.4}", p.dr),
                        ]
                    })
                    .collect();
                std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
                write_csv(
                    out_dir.join("ext_pareto_front.csv"),
                    &["protection", "il", "dr"],
                    &rows,
                )
                .map_err(|e| e.to_string())?;
                summary_md.push_str("## Extension: scalar vs NSGA-II (German)\n\n");
                summary_md.push_str(&md);
                summary_md.push('\n');
            }
            other => return Err(format!("unknown target `{other}`")),
        }
    }

    if !summary_md.is_empty() {
        std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
        let path = out_dir.join("summaries.md");
        // append so sequential invocations of different targets accumulate
        // into one report; delete the file to start fresh
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| e.to_string())?;
        f.write_all(summary_md.as_bytes())
            .map_err(|e| e.to_string())?;
        println!("summaries appended to {}", path.display());
    }
    Ok(())
}

fn summary_markdown(rows: &[SummaryRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let s = row.summary;
            vec![
                row.dataset.name().to_string(),
                format!(
                    "{:.2} -> {:.2} ({:.2}%)",
                    s.initial_max,
                    s.final_max,
                    s.improvement_max()
                ),
                format!(
                    "{:.2} -> {:.2} ({:.2}%)",
                    s.initial_mean,
                    s.final_mean,
                    s.improvement_mean()
                ),
                format!(
                    "{:.2} -> {:.2} ({:.2}%)",
                    s.initial_min,
                    s.final_min,
                    s.improvement_min()
                ),
            ]
        })
        .collect();
    markdown_table(&["dataset", "max score", "mean score", "min score"], &body)
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> Result<T, String> {
    v.ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}
