//! Supplementary convergence study (not a paper artifact): how the final
//! max/mean/min scores scale with the iteration budget and with the
//! population size, per dataset.
//!
//! The paper never states its iteration budget; this sweep shows where the
//! curves flatten, justifying the default used by `reproduce`
//! (EXPERIMENTS.md "Divergences & notes").
//!
//! ```text
//! cargo run --release -p cdp-bench --bin sweep -- [--records N] [--seed S] [--out DIR]
//! ```
//! Writes `convergence.csv` (iterations sweep) and `popsize.csv`
//! (population-fraction sweep) under the output directory.

use std::path::PathBuf;

use cdp_bench::write_csv;
use cdp_core::{EvoConfig, Evolution};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
use cdp_sdc::{build_population, SuiteConfig};

struct Args {
    records: usize,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        records: 300,
        seed: 42,
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--records" => {
                args.records = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.records)
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--out" => args.out = it.next().map(PathBuf::from).unwrap_or(args.out),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(1);
            }
        }
    }
    args
}

fn run(
    kind: DatasetKind,
    records: usize,
    seed: u64,
    iterations: usize,
    keep_fraction: f64,
) -> (f64, f64, f64) {
    let ds = kind.generate(&GeneratorConfig::seeded(seed).with_records(records));
    let mut pop = build_population(&ds, &SuiteConfig::paper(kind), seed).expect("sweep");
    if keep_fraction < 1.0 {
        let keep = ((pop.len() as f64 * keep_fraction).ceil() as usize).max(4);
        pop.truncate(keep);
    }
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let cfg = EvoConfig::builder()
        .iterations(iterations)
        .aggregator(ScoreAggregator::Max)
        .seed(seed)
        .build();
    let outcome = Evolution::new(evaluator, cfg)
        .with_named_population(pop)
        .expect("compatible")
        .run();
    let s = outcome.summary();
    (s.final_max, s.final_mean, s.final_min)
}

fn main() {
    let args = parse_args();

    // sweep 1: iteration budget
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        for iters in [50usize, 100, 200, 400, 800] {
            let (max, mean, min) = run(kind, args.records, args.seed, iters, 1.0);
            println!(
                "{:<8} iters {:>4}: max {:6.2} mean {:6.2} min {:6.2}",
                kind.name(),
                iters,
                max,
                mean,
                min
            );
            rows.push(vec![
                kind.name().to_string(),
                iters.to_string(),
                format!("{max:.4}"),
                format!("{mean:.4}"),
                format!("{min:.4}"),
            ]);
        }
    }
    let path = args.out.join("convergence.csv");
    write_csv(
        &path,
        &["dataset", "iterations", "max", "mean", "min"],
        &rows,
    )
    .expect("write convergence.csv");
    println!("-> {}", path.display());

    // sweep 2: population size (keep the first fraction of the sweep)
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        for keep in [0.25f64, 0.5, 0.75, 1.0] {
            let (max, mean, min) = run(kind, args.records, args.seed, 300, keep);
            println!(
                "{:<8} keep {:>4.0}%: max {:6.2} mean {:6.2} min {:6.2}",
                kind.name(),
                keep * 100.0,
                max,
                mean,
                min
            );
            rows.push(vec![
                kind.name().to_string(),
                format!("{keep:.2}"),
                format!("{max:.4}"),
                format!("{mean:.4}"),
                format!("{min:.4}"),
            ]);
        }
    }
    let path = args.out.join("popsize.csv");
    write_csv(
        &path,
        &["dataset", "keep_fraction", "max", "mean", "min"],
        &rows,
    )
    .expect("write popsize.csv");
    println!("-> {}", path.display());
}
