//! The figure index of the paper: which run produces which figure.

use cdp_dataset::generators::DatasetKind;
use cdp_metrics::ScoreAggregator;

/// What a figure displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Initial/final (IL, DR) dispersion plot.
    Scatter,
    /// Max/mean/min score evolution across generations.
    Evolution,
}

/// One evolutionary run: the unit shared by a scatter/evolution figure
/// pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Which dataset population to evolve.
    pub dataset: DatasetKind,
    /// Eq. 1 (`Mean`) or Eq. 2 (`Max`).
    pub aggregator: ScoreAggregator,
    /// Fraction of best initial protections removed (§3.3); 0 elsewhere.
    pub drop_fraction: f64,
}

/// A paper figure: its run plus what to plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureSpec {
    /// Figure number as printed in the paper (1–20).
    pub id: u8,
    /// The run behind the figure.
    pub run: RunSpec,
    /// Scatter or evolution.
    pub kind: FigureKind,
}

/// All twenty figure numbers.
pub const ALL_FIGURES: [u8; 20] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
];

/// Resolve a paper figure number to its specification.
pub fn figure_spec(id: u8) -> Option<FigureSpec> {
    use DatasetKind::{Adult, Flare, German, Housing};
    use FigureKind::{Evolution, Scatter};
    use ScoreAggregator::{Max, Mean};

    let (dataset, aggregator, drop_fraction, kind) = match id {
        1 => (Adult, Mean, 0.0, Scatter),
        2 => (Adult, Mean, 0.0, Evolution),
        3 => (Housing, Mean, 0.0, Scatter),
        4 => (Housing, Mean, 0.0, Evolution),
        5 => (German, Mean, 0.0, Scatter),
        6 => (German, Mean, 0.0, Evolution),
        7 => (Flare, Mean, 0.0, Scatter),
        8 => (Flare, Mean, 0.0, Evolution),
        9 => (Adult, Max, 0.0, Scatter),
        10 => (Adult, Max, 0.0, Evolution),
        11 => (Housing, Max, 0.0, Scatter),
        12 => (Housing, Max, 0.0, Evolution),
        13 => (German, Max, 0.0, Scatter),
        14 => (German, Max, 0.0, Evolution),
        15 => (Flare, Max, 0.0, Scatter),
        16 => (Flare, Max, 0.0, Evolution),
        17 => (Flare, Max, 0.05, Scatter),
        18 => (Flare, Max, 0.10, Scatter),
        19 => (Flare, Max, 0.05, Evolution),
        20 => (Flare, Max, 0.10, Evolution),
        _ => return None,
    };
    Some(FigureSpec {
        id,
        run: RunSpec {
            dataset,
            aggregator,
            drop_fraction,
        },
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twenty_figures_resolve() {
        for id in ALL_FIGURES {
            let spec = figure_spec(id).unwrap();
            assert_eq!(spec.id, id);
        }
        assert!(figure_spec(0).is_none());
        assert!(figure_spec(21).is_none());
    }

    #[test]
    fn scatter_evolution_pairs_share_runs() {
        for pair in [(1, 2), (3, 4), (9, 10), (15, 16)] {
            let a = figure_spec(pair.0).unwrap();
            let b = figure_spec(pair.1).unwrap();
            assert_eq!(a.run, b.run);
            assert_eq!(a.kind, FigureKind::Scatter);
            assert_eq!(b.kind, FigureKind::Evolution);
        }
        // robustness evolution figures 19/20 pair with scatters 17/18
        assert_eq!(figure_spec(17).unwrap().run, figure_spec(19).unwrap().run);
        assert_eq!(figure_spec(18).unwrap().run, figure_spec(20).unwrap().run);
    }

    #[test]
    fn first_experiment_uses_mean_second_uses_max() {
        for id in 1..=8 {
            assert_eq!(
                figure_spec(id).unwrap().run.aggregator,
                ScoreAggregator::Mean
            );
        }
        for id in 9..=20 {
            assert_eq!(
                figure_spec(id).unwrap().run.aggregator,
                ScoreAggregator::Max
            );
        }
    }

    #[test]
    fn robustness_figures_drop_leaders() {
        assert_eq!(figure_spec(17).unwrap().run.drop_fraction, 0.05);
        assert_eq!(figure_spec(18).unwrap().run.drop_fraction, 0.10);
        for id in 1..=16 {
            assert_eq!(figure_spec(id).unwrap().run.drop_fraction, 0.0);
        }
    }
}
