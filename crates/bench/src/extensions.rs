//! Extension experiments beyond the paper's evaluation:
//!
//! * **GA vs lattice** — the evolutionary optimizer against the classic
//!   anonymization baseline: optimal full-domain k-anonymous recoding found
//!   by lattice search (`cdp-privacy`). Both are scored with the paper's
//!   seven measures *and* with k-anonymity, showing what each paradigm
//!   optimizes and what it gives up.
//! * **Scalar vs NSGA-II** — the paper's scalarized fitness (Eq. 1/Eq. 2)
//!   against true multi-objective selection, compared by the hypervolume of
//!   the (IL, DR) fronts each run discovers for the same budget.

use cdp_core::nsga::{hypervolume, HV_REFERENCE};
use cdp_core::ScatterPoint;
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
use cdp_privacy::{mondrian_anonymize, CostKind, LatticeSearch, Partition, Recoder};
use cdp_sdc::SuiteConfig;

use crate::harness::Harness;
use crate::report::markdown_table;

/// One contender row of the GA-vs-lattice comparison.
#[derive(Debug, Clone)]
pub struct KanonRow {
    /// Contender label (`ga(max)` or `lattice(k=…)`).
    pub label: String,
    /// Information loss of the emitted file.
    pub il: f64,
    /// Disclosure risk of the emitted file.
    pub dr: f64,
    /// The paper's Eq. 2 score.
    pub score_max: f64,
    /// k-anonymity the file actually achieves on the protected columns.
    pub achieved_k: usize,
}

/// The GA-vs-lattice comparison for one dataset.
#[derive(Debug, Clone)]
pub struct KanonComparison {
    /// Dataset compared on.
    pub dataset: DatasetKind,
    /// One row per contender.
    pub rows: Vec<KanonRow>,
}

impl KanonComparison {
    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let body: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.2}", r.il),
                    format!("{:.2}", r.dr),
                    format!("{:.2}", r.score_max),
                    r.achieved_k.to_string(),
                ]
            })
            .collect();
        markdown_table(&["contender", "IL", "DR", "max(IL,DR)", "k"], &body)
    }
}

/// Run the GA-vs-lattice comparison: the harness's Eq. 2 run for `dataset`
/// against optimal k-anonymous recodings for each `k` in `ks`.
pub fn kanon_comparison(
    harness: &mut Harness,
    dataset: DatasetKind,
    ks: &[usize],
) -> KanonComparison {
    let cfg = harness.config().clone();
    let mut gc = GeneratorConfig::seeded(cfg.seed);
    if let Some(n) = cfg.records {
        gc = gc.with_records(n);
    }
    let ds = dataset.generate(&gc);
    let sub = ds.protected_subtable();
    let evaluator =
        Evaluator::new(&sub, MetricConfig::default()).expect("default metric config is valid");

    let mut rows = Vec::new();

    // the evolutionary contender: best individual of the Eq. 2 run
    let outcome = harness.run(crate::experiments::RunSpec {
        dataset,
        aggregator: ScoreAggregator::Max,
        drop_fraction: 0.0,
    });
    let best = outcome.population.best();
    rows.push(KanonRow {
        label: "ga(max)".into(),
        il: best.il(),
        dr: best.dr(),
        score_max: best.il().max(best.dr()),
        achieved_k: Partition::of_subtable(&best.data)
            .map(|p| p.min_class_size())
            .unwrap_or(0),
    });

    // the lattice contenders (global recoding: one level per attribute)
    let hierarchies = ds.protected_hierarchies();
    let recoder = Recoder::new(&sub, hierarchies).expect("generated hierarchies are nested");
    let search = LatticeSearch::new(&sub, &recoder);
    for &k in ks {
        match search.optimal(k, CostKind::Discernibility) {
            Ok(found) => {
                let masked = recoder.apply(&sub, &found.node).expect("node is valid");
                let state = evaluator.assess(&masked);
                rows.push(KanonRow {
                    label: format!("lattice(k={k})"),
                    il: state.assessment.il(),
                    dr: state.assessment.dr(),
                    score_max: state.assessment.score(ScoreAggregator::Max),
                    achieved_k: found.achieved_k,
                });
            }
            Err(_) => rows.push(KanonRow {
                label: format!("lattice(k={k}) unsatisfiable"),
                il: f64::NAN,
                dr: f64::NAN,
                score_max: f64::NAN,
                achieved_k: 0,
            }),
        }
    }

    // the Mondrian contenders (local recoding: per-region generalization)
    for &k in ks {
        match mondrian_anonymize(&sub, k) {
            Ok((masked, stats)) => {
                let state = evaluator.assess(&masked);
                rows.push(KanonRow {
                    label: format!("mondrian(k={k})"),
                    il: state.assessment.il(),
                    dr: state.assessment.dr(),
                    score_max: state.assessment.score(ScoreAggregator::Max),
                    achieved_k: stats.achieved_k,
                });
            }
            Err(_) => rows.push(KanonRow {
                label: format!("mondrian(k={k}) infeasible"),
                il: f64::NAN,
                dr: f64::NAN,
                score_max: f64::NAN,
                achieved_k: 0,
            }),
        }
    }
    KanonComparison { dataset, rows }
}

/// One contender row of the scalar-vs-NSGA-II comparison.
#[derive(Debug, Clone)]
pub struct ParetoRow {
    /// Contender label.
    pub label: String,
    /// Size of the (IL, DR) front the run discovered.
    pub front_size: usize,
    /// Hypervolume of that front w.r.t. (100, 100).
    pub hypervolume: f64,
    /// Fitness evaluations spent.
    pub evaluations: usize,
}

/// The scalar-vs-NSGA-II comparison for one dataset.
#[derive(Debug, Clone)]
pub struct ParetoComparison {
    /// Dataset compared on.
    pub dataset: DatasetKind,
    /// Hypervolume of the initial population's front (shared baseline).
    pub initial_hypervolume: f64,
    /// One row per contender.
    pub rows: Vec<ParetoRow>,
    /// The NSGA-II archive front, for CSV emission.
    pub nsga_front: Vec<ScatterPoint>,
}

impl ParetoComparison {
    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut body = vec![vec![
            "initial population".to_string(),
            "—".to_string(),
            format!("{:.0}", self.initial_hypervolume),
            "0".to_string(),
        ]];
        body.extend(self.rows.iter().map(|r| {
            vec![
                r.label.clone(),
                r.front_size.to_string(),
                format!("{:.0}", r.hypervolume),
                r.evaluations.to_string(),
            ]
        }));
        markdown_table(
            &["contender", "front size", "hypervolume", "evaluations"],
            &body,
        )
    }
}

fn hv_of(points: &[ScatterPoint]) -> f64 {
    let objs: Vec<(f64, f64)> = points.iter().map(|p| (p.il, p.dr)).collect();
    hypervolume(&objs, HV_REFERENCE)
}

/// Run the scalar-vs-NSGA-II comparison. The scalar contenders reuse the
/// harness's cached Eq. 1/Eq. 2 runs (their all-time Pareto archives); the
/// NSGA-II contender is the harness's nsga job mode over the same paper
/// suite ([`Harness::run_front`], shared session and evaluator cache) for
/// `iterations / population-size` generations, so every contender spends a
/// comparable number of evaluations.
pub fn pareto_comparison(harness: &mut Harness, dataset: DatasetKind) -> ParetoComparison {
    let cfg = harness.config().clone();
    let mut rows = Vec::new();

    let mut initial_hv = 0.0;
    for aggregator in [ScoreAggregator::Mean, ScoreAggregator::Max] {
        let outcome = harness.run(crate::experiments::RunSpec {
            dataset,
            aggregator,
            drop_fraction: 0.0,
        });
        initial_hv = hv_of(&outcome.initial);
        rows.push(ParetoRow {
            label: format!("ga({})", aggregator.name()),
            front_size: outcome.pareto_front.len(),
            hypervolume: hv_of(&outcome.pareto_front),
            // exact count from the run's telemetry (full + incremental)
            evaluations: outcome.eval_counts.total(),
        });
    }

    let pop_size = SuiteConfig::paper(dataset).total();
    let generations = (cfg.iterations * 3 / 2 / pop_size).max(1);
    let front = harness.run_front(dataset, generations);
    rows.push(ParetoRow {
        label: format!("nsga2({generations} gen)"),
        front_size: front.archive.len(),
        hypervolume: hv_of(&front.archive),
        evaluations: front.evaluations,
    });

    ParetoComparison {
        dataset,
        initial_hypervolume: initial_hv,
        rows,
        nsga_front: front.archive.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentConfig;

    fn tiny_harness() -> Harness {
        Harness::new(ExperimentConfig {
            records: Some(60),
            iterations: 12,
            seed: 5,
            out_dir: std::env::temp_dir().join("cdp_ext_test"),
        })
    }

    #[test]
    fn kanon_comparison_has_ga_lattice_and_mondrian_rows() {
        let mut h = tiny_harness();
        let cmp = kanon_comparison(&mut h, DatasetKind::Adult, &[2, 3]);
        assert_eq!(cmp.rows.len(), 5); // ga + 2 lattice + 2 mondrian
        assert!(cmp.rows[0].label.starts_with("ga"));
        // satisfiable baseline rows meet their k and carry finite measures
        for row in &cmp.rows[1..] {
            if !row.label.contains("unsatisfiable") && !row.label.contains("infeasible") {
                let k: usize = row.label[row.label.find('=').unwrap() + 1..row.label.len() - 1]
                    .parse()
                    .unwrap();
                assert!(row.achieved_k >= k, "{}: {}", row.label, row.achieved_k);
                assert!(row.il.is_finite() && row.dr.is_finite());
            }
        }
        let md = cmp.to_markdown();
        assert!(md.contains("contender"));
        assert!(md.contains("lattice(k=2)"));
        assert!(md.contains("mondrian(k=2)"));
    }

    #[test]
    fn mondrian_utility_dominates_lattice_at_same_k() {
        // the headline local-vs-global claim: at equal k, Mondrian's IL is
        // no worse than the full-domain lattice's
        let mut h = tiny_harness();
        let cmp = kanon_comparison(&mut h, DatasetKind::Adult, &[3]);
        let il_of = |prefix: &str| {
            cmp.rows
                .iter()
                .find(|r| r.label.starts_with(prefix))
                .map(|r| r.il)
                .unwrap()
        };
        let lattice_il = il_of("lattice(k=3)");
        let mondrian_il = il_of("mondrian(k=3)");
        assert!(
            mondrian_il <= lattice_il + 1e-9,
            "local recoding should not lose more information than global \
             ({mondrian_il:.2} vs {lattice_il:.2})"
        );
    }

    #[test]
    fn pareto_comparison_rows_cover_three_contenders() {
        let mut h = tiny_harness();
        let cmp = pareto_comparison(&mut h, DatasetKind::German);
        assert_eq!(cmp.rows.len(), 3);
        assert!(cmp.rows[2].label.starts_with("nsga2"));
        for row in &cmp.rows {
            // every optimizer at least matches the initial front
            assert!(
                row.hypervolume >= cmp.initial_hypervolume - 1e-6,
                "{}: {} < {}",
                row.label,
                row.hypervolume,
                cmp.initial_hypervolume
            );
            assert!(row.front_size >= 1);
            assert!(row.evaluations > 0);
        }
        assert!(!cmp.nsga_front.is_empty());
        assert!(cmp.to_markdown().contains("hypervolume"));
    }
}
