//! The experiment driver: run cache, figure emission, summary tables.
//!
//! Runs execute as [`cdp::pipeline::ProtectionJob`]s through one
//! [`cdp::pipeline::Session`], so sweep points against the same dataset
//! (aggregator/truncation variations — and NSGA-II contenders via
//! [`Harness::run_front`]) prepare the original's measure statistics
//! exactly once.

use std::path::PathBuf;
use std::rc::Rc;

use cdp::pipeline::{Front, ProtectionJob, Session};
use cdp_core::{EvolutionOutcome, ScoreSummary};
use cdp_dataset::generators::DatasetKind;
use cdp_metrics::ScoreAggregator;

use crate::experiments::{figure_spec, FigureKind, RunSpec};
use crate::plot::{line_plot, scatter_plot};
use crate::report::write_csv;

/// Harness-wide settings.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Record-count override (`None` = the paper's 1000/1066).
    pub records: Option<usize>,
    /// Evolutionary iterations per run (the paper does not state its
    /// budget; 1000 reproduces the figures' shapes).
    pub iterations: usize,
    /// Master seed for generators, protections and evolution.
    pub seed: u64,
    /// Output directory for CSVs and plots.
    pub out_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            records: None,
            iterations: 1000,
            seed: 42,
            out_dir: PathBuf::from("results"),
        }
    }
}

/// One emitted figure.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Paper figure number.
    pub id: u8,
    /// Where the data CSV was written.
    pub csv_path: PathBuf,
    /// ASCII rendition (also written next to the CSV).
    pub plot: String,
}

/// One row of the §3.1/§3.2 summary tables.
#[derive(Debug, Clone, Copy)]
pub struct SummaryRow {
    /// Dataset of the run.
    pub dataset: DatasetKind,
    /// Initial/final max/mean/min scores.
    pub summary: ScoreSummary,
}

/// The §3.3 robustness comparison (all on Flare, Eq. 2).
#[derive(Debug, Clone, Copy)]
pub struct RobustnessReport {
    /// Final min score with the full initial population.
    pub full_min: f64,
    /// Final min score without the best 5%.
    pub drop5_min: f64,
    /// Final min score without the best 10%.
    pub drop10_min: f64,
}

impl RobustnessReport {
    /// Gap reached from the 5%-truncated population (paper: 1.33 points).
    pub fn gap5(&self) -> f64 {
        self.drop5_min - self.full_min
    }

    /// Gap reached from the 10%-truncated population (paper: 1.08 points).
    pub fn gap10(&self) -> f64 {
        self.drop10_min - self.full_min
    }
}

/// Runs experiments, caching each (dataset, aggregator, truncation) run so
/// scatter/evolution figure pairs and summary tables reuse the same data —
/// exactly as in the paper, where each figure pair describes one run.
pub struct Harness {
    cfg: ExperimentConfig,
    session: Session,
    cache: Vec<(RunSpec, Rc<EvolutionOutcome>)>,
    front_cache: Vec<((DatasetKind, usize), Rc<Front>)>,
}

impl Harness {
    /// Create a harness.
    pub fn new(cfg: ExperimentConfig) -> Self {
        Harness {
            cfg,
            session: Session::new(),
            cache: Vec::new(),
            front_cache: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The session executing the runs (its preparation counter shows how
    /// much original-side work the cache amortized).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The job a spec maps onto.
    fn job(&self, spec: RunSpec) -> ProtectionJob {
        let mut builder = ProtectionJob::builder()
            .dataset(spec.dataset)
            .suite_paper()
            .aggregator(spec.aggregator)
            .iterations(self.cfg.iterations)
            .drop_best_fraction(spec.drop_fraction)
            .seed(self.cfg.seed);
        if let Some(n) = self.cfg.records {
            builder = builder.records(n);
        }
        builder.build().expect("experiment specs are valid jobs")
    }

    /// Execute (or fetch) the run behind a spec.
    pub fn run(&mut self, spec: RunSpec) -> Rc<EvolutionOutcome> {
        if let Some((_, cached)) = self.cache.iter().find(|(s, _)| *s == spec) {
            return Rc::clone(cached);
        }
        let job = self.job(spec);
        let report = self
            .session
            .run(&job)
            .expect("paper suite applies to generated data");
        let outcome = Rc::new(report.outcome.into_scalar().expect("harness jobs evolve"));
        self.cache.push((spec, Rc::clone(&outcome)));
        outcome
    }

    /// Execute (or fetch) an NSGA-II sweep point: the paper-suite
    /// population of `dataset` optimized for `generations` Pareto
    /// generations. The job runs through the shared [`Session`], so the
    /// dataset's evaluator preparation is amortized with the scalar runs.
    pub fn run_front(&mut self, dataset: DatasetKind, generations: usize) -> Rc<Front> {
        let key = (dataset, generations);
        if let Some((_, cached)) = self.front_cache.iter().find(|(k, _)| *k == key) {
            return Rc::clone(cached);
        }
        let mut builder = ProtectionJob::builder()
            .dataset(dataset)
            .suite_paper()
            .nsga()
            .iterations(generations)
            .seed(self.cfg.seed);
        if let Some(n) = self.cfg.records {
            builder = builder.records(n);
        }
        let job = builder.build().expect("experiment specs are valid jobs");
        let report = self
            .session
            .run(&job)
            .expect("paper suite applies to generated data");
        let front = Rc::new(
            report
                .outcome
                .into_front()
                .expect("nsga jobs produce fronts"),
        );
        self.front_cache.push((key, Rc::clone(&front)));
        front
    }

    /// Emit one paper figure: CSV + ASCII plot under `out_dir`.
    ///
    /// # Panics
    /// Panics on unknown figure ids; use [`figure_spec`] to validate first.
    pub fn figure(&mut self, id: u8) -> std::io::Result<FigureOutput> {
        let spec = figure_spec(id).unwrap_or_else(|| panic!("unknown figure id {id}"));
        let outcome = self.run(spec.run);
        let title = format!(
            "Figure {id}: {} dataset, fitness Eq. {} ({}){}",
            spec.run.dataset.name(),
            if spec.run.aggregator == ScoreAggregator::Mean {
                "1"
            } else {
                "2"
            },
            spec.run.aggregator.name(),
            if spec.run.drop_fraction > 0.0 {
                format!(", best {:.0}% removed", spec.run.drop_fraction * 100.0)
            } else {
                String::new()
            }
        );
        let (csv_path, plot) = match spec.kind {
            FigureKind::Scatter => {
                let path = self.cfg.out_dir.join(format!("fig{id:02}_scatter.csv"));
                let mut rows = Vec::new();
                for (phase, points) in [
                    ("initial", &outcome.initial),
                    ("final", &outcome.final_points),
                ] {
                    for p in points.iter() {
                        rows.push(vec![
                            phase.to_string(),
                            p.name.clone(),
                            format!("{:.4}", p.il),
                            format!("{:.4}", p.dr),
                            format!("{:.4}", p.score),
                        ]);
                    }
                }
                write_csv(&path, &["phase", "protection", "il", "dr", "score"], &rows)?;
                (
                    path,
                    scatter_plot(&outcome.initial, &outcome.final_points, &title),
                )
            }
            FigureKind::Evolution => {
                let path = self.cfg.out_dir.join(format!("fig{id:02}_evolution.csv"));
                let rows: Vec<Vec<String>> = outcome
                    .trace
                    .generations
                    .iter()
                    .map(|g| {
                        vec![
                            g.iteration.to_string(),
                            format!("{:.4}", g.min),
                            format!("{:.4}", g.mean),
                            format!("{:.4}", g.max),
                            g.operator.map_or("-", |o| o.name()).to_string(),
                            g.accepted.to_string(),
                        ]
                    })
                    .collect();
                write_csv(
                    &path,
                    &["iteration", "min", "mean", "max", "operator", "accepted"],
                    &rows,
                )?;
                (path, line_plot(&outcome.trace.generations, &title))
            }
        };
        let plot_path = csv_path.with_extension("txt");
        std::fs::write(&plot_path, &plot)?;
        Ok(FigureOutput { id, csv_path, plot })
    }

    /// The §3.1 (Eq. 1) or §3.2 (Eq. 2) summary rows, in the paper's
    /// reporting order (Adult, Housing, German, Flare).
    pub fn summary(&mut self, aggregator: ScoreAggregator) -> Vec<SummaryRow> {
        [
            DatasetKind::Adult,
            DatasetKind::Housing,
            DatasetKind::German,
            DatasetKind::Flare,
        ]
        .into_iter()
        .map(|dataset| {
            let outcome = self.run(RunSpec {
                dataset,
                aggregator,
                drop_fraction: 0.0,
            });
            SummaryRow {
                dataset,
                summary: outcome.summary(),
            }
        })
        .collect()
    }

    /// The §3.3 robustness report.
    pub fn robustness(&mut self) -> RobustnessReport {
        let run = |h: &mut Self, drop_fraction: f64| {
            h.run(RunSpec {
                dataset: DatasetKind::Flare,
                aggregator: ScoreAggregator::Max,
                drop_fraction,
            })
            .summary()
            .final_min
        };
        RobustnessReport {
            full_min: run(self, 0.0),
            drop5_min: run(self, 0.05),
            drop10_min: run(self, 0.10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        Harness::new(ExperimentConfig {
            records: Some(60),
            iterations: 15,
            seed: 7,
            out_dir: std::env::temp_dir().join("cdp_harness_test"),
        })
    }

    #[test]
    fn runs_are_cached() {
        let mut h = tiny();
        let spec = RunSpec {
            dataset: DatasetKind::Adult,
            aggregator: ScoreAggregator::Max,
            drop_fraction: 0.0,
        };
        let a = h.run(spec);
        let b = h.run(spec);
        assert!(Rc::ptr_eq(&a, &b), "same spec must not re-run");
    }

    #[test]
    fn scatter_and_evolution_figures_emit() {
        let mut h = tiny();
        let f1 = h.figure(1).unwrap();
        assert!(f1.csv_path.exists());
        assert!(f1.plot.contains("Figure 1"));
        let f2 = h.figure(2).unwrap();
        assert!(f2.csv_path.exists());
        assert!(f2.plot.contains("generation"));
        std::fs::remove_dir_all(h.config().out_dir.clone()).ok();
    }

    #[test]
    fn sweep_points_share_one_preparation_per_dataset() {
        let mut h = tiny();
        // three Flare runs (full, drop 5%, drop 10%) — one original
        h.robustness();
        assert_eq!(h.session().preparations(), 1, "one dataset, one prep");
        // a different aggregator on the same dataset still reuses it
        h.run(RunSpec {
            dataset: DatasetKind::Flare,
            aggregator: ScoreAggregator::Mean,
            drop_fraction: 0.0,
        });
        assert_eq!(h.session().preparations(), 1);
        // a new dataset pays its own preparation
        h.run(RunSpec {
            dataset: DatasetKind::Adult,
            aggregator: ScoreAggregator::Max,
            drop_fraction: 0.0,
        });
        assert_eq!(h.session().preparations(), 2);
    }

    #[test]
    fn nsga_sweep_points_share_the_scalar_preparation() {
        let mut h = tiny();
        h.run(RunSpec {
            dataset: DatasetKind::German,
            aggregator: ScoreAggregator::Max,
            drop_fraction: 0.0,
        });
        assert_eq!(h.session().preparations(), 1);
        // the nsga contender on the same dataset reuses the preparation …
        let front = h.run_front(DatasetKind::German, 2);
        assert_eq!(h.session().preparations(), 1, "nsga shares the session");
        assert!(!front.points.is_empty());
        assert_eq!(front.generations_run(), 2);
        // … and the front cache dedupes repeated sweep points
        let again = h.run_front(DatasetKind::German, 2);
        assert!(Rc::ptr_eq(&front, &again), "same spec must not re-run");
    }

    #[test]
    fn robustness_gaps_are_finite() {
        let mut h = tiny();
        let r = h.robustness();
        assert!(r.full_min.is_finite());
        assert!(r.gap5().is_finite());
        assert!(r.gap10().is_finite());
        // truncation removes the best seeds, so the reachable min cannot be
        // better than a tiny tolerance below the full run's
        assert!(r.drop5_min >= r.full_min - 1e-9);
    }

    #[test]
    fn summary_covers_four_datasets() {
        let mut h = tiny();
        let rows = h.summary(ScoreAggregator::Mean);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].dataset, DatasetKind::Adult);
        for row in rows {
            assert!(row.summary.final_mean <= row.summary.initial_mean + 1e-9);
        }
    }
}
