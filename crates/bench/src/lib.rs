#![warn(missing_docs)]

//! # cdp-bench
//!
//! Experiment harness regenerating **every table and figure** of the
//! paper's evaluation (§3), plus Criterion micro-benchmarks.
//!
//! * Figures 1–16 — per dataset × fitness function: the initial/final
//!   (IL, DR) dispersion plot and the max/mean/min score evolution.
//! * Figures 17–20 — the Flare robustness experiment with the best 5%/10%
//!   initial protections removed.
//! * The in-text timing table — mutation vs crossover generation cost and
//!   the share spent in the fitness function.
//! * The §3.1/§3.2/§3.3 improvement summaries.
//!
//! Run `cargo run -p cdp-bench --release --bin reproduce -- all` to emit
//! CSVs, ASCII plots and markdown summaries under `results/`. Individual
//! targets: `fig1`…`fig20`, `timing`, `summary-eq1`, `summary-eq2`,
//! `summary-robust`.

mod experiments;
mod extensions;
mod harness;
mod plot;
mod report;
mod timing;

pub use experiments::{figure_spec, FigureKind, FigureSpec, RunSpec, ALL_FIGURES};
pub use extensions::{
    kanon_comparison, pareto_comparison, KanonComparison, KanonRow, ParetoComparison, ParetoRow,
};
pub use harness::{ExperimentConfig, FigureOutput, Harness, RobustnessReport, SummaryRow};
pub use plot::{line_plot, scatter_plot};
pub use report::{markdown_table, write_csv};
pub use timing::{measure_timing, TimingReport};
