//! ASCII renditions of the paper's two figure families.
//!
//! Not publication graphics — quick terminal visual checks that the shapes
//! match the paper (clouds moving toward the origin / the diagonal, stepped
//! monotone score curves). The CSVs written next to each plot carry the
//! exact data for real plotting.

use cdp_core::{GenerationStats, ScatterPoint};

const W: usize = 64;
const H: usize = 24;

/// Render an initial-vs-final (IL, DR) dispersion plot.
/// `.` initial, `o` final, `@` overlapping.
pub fn scatter_plot(initial: &[ScatterPoint], fin: &[ScatterPoint], title: &str) -> String {
    let max_axis = initial
        .iter()
        .chain(fin)
        .flat_map(|p| [p.il, p.dr])
        .fold(1.0_f64, f64::max)
        .ceil();
    let mut grid = vec![vec![' '; W]; H];
    let place = |grid: &mut Vec<Vec<char>>, p: &ScatterPoint, mark: char| {
        let x = ((p.il / max_axis) * (W - 1) as f64).round() as usize;
        let y = ((p.dr / max_axis) * (H - 1) as f64).round() as usize;
        let row = H - 1 - y.min(H - 1);
        let col = x.min(W - 1);
        let cell = &mut grid[row][col];
        *cell = match (*cell, mark) {
            (' ', m) => m,
            ('.', 'o') | ('o', '.') => '@',
            (c, _) => c,
        };
    };
    for p in initial {
        place(&mut grid, p, '.');
    }
    for p in fin {
        place(&mut grid, p, 'o');
    }
    let mut s = format!("{title}\nDR ^  (. initial, o final, @ both)   axis 0..{max_axis:.0}\n");
    for row in grid {
        s.push_str("   |");
        s.extend(row);
        s.push('\n');
    }
    s.push_str("   +");
    s.push_str(&"-".repeat(W));
    s.push_str("> IL\n");
    s
}

/// Render a max/mean/min score evolution plot (`M` max, `a` mean, `m` min).
pub fn line_plot(series: &[GenerationStats], title: &str) -> String {
    if series.is_empty() {
        return format!("{title}\n(empty trace)\n");
    }
    let lo = series.iter().map(|g| g.min).fold(f64::INFINITY, f64::min);
    let hi = series
        .iter()
        .map(|g| g.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut grid = vec![vec![' '; W]; H];
    let n = series.len();
    let place = |grid: &mut Vec<Vec<char>>, i: usize, v: f64, mark: char| {
        let col = if n <= 1 { 0 } else { i * (W - 1) / (n - 1) };
        let y = ((v - lo) / span * (H - 1) as f64).round() as usize;
        let row = H - 1 - y.min(H - 1);
        if grid[row][col] == ' ' {
            grid[row][col] = mark;
        }
    };
    for (i, g) in series.iter().enumerate() {
        place(&mut grid, i, g.max, 'M');
        place(&mut grid, i, g.mean, 'a');
        place(&mut grid, i, g.min, 'm');
    }
    let mut s = format!(
        "{title}\nscore ^  (M max, a mean, m min)   range {lo:.2}..{hi:.2}, {n} snapshots\n"
    );
    for row in grid {
        s.push_str("   |");
        s.extend(row);
        s.push('\n');
    }
    s.push_str("   +");
    s.push_str(&"-".repeat(W));
    s.push_str("> generation\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_core::OperatorKind;

    fn pt(il: f64, dr: f64) -> ScatterPoint {
        ScatterPoint::from_pair("x".into(), il, dr, (il + dr) / 2.0)
    }

    #[test]
    fn scatter_contains_marks() {
        let s = scatter_plot(&[pt(10.0, 60.0)], &[pt(20.0, 20.0)], "t");
        assert!(s.contains('.'));
        assert!(s.contains('o'));
        assert!(s.contains("> IL"));
    }

    #[test]
    fn overlap_renders_at_sign() {
        let s = scatter_plot(&[pt(30.0, 30.0)], &[pt(30.0, 30.0)], "t");
        assert!(s.contains('@'));
    }

    #[test]
    fn line_plot_renders_three_series() {
        let gens: Vec<GenerationStats> = (0..50)
            .map(|i| GenerationStats {
                iteration: i,
                min: 20.0,
                mean: 30.0 - i as f64 * 0.1,
                max: 45.0 - i as f64 * 0.2,
                operator: Some(OperatorKind::Mutation),
                accepted: true,
            })
            .collect();
        let s = line_plot(&gens, "evolution");
        assert!(s.contains('M'));
        assert!(s.contains('a'));
        assert!(s.contains('m'));
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert!(line_plot(&[], "t").contains("empty"));
    }
}
