//! Small report writers: CSV files and markdown tables.

use std::fs;
use std::io::Write;
use std::path::Path;

/// Quote a CSV field when it contains separators, quotes or newlines
/// (RFC 4180) — protection names like `microagg(k=2,uni,median)` carry
/// commas.
fn csv_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write rows as a CSV file (first row = header). Fields are quoted when
/// needed; parent directories are created.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(fs::File::create(path)?);
    let head: Vec<String> = header.iter().map(|h| csv_field(h)).collect();
    writeln!(out, "{}", head.join(","))?;
    for row in rows {
        let fields: Vec<String> = row.iter().map(|f| csv_field(f)).collect();
        writeln!(out, "{}", fields.join(","))?;
    }
    out.flush()
}

/// Render a markdown table.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push_str("| ");
    s.push_str(&header.join(" | "));
    s.push_str(" |\n|");
    for _ in header {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push_str("| ");
        s.push_str(&row.join(" | "));
        s.push_str(" |\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("cdp_report_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let dir = std::env::temp_dir().join("cdp_report_test_q");
        let path = dir.join("q.csv");
        write_csv(
            &path,
            &["name", "v"],
            &[vec!["microagg(k=2,uni,median)".into(), "7".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "name,v\n\"microagg(k=2,uni,median)\",7\n");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn quotes_inside_fields_are_doubled() {
        assert_eq!(csv_field("a\"b,c"), "\"a\"\"b,c\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn markdown_shape() {
        let md = markdown_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert!(md.starts_with("| x | y |\n|---|---|\n"));
        assert!(md.contains("| 1 | 2 |"));
    }
}
