//! The paper's in-text timing table (§3.2 end): average cost of a mutation
//! generation vs a crossover generation, and the share consumed by the
//! fitness function.
//!
//! The paper reports 120.34 s per mutation generation (120.32 s fitness)
//! and 242.48 s per crossover generation (242.46 s fitness) on its testbed.
//! Absolute numbers are hardware-bound; the *shape* is what we reproduce:
//! fitness dominates (> 99%) and a crossover generation costs ≈ 2× a
//! mutation generation (two offspring evaluations instead of one).

use std::time::Instant;

use cdp_core::operators::{crossover, mutate};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig};
use cdp_sdc::{build_population, SuiteConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::markdown_table;

/// Measured generation-cost decomposition (milliseconds).
#[derive(Debug, Clone, Copy)]
pub struct TimingReport {
    /// Average cost of one full fitness evaluation.
    pub fitness_ms: f64,
    /// Average cost of one complete mutation generation
    /// (selection + operator + 1 evaluation + duel).
    pub mutation_gen_ms: f64,
    /// Average cost of one complete crossover generation
    /// (selection + operator + 2 evaluations + duels).
    pub crossover_gen_ms: f64,
    /// Operator-only cost of a mutation (clone + cell change).
    pub mutation_op_ms: f64,
    /// Operator-only cost of a crossover (two clones + segment swap).
    pub crossover_op_ms: f64,
}

impl TimingReport {
    /// Fraction of a mutation generation spent in the fitness function.
    pub fn fitness_share_mutation(&self) -> f64 {
        (self.fitness_ms / self.mutation_gen_ms).min(1.0)
    }

    /// Fraction of a crossover generation spent in the fitness function.
    pub fn fitness_share_crossover(&self) -> f64 {
        (2.0 * self.fitness_ms / self.crossover_gen_ms).min(1.0)
    }

    /// Crossover-to-mutation generation cost ratio (paper: ≈ 2.0).
    pub fn crossover_to_mutation_ratio(&self) -> f64 {
        self.crossover_gen_ms / self.mutation_gen_ms
    }

    /// Markdown table juxtaposing the paper's testbed numbers with ours.
    pub fn to_markdown(&self) -> String {
        let rows = vec![
            vec![
                "mutation generation".to_string(),
                "120.34 s".to_string(),
                format!("{:.2} ms", self.mutation_gen_ms),
            ],
            vec![
                "… of which fitness".to_string(),
                "120.32 s (99.98%)".to_string(),
                format!(
                    "{:.2} ms ({:.2}%)",
                    self.fitness_ms,
                    100.0 * self.fitness_share_mutation()
                ),
            ],
            vec![
                "crossover generation".to_string(),
                "242.48 s".to_string(),
                format!("{:.2} ms", self.crossover_gen_ms),
            ],
            vec![
                "… of which fitness".to_string(),
                "242.46 s (99.99%)".to_string(),
                format!(
                    "{:.2} ms ({:.2}%)",
                    2.0 * self.fitness_ms,
                    100.0 * self.fitness_share_crossover()
                ),
            ],
            vec![
                "non-fitness remainder".to_string(),
                "0.02 s".to_string(),
                format!(
                    "{:.4} ms (mut op) / {:.4} ms (xover op)",
                    self.mutation_op_ms, self.crossover_op_ms
                ),
            ],
            vec![
                "crossover / mutation ratio".to_string(),
                "2.02".to_string(),
                format!("{:.2}", self.crossover_to_mutation_ratio()),
            ],
        ];
        markdown_table(
            &["quantity", "paper (testbed)", "this implementation"],
            &rows,
        )
    }
}

/// Measure the decomposition on one dataset.
pub fn measure_timing(
    kind: DatasetKind,
    records: Option<usize>,
    reps: usize,
    seed: u64,
) -> TimingReport {
    let mut gc = GeneratorConfig::seeded(seed);
    if let Some(n) = records {
        gc = gc.with_records(n);
    }
    let ds = kind.generate(&gc);
    let pop = build_population(&ds, &SuiteConfig::paper(kind), seed).expect("paper suite");
    let evaluator =
        Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).expect("evaluator");
    let mut rng = StdRng::seed_from_u64(seed);
    let reps = reps.max(1);

    // fitness alone
    let t0 = Instant::now();
    for i in 0..reps {
        let masked = &pop[i % pop.len()].data;
        std::hint::black_box(evaluator.evaluate(masked));
    }
    let fitness_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // operators alone
    let t0 = Instant::now();
    for i in 0..reps {
        let mut child = pop[i % pop.len()].data.clone();
        std::hint::black_box(mutate(&mut child, &mut rng));
    }
    let mutation_op_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let t0 = Instant::now();
    for i in 0..reps {
        let a = &pop[i % pop.len()].data;
        let b = &pop[(i + 1) % pop.len()].data;
        std::hint::black_box(crossover(a, b, &mut rng));
    }
    let crossover_op_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // full mutation generation: selection + operator + 1 eval + duel
    let scores: Vec<f64> = pop.iter().map(|_| rng.gen::<f64>() * 50.0).collect();
    let t0 = Instant::now();
    for _ in 0..reps {
        let i = rng.gen_range(0..pop.len());
        let mut child = pop[i].data.clone();
        if mutate(&mut child, &mut rng).is_some() {
            let a = evaluator.evaluate(&child);
            std::hint::black_box(a.il() < scores[i]);
        }
    }
    let mutation_gen_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // full crossover generation: selection + operator + 2 evals + duels
    let t0 = Instant::now();
    for _ in 0..reps {
        let i = rng.gen_range(0..pop.len());
        let j = rng.gen_range(0..pop.len());
        let (z1, z2, _) = crossover(&pop[i].data, &pop[j].data, &mut rng);
        let a1 = evaluator.evaluate(&z1);
        let a2 = evaluator.evaluate(&z2);
        std::hint::black_box(a1.il() + a2.dr());
    }
    let crossover_gen_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

    TimingReport {
        fitness_ms,
        mutation_gen_ms,
        crossover_gen_ms,
        mutation_op_ms,
        crossover_op_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper_claims() {
        // Small instance, enough to see the structural ratios. Thresholds
        // are loose because the whole test suite runs in parallel and
        // steals cycles; the contention-free numbers come from the
        // `generation_cost` Criterion bench.
        let t = measure_timing(DatasetKind::Adult, Some(150), 8, 1);
        assert!(
            t.fitness_share_mutation() > 0.5,
            "fitness must dominate a mutation generation: {:.3}",
            t.fitness_share_mutation()
        );
        let ratio = t.crossover_to_mutation_ratio();
        assert!(
            (1.0..=5.0).contains(&ratio),
            "crossover should cost ≈2x a mutation generation, got {ratio:.2}"
        );
        assert!(t.mutation_op_ms < t.fitness_ms);
    }

    #[test]
    fn markdown_mentions_paper_numbers() {
        let t = TimingReport {
            fitness_ms: 10.0,
            mutation_gen_ms: 10.1,
            crossover_gen_ms: 20.3,
            mutation_op_ms: 0.05,
            crossover_op_ms: 0.09,
        };
        let md = t.to_markdown();
        assert!(md.contains("120.34 s"));
        assert!(md.contains("242.48 s"));
        assert!(md.contains("2.0")); // ratio column
    }
}
