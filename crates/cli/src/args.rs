//! A minimal `--flag value` argument parser.
//!
//! The workspace deliberately avoids an argument-parsing dependency; the
//! CLI grammar is flat (`cdp <command> --flag value …`), so ~100 lines
//! cover it, including `--flag=value`, boolean flags, and typed accessors.

use std::collections::BTreeMap;
use std::str::FromStr;

use crate::error::{CliError, Result};

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default, Clone)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse `--key value` / `--key=value` / bare `--switch` sequences.
    /// Positional arguments are rejected (the command name is consumed by
    /// the dispatcher before this runs).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self> {
        let mut flags = BTreeMap::new();
        let mut iter = argv.into_iter().peekable();
        while let Some(token) = iter.next() {
            let Some(stripped) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument `{token}`"
                )));
            };
            if stripped.is_empty() {
                return Err(CliError::Usage("empty flag `--`".into()));
            }
            if let Some((key, value)) = stripped.split_once('=') {
                flags.insert(key.to_string(), value.to_string());
            } else if iter
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false)
            {
                let value = iter.next().expect("peeked");
                flags.insert(stripped.to_string(), value);
            } else {
                // bare switch
                flags.insert(stripped.to_string(), "true".to_string());
            }
        }
        Ok(Args { flags })
    }

    /// Raw flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required flag value.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Parse a flag into `T`, with a default when absent.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{key}: cannot parse `{raw}`"))),
        }
    }

    /// Parse an optional flag into `T`; absent flags yield `None`.
    pub fn get_parse<T: FromStr>(&self, key: &str) -> Result<Option<T>> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("flag --{key}: cannot parse `{raw}`"))),
        }
    }

    /// Comma-separated list flag.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key).map(|raw| {
            raw.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        })
    }

    /// Reject unknown flags (catches typos early).
    pub fn expect_only(&self, known: &[&str]) -> Result<()> {
        for key in self.flags.keys() {
            if !known.contains(&key.as_str()) {
                return Err(CliError::Usage(format!(
                    "unknown flag --{key} (expected one of: {})",
                    known
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn key_value_pairs() {
        let a = parse(&["--seed", "42", "--out", "x.csv"]);
        assert_eq!(a.get("seed"), Some("42"));
        assert_eq!(a.get("out"), Some("x.csv"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn equals_form() {
        let a = parse(&["--seed=7", "--method=pram:0.2"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("method"), Some("pram:0.2"));
    }

    #[test]
    fn bare_switch_records_true() {
        let a = parse(&["--verbose", "--seed", "1"]);
        assert_eq!(a.get("verbose"), Some("true"));
        assert_eq!(a.get("seed"), Some("1"));
    }

    #[test]
    fn typed_accessors() {
        let a = parse(&["--k", "5"]);
        assert_eq!(a.get_or("k", 2usize).unwrap(), 5);
        assert_eq!(a.get_or("missing", 2usize).unwrap(), 2);
        assert_eq!(a.get_parse::<usize>("k").unwrap(), Some(5));
        assert_eq!(a.get_parse::<usize>("missing").unwrap(), None);
        let bad = parse(&["--k", "five"]);
        assert!(bad.get_or::<usize>("k", 0).is_err());
        assert!(bad.get_parse::<usize>("k").is_err());
    }

    #[test]
    fn list_flag() {
        let a = parse(&["--attrs", "A, B,C"]);
        assert_eq!(a.list("attrs").unwrap(), vec!["A", "B", "C"]);
        assert!(a.list("none").is_none());
    }

    #[test]
    fn positional_rejected() {
        assert!(Args::parse(vec!["stray".to_string()]).is_err());
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }

    #[test]
    fn unknown_flag_detection() {
        let a = parse(&["--seed", "1", "--typo", "x"]);
        assert!(a.expect_only(&["seed"]).is_err());
        assert!(a.expect_only(&["seed", "typo"]).is_ok());
    }

    #[test]
    fn missing_required_flag() {
        let a = parse(&[]);
        assert!(matches!(a.require("input"), Err(CliError::Usage(_))));
    }
}
