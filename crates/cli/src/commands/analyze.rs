//! `cdp analyze` — privacy-model audit (k-anonymity, risks, diversity) of a
//! masked CSV, plus an optional k-anonymization suggestion from the lattice
//! search.

use cdp_privacy::{report, CostKind, LatticeSearch, Recoder};

use crate::args::Args;
use crate::data::{hierarchies_for, load_pair, load_table_with, resolve_attrs, subtable};
use crate::error::{CliError, Result};

/// Usage text.
pub const USAGE: &str = "\
cdp analyze --masked <file.csv>
            [--original <file.csv>] [--attrs <A,B,C>] [--sensitive <S>]
            [--suggest-k <k>] [--hierarchy-dir <dir>] [--schema <sidecar>]

Audits the masked file's quasi-identifiers: k-anonymity profile, prosecutor
risk, journalist risk (needs --original), and l-diversity / t-closeness for
each --sensitive attribute. With --suggest-k, additionally searches the
generalization lattice (per-attribute <dir>/<ATTR>.csv files when present,
frequency-built hierarchies otherwise) for the cheapest full-domain
recoding reaching k-anonymity and reports it.";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "masked",
        "original",
        "attrs",
        "sensitive",
        "suggest-k",
        "hierarchy-dir",
        "schema",
    ])?;
    let masked_path = args.require("masked")?;

    // with an original, parse the masked file against its schema
    let (original, masked) = match args.get("original") {
        Some(orig_path) => {
            let (o, m) = load_pair(orig_path, masked_path, args.get("schema"))?;
            (Some(o), m)
        }
        None => (None, load_table_with(masked_path, args.get("schema"))?),
    };

    let qi_names = args.list("attrs");
    let sensitive_names = args.list("sensitive").unwrap_or_default();
    let qi_indices = {
        let all = resolve_attrs(&masked, qi_names)?;
        // sensitive attributes are never quasi-identifiers
        let sens_idx: Vec<usize> = sensitive_names
            .iter()
            .map(|n| {
                masked.schema().index_of(n).ok_or_else(|| {
                    CliError::Usage(format!("sensitive attribute `{n}` not in header"))
                })
            })
            .collect::<Result<_>>()?;
        all.into_iter()
            .filter(|j| !sens_idx.contains(j))
            .collect::<Vec<_>>()
    };
    if qi_indices.is_empty() {
        return Err(CliError::Usage(
            "no quasi-identifier attributes left after excluding --sensitive".into(),
        ));
    }

    let masked_sub = subtable(&masked, &qi_indices)?;
    let original_sub = original
        .as_ref()
        .map(|o| subtable(o, &qi_indices))
        .transpose()?;

    let sensitive: Vec<(&cdp_dataset::Attribute, &[cdp_dataset::Code])> = sensitive_names
        .iter()
        .map(|n| {
            let j = masked.schema().index_of(n).expect("validated above");
            (masked.schema().attr(j), masked.column(j))
        })
        .collect();

    let audit = report::audit(&masked_sub, original_sub.as_ref(), &sensitive)?;
    print!("{audit}");

    if let Some(k) = args.get_parse::<usize>("suggest-k")? {
        suggest(&masked, &qi_indices, k, args.get("hierarchy-dir"))?;
    }
    Ok(())
}

fn suggest(
    masked: &cdp_dataset::Table,
    qi_indices: &[usize],
    k: usize,
    hierarchy_dir: Option<&str>,
) -> Result<()> {
    let sub = subtable(masked, qi_indices)?;
    let hierarchies = hierarchies_for(masked, qi_indices, hierarchy_dir)?;
    let recoder = Recoder::new(&sub, hierarchies.iter().collect())?;
    let search = LatticeSearch::new(&sub, &recoder);
    match search.optimal(k, CostKind::Discernibility) {
        Ok(outcome) => {
            println!("suggestion: {k}-anonymous full-domain recoding found");
            for (i, &j) in qi_indices.iter().enumerate() {
                let attr = masked.schema().attr(j);
                let levels = hierarchies[i].n_levels();
                println!(
                    "  {}: generalize to level {}/{}",
                    attr.name(),
                    outcome.node[i],
                    levels - 1
                );
            }
            println!(
                "  achieves k={} discernibility={:.4} ({} partitions examined)",
                outcome.achieved_k, outcome.cost, outcome.partitions_computed
            );
        }
        Err(cdp_privacy::PrivacyError::Unsatisfiable { .. }) => {
            println!(
                "suggestion: no full-domain recoding reaches k={k}; \
                 consider local suppression (cdp protect --method suppress:{k})"
            );
        }
        Err(e) => return Err(e.into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_analyze");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn write_masked(name: &str) -> PathBuf {
        let path = tmp(name);
        let mut csv = String::from("AGE,ZIP,DIAG\n");
        for i in 0..24 {
            csv.push_str(["30,aa,flu\n", "30,aa,cold\n", "40,bb,flu\n", "40,bb,hep\n"][i % 4]);
        }
        std::fs::write(&path, csv).unwrap();
        path
    }

    #[test]
    fn audit_with_sensitive_attribute() {
        let masked = write_masked("sens.csv");
        run(&args(&[
            "--masked",
            masked.to_str().unwrap(),
            "--sensitive",
            "DIAG",
        ]))
        .unwrap();
    }

    #[test]
    fn audit_with_population_and_suggestion() {
        let masked = write_masked("pop.csv");
        run(&args(&[
            "--masked",
            masked.to_str().unwrap(),
            "--original",
            masked.to_str().unwrap(),
            "--attrs",
            "AGE,ZIP",
            "--suggest-k",
            "6",
        ]))
        .unwrap();
    }

    #[test]
    fn all_attrs_sensitive_is_error() {
        let path = tmp("one.csv");
        std::fs::write(&path, "S\nx\ny\n").unwrap();
        let err = run(&args(&[
            "--masked",
            path.to_str().unwrap(),
            "--sensitive",
            "S",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("quasi-identifier"));
    }

    #[test]
    fn unknown_sensitive_is_usage_error() {
        let masked = write_masked("unk.csv");
        let err = run(&args(&[
            "--masked",
            masked.to_str().unwrap(),
            "--sensitive",
            "NOPE",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("NOPE"));
    }
}
