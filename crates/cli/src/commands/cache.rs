//! `cdp cache` — inspect, verify or clear a snapshot-cache directory.
//!
//! The persistent evaluator cache (`--cache-dir` on `cdp serve` and
//! `cdp optimize`) is a flat directory of `<content-hash>.cdpsnap` files
//! in the versioned binary format of [`cdp_metrics::snapshot`]. This
//! command is the operator's view of that directory:
//!
//! * `ls` — one line per snapshot (hash, shape, size), broken files
//!   flagged inline, plus a totals line;
//! * `verify` — structurally check every file (magic, version, section
//!   framing, checksums); exits non-zero if any file is defective;
//! * `clear` — delete every snapshot file (and stale temp files from
//!   interrupted writers), reporting the bytes reclaimed. Other files in
//!   the directory are never touched.
//!
//! Defective files are *operationally harmless* — the loader falls back
//! to cold preparation and the next write replaces them — so `verify`
//! failing is a health signal, not an emergency.

use std::path::{Path, PathBuf};

use cdp::pipeline::SnapshotCacheConfig;
use cdp_metrics::snapshot;

use crate::args::Args;
use crate::error::{CliError, Result};

/// Usage text.
pub const USAGE: &str = "\
cdp cache <ls|verify|clear> --dir <dir>
  ls      list every snapshot in <dir>: content hash, original shape,
          file size; broken files are flagged inline
  verify  structurally check every snapshot (magic, format version,
          section framing, checksums); non-zero exit when any file is
          defective
  clear   delete every *.cdpsnap file (plus stale temp files left by
          interrupted writers) in <dir>; other files are never touched

<dir> is the directory passed as --cache-dir to `cdp serve` or
`cdp optimize`. Defective snapshots are harmless at runtime — the loader
falls back to cold preparation and rewrites them — so `verify` is a
health check, not a recovery step.";

/// Parse the shared `--cache-dir` / `--cache-cap` flag pair used by
/// `cdp serve` and `cdp optimize` into a snapshot-cache configuration.
pub(crate) fn snapshot_config_from(args: &Args) -> Result<Option<SnapshotCacheConfig>> {
    let cap = args.get_parse::<usize>("cache-cap")?;
    match args.get("cache-dir") {
        Some(dir) => {
            let mut config = SnapshotCacheConfig::new(dir);
            if let Some(cap) = cap {
                config = config.with_cap(cap);
            }
            Ok(Some(config))
        }
        None if cap.is_some() => Err(CliError::Usage(
            "--cache-cap requires --cache-dir (there is no in-memory-only cap)".into(),
        )),
        None => Ok(None),
    }
}

/// Run the command. `action` is the positional token after `cache`
/// (consumed by the dispatcher, since the flag parser is flag-only).
pub fn run(action: Option<&str>, args: &Args) -> Result<()> {
    args.expect_only(&["dir"])?;
    let dir = PathBuf::from(args.require("dir")?);
    match action {
        Some("ls") => ls(&dir),
        Some("verify") => verify(&dir),
        Some("clear") => clear(&dir),
        Some(other) => Err(CliError::Usage(format!(
            "unknown cache action `{other}` (expected ls, verify or clear)"
        ))),
        None => Err(CliError::Usage(
            "missing cache action (expected ls, verify or clear)".into(),
        )),
    }
}

/// Snapshot files in `dir`, sorted by file name (i.e. by content hash) so
/// the output is stable across runs.
fn snapshot_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::Cache(format!("cannot read {}: {e}", dir.display())))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(snapshot::EXTENSION))
        .collect();
    files.sort();
    Ok(files)
}

/// Stale temp files from interrupted writers (`.{hash}.{pid}.{seq}.tmp`).
fn stale_temp_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().and_then(|e| e.to_str()) == Some("tmp")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with('.'))
        })
        .collect()
}

fn ls(dir: &Path) -> Result<()> {
    let files = snapshot_files(dir)?;
    let mut total_bytes = 0u64;
    let mut broken = 0usize;
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        match snapshot::inspect(path) {
            Ok(info) => {
                total_bytes += info.bytes;
                println!(
                    "{name}  v{}  {} rows x {} attrs  {} KiB",
                    info.version,
                    info.rows,
                    info.attrs,
                    info.bytes / 1024,
                );
            }
            Err(e) => {
                broken += 1;
                println!("{name}  BROKEN: {e}");
            }
        }
    }
    println!(
        "{} snapshot(s), ~{} KiB{}",
        files.len(),
        total_bytes / 1024,
        if broken > 0 {
            format!(", {broken} broken")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn verify(dir: &Path) -> Result<()> {
    let files = snapshot_files(dir)?;
    let mut defects = Vec::new();
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        match snapshot::inspect(path) {
            Ok(_) => println!("{name}  ok"),
            Err(e) => {
                println!("{name}  FAILED: {e}");
                defects.push(format!("{name}: {e}"));
            }
        }
    }
    if defects.is_empty() {
        println!("verified {} snapshot(s), all ok", files.len());
        Ok(())
    } else {
        Err(CliError::Cache(format!(
            "{} of {} snapshot(s) defective: {}",
            defects.len(),
            files.len(),
            defects.join("; ")
        )))
    }
}

fn clear(dir: &Path) -> Result<()> {
    let mut files = snapshot_files(dir)?;
    files.extend(stale_temp_files(dir));
    let mut bytes = 0u64;
    let mut removed = 0usize;
    for path in &files {
        bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(path)
            .map_err(|e| CliError::Cache(format!("cannot remove {}: {e}", path.display())))?;
        removed += 1;
    }
    println!("removed {removed} file(s), ~{} KiB reclaimed", bytes / 1024);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::{Evaluator, MetricConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_cache").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    /// Write one real snapshot into `dir` and return its path.
    fn write_snapshot(dir: &Path) -> PathBuf {
        let original = DatasetKind::German
            .generate(&GeneratorConfig::seeded(4).with_records(50))
            .protected_subtable();
        let evaluator = Evaluator::new(&original, MetricConfig::default()).unwrap();
        snapshot::write(&evaluator, dir).unwrap()
    }

    #[test]
    fn ls_verify_clear_round_trip() {
        let dir = tmp_dir("round_trip");
        write_snapshot(&dir);
        // an unrelated file must survive `clear`
        std::fs::write(dir.join("README.txt"), "not a snapshot").unwrap();

        let dir_s = dir.to_str().unwrap();
        run(Some("ls"), &args(&["--dir", dir_s])).unwrap();
        run(Some("verify"), &args(&["--dir", dir_s])).unwrap();
        run(Some("clear"), &args(&["--dir", dir_s])).unwrap();
        assert!(snapshot_files(&dir).unwrap().is_empty());
        assert!(
            dir.join("README.txt").exists(),
            "clear only takes snapshots"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_fails_on_a_corrupt_snapshot() {
        let dir = tmp_dir("corrupt");
        let path = write_snapshot(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();

        let err = run(Some("verify"), &args(&["--dir", dir.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, CliError::Cache(_)), "{err}");
        assert!(err.to_string().contains("defective"), "{err}");
        // ls keeps going and flags it instead of failing
        run(Some("ls"), &args(&["--dir", dir.to_str().unwrap()])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn action_and_flag_validation() {
        let dir = tmp_dir("validation");
        let dir_s = dir.to_str().unwrap();
        assert!(
            run(None, &args(&["--dir", dir_s])).is_err(),
            "missing action"
        );
        assert!(
            run(Some("prune"), &args(&["--dir", dir_s])).is_err(),
            "unknown action"
        );
        assert!(run(Some("ls"), &args(&[])).is_err(), "missing --dir");
        assert!(
            run(Some("ls"), &args(&["--dir", dir_s, "--force"])).is_err(),
            "unknown flag"
        );
        let missing = dir.join("no_such_subdir");
        assert!(run(Some("ls"), &args(&["--dir", missing.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_config_parsing() {
        assert_eq!(snapshot_config_from(&args(&[])).unwrap(), None);
        let plain = snapshot_config_from(&args(&["--cache-dir", "/tmp/x"]))
            .unwrap()
            .unwrap();
        assert_eq!(plain.dir(), Path::new("/tmp/x"));
        assert_eq!(plain.cap_bytes(), None);
        let capped = snapshot_config_from(&args(&["--cache-dir", "/tmp/x", "--cache-cap", "4096"]))
            .unwrap()
            .unwrap();
        assert_eq!(capped.cap_bytes(), Some(4096));
        assert!(snapshot_config_from(&args(&["--cache-cap", "4096"])).is_err());
        assert!(
            snapshot_config_from(&args(&["--cache-dir", "/tmp/x", "--cache-cap", "lots"])).is_err()
        );
    }
}
