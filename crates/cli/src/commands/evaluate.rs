//! `cdp evaluate` — the paper's seven measures for an original/masked pair.
//!
//! A mask-and-score [`cdp::pipeline::ProtectionJob`] with a pre-masked
//! population of one: the pipeline binds the evaluator to the original and
//! assesses the masked file, exactly as the optimizer would score it.

use cdp::pipeline::ProtectionJob;
use cdp_metrics::{MetricConfig, ScoreAggregator};

use crate::args::Args;
use crate::data::{load_pair, resolve_attrs, subtable};
use crate::error::Result;

/// Usage text.
pub const USAGE: &str = "\
cdp evaluate --original <file.csv> --masked <file.csv>
             [--attrs <A,B,C>] [--interval-fraction <f>] [--rsrl-window <f>]
             [--schema <sidecar>]

Prints the information-loss (CTBIL, DBIL, EBIL) and disclosure-risk
(ID, DBRL, PRL, RSRL) breakdown of the masked file against the original,
plus the paper's two aggregated scores (Eq. 1 mean, Eq. 2 max).";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "original",
        "masked",
        "attrs",
        "interval-fraction",
        "rsrl-window",
        "schema",
    ])?;
    let (orig, masked) = load_pair(
        args.require("original")?,
        args.require("masked")?,
        args.get("schema"),
    )?;
    let indices = resolve_attrs(&orig, args.list("attrs"))?;

    let mut cfg = MetricConfig::default();
    cfg.interval_fraction = args.get_or("interval-fraction", cfg.interval_fraction)?;
    cfg.rsrl_window_fraction = args.get_or("rsrl-window", cfg.rsrl_window_fraction)?;

    let masked_sub = subtable(&masked, &indices)?;
    let report = ProtectionJob::builder()
        .table(orig, indices)
        .named_population([("masked".to_string(), masked_sub)])
        .metrics(cfg)
        .iterations(0) // score only
        .build()?
        .run()?;
    let a = &report.best.assessment;

    println!(
        "measures over {} records x {} attributes",
        report.table.n_rows(),
        report.protected.len()
    );
    println!("information loss");
    println!("  CTBIL {:7.2}", a.il_parts.ctbil);
    println!("  DBIL  {:7.2}", a.il_parts.dbil);
    println!("  EBIL  {:7.2}", a.il_parts.ebil);
    println!("  IL    {:7.2}  (mean of 3)", a.il());
    println!("disclosure risk");
    println!("  ID    {:7.2}", a.dr_parts.id);
    println!("  DBRL  {:7.2}", a.dr_parts.dbrl);
    println!("  PRL   {:7.2}", a.dr_parts.prl);
    println!("  RSRL  {:7.2}", a.dr_parts.rsrl);
    println!("  DR    {:7.2}  (mean of 4)", a.dr());
    println!("scores");
    println!("  mean (Eq.1) {:7.2}", a.score(ScoreAggregator::Mean));
    println!("  max  (Eq.2) {:7.2}", a.score(ScoreAggregator::Max));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_evaluate");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn write_files(prefix: &str) -> (PathBuf, PathBuf) {
        let orig = tmp(&format!("{prefix}_orig.csv"));
        let masked = tmp(&format!("{prefix}_masked.csv"));
        let mut o = String::from("A,B\n");
        let mut m = String::from("A,B\n");
        for i in 0..30 {
            let row = ["p,x", "q,y", "r,z"][i % 3];
            o.push_str(row);
            o.push('\n');
            // mask: collapse B onto x
            let masked_row = ["p,x", "q,x", "r,x"][i % 3];
            m.push_str(masked_row);
            m.push('\n');
        }
        std::fs::write(&orig, o).unwrap();
        std::fs::write(&masked, m).unwrap();
        (orig, masked)
    }

    #[test]
    fn identity_masking_scores_zero_il() {
        let (orig, _) = write_files("identity");
        let res = run(&args(&[
            "--original",
            orig.to_str().unwrap(),
            "--masked",
            orig.to_str().unwrap(),
        ]));
        res.unwrap();
    }

    #[test]
    fn collapsed_file_evaluates() {
        let (orig, masked) = write_files("collapsed");
        run(&args(&[
            "--original",
            orig.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--attrs",
            "A,B",
        ]))
        .unwrap();
    }

    #[test]
    fn bad_config_flag_is_reported() {
        let (orig, masked) = write_files("badcfg");
        let err = run(&args(&[
            "--original",
            orig.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--interval-fraction",
            "2.0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("interval_fraction"));
    }
}
