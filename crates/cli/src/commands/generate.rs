//! `cdp generate` — emit a synthetic evaluation dataset as CSV.

use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_dataset::io::write_table_path;

use crate::args::Args;
use crate::error::{CliError, Result};

/// Usage text.
pub const USAGE: &str = "\
cdp generate --dataset <adult|housing|german|flare> --out <file.csv>
             [--seed <u64>] [--records <n>]

Writes a seeded synthetic stand-in for one of the paper's four evaluation
datasets (same record counts, attribute counts and category cardinalities).";

/// Parse a dataset name.
pub fn dataset_kind(name: &str) -> Result<DatasetKind> {
    match name.to_ascii_lowercase().as_str() {
        "adult" => Ok(DatasetKind::Adult),
        "housing" => Ok(DatasetKind::Housing),
        "german" => Ok(DatasetKind::German),
        "flare" => Ok(DatasetKind::Flare),
        other => Err(CliError::Usage(format!(
            "unknown dataset `{other}` (adult, housing, german, flare)"
        ))),
    }
}

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&["dataset", "out", "seed", "records"])?;
    let kind = dataset_kind(args.require("dataset")?)?;
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = GeneratorConfig::seeded(seed);
    if let Some(n) = args.get_parse::<usize>("records")? {
        cfg = cfg.with_records(n);
    }

    let ds = kind.generate(&cfg);
    write_table_path(&ds.table, out)?;

    let protected: Vec<&str> = ds
        .protected
        .iter()
        .map(|&j| ds.table.schema().attr(j).name())
        .collect();
    println!(
        "wrote {} ({} records x {} attributes, seed {seed})",
        out,
        ds.table.n_rows(),
        ds.table.n_attrs()
    );
    println!("paper-protected attributes: {}", protected.join(", "));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_resolve() {
        assert_eq!(dataset_kind("adult").unwrap(), DatasetKind::Adult);
        assert_eq!(dataset_kind("HOUSING").unwrap(), DatasetKind::Housing);
        assert_eq!(dataset_kind("german").unwrap(), DatasetKind::German);
        assert_eq!(dataset_kind("flare").unwrap(), DatasetKind::Flare);
        assert!(dataset_kind("iris").is_err());
    }

    #[test]
    fn generate_writes_csv() {
        let dir = std::env::temp_dir().join("cdp_cli_generate");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("adult.csv");
        let args = Args::parse(
            [
                "--dataset",
                "adult",
                "--out",
                out.to_str().unwrap(),
                "--seed",
                "7",
                "--records",
                "50",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        run(&args).unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 51); // header + 50 records
        assert!(text.starts_with("AGE") || text.contains(','));
    }

    #[test]
    fn generate_rejects_bad_flags() {
        let args = Args::parse(
            ["--dataset", "adult", "--out", "x.csv", "--oops", "1"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}
