//! `cdp hierarchy` — export the frequency-built generalization hierarchies
//! of a CSV file as editable per-attribute VGH files.

use std::path::Path;

use cdp_dataset::io::write_hierarchy_path;

use crate::args::Args;
use crate::data::{auto_hierarchies, load_table_with, resolve_attrs};
use crate::error::Result;

/// Usage text.
pub const USAGE: &str = "\
cdp hierarchy --input <file.csv> --out <dir> [--attrs <A,B,C>]
              [--schema <sidecar>]

Writes one <dir>/<ATTR>.csv generalization-hierarchy file per selected
attribute (default: all), built automatically from the observed data:
merged runs for ordinal attributes, fold-rare-into-mode for nominal ones.

The files are the starting point for hand curation: each row is one base
category, column l is its group at level l, and a group is represented by
the member category named in that column. Edited files are consumed by
`cdp protect --hierarchy-dir` and `cdp analyze --hierarchy-dir`.";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&["input", "out", "attrs", "schema"])?;
    let table = load_table_with(args.require("input")?, args.get("schema"))?;
    let indices = resolve_attrs(&table, args.list("attrs"))?;
    let out_dir = Path::new(args.require("out")?);
    std::fs::create_dir_all(out_dir)?;

    let hierarchies = auto_hierarchies(&table, &indices)?;
    for (&j, h) in indices.iter().zip(&hierarchies) {
        let attr = table.schema().attr(j);
        let path = out_dir.join(format!("{}.csv", attr.name()));
        write_hierarchy_path(attr, h, &path)?;
        println!(
            "wrote {} ({} categories, {} levels)",
            path.display(),
            attr.n_categories(),
            h.n_levels()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::io::read_hierarchy_path;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_hierarchy").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn exports_hierarchies_that_read_back() {
        let dir = tmp("export");
        let input = dir.join("data.csv");
        std::fs::write(&input, "CITY,JOB\na,x\nb,y\na,x\nc,z\na,y\nb,x\na,x\nb,y\n").unwrap();
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let table = crate::data::load_table(&input).unwrap();
        for (j, name) in [(0usize, "CITY"), (1, "JOB")] {
            let path = dir.join(format!("{name}.csv"));
            let h = read_hierarchy_path(table.schema().attr(j), &path).unwrap();
            assert!(h.n_levels() >= 2, "{name} has a generalization level");
        }
    }

    #[test]
    fn respects_attr_selection() {
        let dir = tmp("select");
        let input = dir.join("data.csv");
        std::fs::write(&input, "A,B\nx,1\ny,2\nx,1\n").unwrap();
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--attrs",
            "B",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(dir.join("B.csv").exists());
        assert!(!dir.join("A.csv").exists());
    }
}
