//! The CLI subcommands.

pub mod analyze;
pub mod cache;
pub mod evaluate;
pub mod generate;
pub mod hierarchy;
pub mod optimize;
pub mod protect;
pub mod serve;
