//! `cdp optimize` — run the evolutionary optimizer (scalar fitness,
//! Algorithm 1 of the paper) or the NSGA-II extension over a population of
//! protections, writing figure-ready CSVs.

use std::io::Write;
use std::path::Path;

use cdp_core::nsga::{Nsga2, NsgaConfig};
use cdp_core::{EvoConfig, Evolution, ScatterPoint};
use cdp_dataset::io::write_table_path;
use cdp_dataset::{SubTable, Table};
use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
use cdp_sdc::{build_population, MethodContext, SuiteConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::Args;
use crate::commands::generate::dataset_kind;
use crate::data::{auto_hierarchies, load_table_with, resolve_attrs, subtable};
use crate::error::{CliError, Result};
use crate::spec::parse_method;

/// Usage text.
pub const USAGE: &str = "\
cdp optimize (--dataset <name> | --input <file.csv>) --out <dir>
             [--attrs <A,B,C>]           attributes to protect (input mode)
             [--methods <spec,spec,...>] initial population (input mode)
             [--copies <n>]              seeds per method spec (default 2)
             [--suite <small|paper>]     population sweep (dataset mode)
             [--records <n>]             record count (dataset mode)
             [--schema <sidecar>]        attribute kinds/dictionaries (input mode)
             [--mode <scalar|nsga>]      optimizer (default scalar)
             [--fitness <mean|max>]      scalar aggregator (default max)
             [--iters <n>]               iterations/generations (default 300)
             [--seed <u64>]

Scalar mode writes evolution.csv, scatter.csv and best.csv into --out;
NSGA-II mode writes front.csv and hypervolume.csv.";

/// Default initial-population recipe for `--input` mode.
const DEFAULT_METHODS: &str =
    "microagg:3,microagg:6,topcode:0.15,bottomcode:0.15,recode:1,rankswap:2,rankswap:8,pram:0.8,pram:0.65";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "dataset", "input", "out", "attrs", "methods", "copies", "suite", "records", "mode",
        "fitness", "iters", "seed", "schema",
    ])?;
    let out_dir = Path::new(args.require("out")?);
    std::fs::create_dir_all(out_dir)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let iters: usize = args.get_or("iters", 300)?;

    let (table, original, population) = load_inputs(args, seed)?;
    let evaluator = Evaluator::new(&original, MetricConfig::default())?;

    println!(
        "optimizing {} protections of {} records x {} attributes ({} iterations)",
        population.len(),
        original.n_rows(),
        original.n_attrs(),
        iters
    );

    match args.get("mode").unwrap_or("scalar") {
        "scalar" => run_scalar(args, evaluator, population, &table, out_dir, seed, iters),
        "nsga" => run_nsga(evaluator, population, out_dir, seed, iters),
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (scalar, nsga)"
        ))),
    }
}

/// A named initial population of protections.
type NamedPopulation = Vec<(String, SubTable)>;

/// Resolve the input mode into (full table, original sub-table, population).
fn load_inputs(args: &Args, seed: u64) -> Result<(Table, SubTable, NamedPopulation)> {
    match (args.get("dataset"), args.get("input")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--dataset and --input are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Usage(
            "one of --dataset or --input is required".into(),
        )),
        (Some(name), None) => {
            let kind = dataset_kind(name)?;
            let mut cfg = cdp_dataset::generators::GeneratorConfig::seeded(seed);
            if let Some(n) = args.get_parse::<usize>("records")? {
                cfg = cfg.with_records(n);
            }
            let ds = kind.generate(&cfg);
            let suite = match args.get("suite").unwrap_or("small") {
                "small" => SuiteConfig::small(),
                "paper" => SuiteConfig::paper(ds.kind),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown suite `{other}` (small, paper)"
                    )))
                }
            };
            let population: Vec<(String, SubTable)> = build_population(&ds, &suite, seed)?
                .into_iter()
                .map(Into::into)
                .collect();
            Ok((ds.table.clone(), ds.protected_subtable(), population))
        }
        (None, Some(path)) => {
            let table = load_table_with(path, args.get("schema"))?;
            let indices = resolve_attrs(&table, args.list("attrs"))?;
            let original = subtable(&table, &indices)?;
            let hierarchies = auto_hierarchies(&table, &indices)?;
            let hierarchy_refs: Vec<&cdp_dataset::Hierarchy> = hierarchies.iter().collect();
            let ctx = MethodContext {
                hierarchies: &hierarchy_refs,
            };
            let specs = args
                .get("methods")
                .unwrap_or(DEFAULT_METHODS)
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect::<Vec<_>>();
            let copies: usize = args.get_or("copies", 2)?;
            if copies == 0 {
                return Err(CliError::Usage("--copies must be at least 1".into()));
            }
            let mut population = Vec::with_capacity(specs.len() * copies);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x000C_EA11);
            for spec in &specs {
                let method = parse_method(spec)?;
                for copy in 0..copies {
                    let data = method.protect(&original, &ctx, &mut rng)?;
                    population.push((format!("{}#{}", method.name(), copy), data));
                }
            }
            Ok((table, original, population))
        }
    }
}

fn run_scalar(
    args: &Args,
    evaluator: Evaluator,
    population: Vec<(String, SubTable)>,
    table: &Table,
    out_dir: &Path,
    seed: u64,
    iters: usize,
) -> Result<()> {
    let aggregator = match args.get("fitness").unwrap_or("max") {
        "mean" => ScoreAggregator::Mean,
        "max" => ScoreAggregator::Max,
        other => {
            return Err(CliError::Usage(format!(
                "unknown fitness `{other}` (mean, max)"
            )))
        }
    };
    let config = EvoConfig::builder()
        .iterations(iters)
        .aggregator(aggregator)
        .seed(seed)
        .build();
    let outcome = Evolution::new(evaluator, config)
        .with_named_population(population)?
        .run();

    // evolution.csv: the paper's max/mean/min series
    let mut evolution = std::fs::File::create(out_dir.join("evolution.csv"))?;
    writeln!(evolution, "iteration,min,mean,max")?;
    for g in &outcome.trace.generations {
        writeln!(
            evolution,
            "{},{:.4},{:.4},{:.4}",
            g.iteration, g.min, g.mean, g.max
        )?;
    }

    // scatter.csv: initial + final (IL, DR) dispersion
    let mut scatter = std::fs::File::create(out_dir.join("scatter.csv"))?;
    writeln!(scatter, "phase,name,il,dr,score")?;
    write_points(&mut scatter, "initial", &outcome.initial)?;
    write_points(&mut scatter, "final", &outcome.final_points)?;

    // best.csv: the winning protected file, substituted into the full table
    let best = outcome.population.best();
    let output = table.with_subtable(&best.data)?;
    write_table_path(&output, out_dir.join("best.csv"))?;

    let summary = outcome.summary();
    println!(
        "best score {:.2} -> {:.2} ({}), files in {}",
        summary.initial_min,
        summary.final_min,
        best.name,
        out_dir.display()
    );
    println!(
        "max {:.2} -> {:.2} ({:+.2}%), mean {:.2} -> {:.2} ({:+.2}%)",
        summary.initial_max,
        summary.final_max,
        -summary.improvement_max(),
        summary.initial_mean,
        summary.final_mean,
        -summary.improvement_mean(),
    );
    Ok(())
}

fn run_nsga(
    evaluator: Evaluator,
    population: Vec<(String, SubTable)>,
    out_dir: &Path,
    seed: u64,
    iters: usize,
) -> Result<()> {
    let config = NsgaConfig {
        generations: iters,
        seed,
        ..NsgaConfig::default()
    };
    let outcome = Nsga2::new(evaluator, config)
        .with_named_population(population)?
        .run();

    let mut front = std::fs::File::create(out_dir.join("front.csv"))?;
    writeln!(front, "phase,name,il,dr,score")?;
    write_points(&mut front, "initial", &outcome.initial_front)?;
    write_points(&mut front, "final", &outcome.front)?;
    write_points(&mut front, "archive", &outcome.archive_front)?;

    let mut hv = std::fs::File::create(out_dir.join("hypervolume.csv"))?;
    writeln!(hv, "generation,hypervolume")?;
    for (generation, value) in outcome.hypervolume_series.iter().enumerate() {
        writeln!(hv, "{generation},{value:.4}")?;
    }

    println!(
        "front size {} -> {} (archive {}), hypervolume {:.0} -> {:.0}, {} evaluations, files in {}",
        outcome.initial_front.len(),
        outcome.front.len(),
        outcome.archive_front.len(),
        outcome.hypervolume_series.first().copied().unwrap_or(0.0),
        outcome.hypervolume_series.last().copied().unwrap_or(0.0),
        outcome.evaluations,
        out_dir.display()
    );
    Ok(())
}

fn write_points(out: &mut std::fs::File, phase: &str, points: &[ScatterPoint]) -> Result<()> {
    for p in points {
        writeln!(
            out,
            "{phase},{},{:.4},{:.4},{:.4}",
            p.name, p.il, p.dr, p.score
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_optimize").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn dataset_scalar_mode_writes_artifacts() {
        let out = tmp_dir("scalar");
        run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "60",
            "--iters",
            "20",
            "--seed",
            "3",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        for file in ["evolution.csv", "scatter.csv", "best.csv"] {
            let text = std::fs::read_to_string(out.join(file)).unwrap();
            assert!(text.lines().count() > 1, "{file} has content");
        }
        let evolution = std::fs::read_to_string(out.join("evolution.csv")).unwrap();
        assert!(evolution.starts_with("iteration,min,mean,max"));
        assert_eq!(evolution.lines().count(), 22); // header + initial + 20
    }

    #[test]
    fn input_nsga_mode_writes_front() {
        let dir = tmp_dir("nsga");
        let input = dir.join("input.csv");
        let mut csv = String::from("X,Y,Z\n");
        for i in 0..60 {
            csv.push_str(["a,p,1\n", "b,q,2\n", "c,r,3\n", "a,q,1\n"][i % 4]);
        }
        std::fs::write(&input, csv).unwrap();
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--attrs",
            "X,Y",
            "--methods",
            "pram:0.8,rankswap:3",
            "--copies",
            "3",
            "--mode",
            "nsga",
            "--iters",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let front = std::fs::read_to_string(dir.join("front.csv")).unwrap();
        assert!(front.starts_with("phase,name,il,dr,score"));
        assert!(front.contains("final,"));
        let hv = std::fs::read_to_string(dir.join("hypervolume.csv")).unwrap();
        assert_eq!(hv.lines().count(), 7); // header + initial + 5 generations
    }

    #[test]
    fn mutually_exclusive_inputs_rejected() {
        let out = tmp_dir("bad");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--input",
            "x.csv",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        let err2 = run(&args(&["--out", out.to_str().unwrap()])).unwrap_err();
        assert!(err2.to_string().contains("required"));
    }

    #[test]
    fn unknown_mode_and_fitness_rejected() {
        let out = tmp_dir("flags");
        for (flag, value) in [("mode", "annealing"), ("fitness", "min")] {
            let err = run(&args(&[
                "--dataset",
                "adult",
                "--records",
                "40",
                "--iters",
                "2",
                &format!("--{flag}"),
                value,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_err();
            assert!(err.to_string().contains(value), "--{flag} {value}");
        }
    }
}
