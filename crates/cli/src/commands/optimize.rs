//! `cdp optimize` — run the evolutionary optimizer (scalar fitness,
//! Algorithm 1 of the paper) or NSGA-II over a population of protections,
//! writing figure-ready CSVs.
//!
//! Flags deserialize into one [`cdp::pipeline::ProtectionJob`] carrying
//! its [`cdp::pipeline::OptimizerMode`]; both modes run through
//! [`Session::run_with`], so the CLI and the library cannot drift.

use std::io::Write;
use std::path::Path;

use cdp::pipeline::{JobEvent, OptimizerMode, ProtectionJob, Session, SnapshotCacheConfig};
use cdp_core::ScatterPoint;
use cdp_dataset::io::write_table_path;

use crate::args::Args;
use crate::commands::generate::dataset_kind;
use crate::data::{load_table_with, resolve_attrs};
use crate::error::{CliError, Result};
use crate::spec::{
    parse_fitness, parse_method, parse_mode, parse_suite, IncMode, JobSpec, SpecMode,
};

/// Usage text.
pub const USAGE: &str = "\
cdp optimize (--dataset <name> | --input <file.csv> | --job <spec>) --out <dir>
             [--attrs <A,B,C>]           attributes to protect (input mode)
             [--methods <spec,spec,...>] initial population (input mode)
             [--copies <n>]              seeds per method spec (default 2)
             [--suite <small|paper>]     population sweep (dataset mode)
             [--records <n>]             record count (dataset mode)
             [--schema <sidecar>]        attribute kinds/dictionaries (input mode)
             [--mode <scalar|nsga>]      optimizer (default scalar)
             [--fitness <mean|max>]      scalar aggregator (default max)
             [--iters <n>]               iterations/generations (default 300)
             [--drop <fraction>]         drop best initial fraction (scalar)
             [--offspring <n>]           offspring per generation (nsga; 0 = pop size)
             [--xprob <p>]               crossover probability (nsga; default 0.5)
             [--seed <u64>]
             [--cache-dir <dir>]         persistent snapshot cache: the prepared
                                         evaluator is written to <dir> and later
                                         runs rehydrate it instead of re-preparing
             [--cache-cap <bytes>]       LRU byte cap on the in-memory cache tier
                                         (requires --cache-dir)

Scalar mode writes evolution.csv, scatter.csv and best.csv into --out;
NSGA-II mode writes front.csv, hypervolume.csv and best.csv (the front's
knee point).

--job takes one quoted key=value job spec — exactly the `job:` line a
dataset-mode run echoes — so any run can be reproduced verbatim:
  cdp optimize --job 'dataset=adult suite=paper fitness=max iters=300 seed=7' --out dir
  cdp optimize --job 'dataset=german suite=small mode=nsga gens=200 seed=7' --out dir";

/// Default initial-population recipe for `--input` mode.
const DEFAULT_METHODS: &str =
    "microagg:3,microagg:6,topcode:0.15,bottomcode:0.15,recode:1,rankswap:2,rankswap:8,pram:0.8,pram:0.65";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "dataset",
        "input",
        "job",
        "out",
        "attrs",
        "methods",
        "copies",
        "suite",
        "records",
        "mode",
        "fitness",
        "iters",
        "drop",
        "offspring",
        "xprob",
        "seed",
        "schema",
        "cache-dir",
        "cache-cap",
    ])?;
    let out_dir = Path::new(args.require("out")?);
    std::fs::create_dir_all(out_dir)?;

    let snapshot = super::cache::snapshot_config_from(args)?;
    let job = job_from_args(args)?;
    match job.optimizer() {
        OptimizerMode::Scalar(_) => run_scalar(&job, out_dir, snapshot),
        OptimizerMode::Nsga(_) => run_nsga(&job, out_dir, snapshot),
    }
}

/// Reject flags that do not apply under the selected optimizer mode, with
/// the right mode named.
fn reject_cross_mode_flags(args: &Args, mode: SpecMode) -> Result<()> {
    let (wrong, hint) = match mode {
        SpecMode::Scalar => (["offspring", "xprob"].as_slice(), "--mode nsga"),
        SpecMode::Nsga => (["fitness", "drop"].as_slice(), "the (default) scalar mode"),
    };
    for flag in wrong {
        if args.get(flag).is_some() {
            return Err(CliError::Usage(format!(
                "--{flag} applies to {hint}, not --mode {}",
                mode.name()
            )));
        }
    }
    Ok(())
}

/// Deserialize the flags into one [`ProtectionJob`].
fn job_from_args(args: &Args) -> Result<ProtectionJob> {
    if let Some(text) = args.get("job") {
        // a whole run as one pasteable spec string
        if args.get("dataset").is_some() || args.get("input").is_some() {
            return Err(CliError::Usage(
                "--job replaces --dataset/--input; pass one source only".into(),
            ));
        }
        if args.get("mode").is_some() {
            return Err(CliError::Usage(
                "the optimizer mode is part of the --job spec (mode=nsga); drop --mode".into(),
            ));
        }
        return JobSpec::parse(text)?.to_job();
    }
    let mode = match args.get("mode") {
        Some(value) => parse_mode(value)?,
        None => SpecMode::Scalar,
    };
    reject_cross_mode_flags(args, mode)?;
    match (args.get("dataset"), args.get("input")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--dataset and --input are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Usage(
            "one of --dataset or --input is required".into(),
        )),
        (Some(name), None) => {
            // dataset mode: the flags map 1:1 onto the CLI job-spec fields
            let mut spec = JobSpec {
                dataset: dataset_kind(name)?,
                mode,
                // incremental evaluation defaults are mode-dependent
                inc: IncMode::default_for(mode),
                ..JobSpec::default()
            };
            spec.records = args.get_parse("records")?;
            if let Some(value) = args.get("suite") {
                spec.suite = parse_suite(value)?;
            }
            spec.seed = args.get_or("seed", spec.seed)?;
            match mode {
                SpecMode::Scalar => {
                    if let Some(value) = args.get("fitness") {
                        spec.fitness = parse_fitness(value)?;
                    }
                    spec.iters = args.get_or("iters", spec.iters)?;
                    spec.drop = args.get_or("drop", spec.drop)?;
                }
                SpecMode::Nsga => {
                    // --iters doubles as the generation count, keeping the
                    // historical flag spelling
                    spec.gens = args.get_or("iters", spec.gens)?;
                    spec.offspring = args.get_or("offspring", spec.offspring)?;
                    spec.xprob = args.get_or("xprob", spec.xprob)?;
                }
            }
            spec.to_job()
        }
        (None, Some(path)) => {
            let table = load_table_with(path, args.get("schema"))?;
            let indices = resolve_attrs(&table, args.list("attrs"))?;
            let methods = args
                .get("methods")
                .unwrap_or(DEFAULT_METHODS)
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(parse_method)
                .collect::<Result<Vec<_>>>()?;
            let copies: usize = args.get_or("copies", 2)?;
            if args.get("suite").is_some() {
                return Err(CliError::Usage(
                    "--suite applies to dataset mode; use --methods with --input".into(),
                ));
            }
            let mut builder = ProtectionJob::builder()
                .table(table, indices)
                .methods(methods)
                .copies(copies)
                .iterations(args.get_or("iters", 300)?)
                .seed(args.get_or("seed", 42)?);
            match mode {
                SpecMode::Scalar => {
                    builder = builder.drop_best_fraction(args.get_or("drop", 0.0)?);
                    if let Some(value) = args.get("fitness") {
                        builder = builder.aggregator(parse_fitness(value)?);
                    } else {
                        builder = builder.aggregator(cdp_metrics::ScoreAggregator::Max);
                    }
                }
                SpecMode::Nsga => {
                    builder = builder.nsga();
                    if let Some(n) = args.get_parse::<usize>("offspring")? {
                        builder = builder.offspring(n);
                    }
                    if let Some(p) = args.get_parse::<f64>("xprob")? {
                        builder = builder.crossover_prob(p);
                    }
                }
            }
            Ok(builder.build()?)
        }
    }
}

fn run_scalar(
    job: &ProtectionJob,
    out_dir: &Path,
    snapshot: Option<SnapshotCacheConfig>,
) -> Result<()> {
    if job.iterations() == 0 {
        return Err(CliError::Usage(
            "scalar mode needs --iters >= 1 (0 is mask-and-score only)".into(),
        ));
    }
    // echo the canonical spec so any dataset-mode run can be reproduced by
    // pasting the line back into the flags
    if let Ok(spec) = JobSpec::from_job(job) {
        println!("job: {}", spec.to_spec_string());
    }
    let mut session = Session::new();
    session.set_snapshot_cache(snapshot);
    let mut dims = (0usize, 0usize);
    let report = session.run_with(job, |event| match event {
        JobEvent::SourceReady {
            rows, protected, ..
        } => dims = (*rows, *protected),
        JobEvent::PopulationReady { size } => println!(
            "optimizing {size} protections of {} records x {} attributes ({} iterations)",
            dims.0,
            dims.1,
            job.iterations()
        ),
        _ => {}
    })?;
    let outcome = report.scalar_outcome().expect("iterations >= 1 evolves");

    // evolution.csv: the paper's max/mean/min series
    let mut evolution = std::fs::File::create(out_dir.join("evolution.csv"))?;
    writeln!(evolution, "iteration,min,mean,max")?;
    for g in &outcome.trace.generations {
        writeln!(
            evolution,
            "{},{:.4},{:.4},{:.4}",
            g.iteration, g.min, g.mean, g.max
        )?;
    }

    // scatter.csv: initial + final (IL, DR) dispersion
    let mut scatter = std::fs::File::create(out_dir.join("scatter.csv"))?;
    writeln!(scatter, "phase,name,il,dr,score")?;
    write_points(&mut scatter, "initial", &outcome.initial)?;
    write_points(&mut scatter, "final", &outcome.final_points)?;

    // best.csv: the winning protected file, substituted into the full table
    write_table_path(&report.published_best()?, out_dir.join("best.csv"))?;

    let summary = outcome.summary();
    println!(
        "best score {:.2} -> {:.2} ({}), files in {}",
        summary.initial_min,
        summary.final_min,
        report.best.name,
        out_dir.display()
    );
    println!(
        "max {:.2} -> {:.2} ({:+.2}%), mean {:.2} -> {:.2} ({:+.2}%)",
        summary.initial_max,
        summary.final_max,
        -summary.improvement_max(),
        summary.initial_mean,
        summary.final_mean,
        -summary.improvement_mean(),
    );
    Ok(())
}

fn run_nsga(
    job: &ProtectionJob,
    out_dir: &Path,
    snapshot: Option<SnapshotCacheConfig>,
) -> Result<()> {
    // NSGA-II is a first-class job mode: the run goes through the same
    // Session engine as the scalar path, artifact emission lives on the
    // report's `Front`.
    if let Ok(spec) = JobSpec::from_job(job) {
        println!("job: {}", spec.to_spec_string());
    }
    let mut session = Session::new();
    session.set_snapshot_cache(snapshot);
    let mut dims = (0usize, 0usize);
    let report = session.run_with(job, |event| match event {
        JobEvent::SourceReady {
            rows, protected, ..
        } => dims = (*rows, *protected),
        JobEvent::PopulationReady { size } => println!(
            "optimizing {size} protections of {} records x {} attributes ({} generations)",
            dims.0,
            dims.1,
            job.iterations()
        ),
        _ => {}
    })?;
    let front = report.front().expect("nsga jobs produce a front");

    front.write_front_csv(std::fs::File::create(out_dir.join("front.csv"))?)?;
    front.write_hypervolume_csv(std::fs::File::create(out_dir.join("hypervolume.csv"))?)?;
    // best.csv: the knee point of the front, substituted into the full table
    write_table_path(&report.published_best()?, out_dir.join("best.csv"))?;

    println!(
        "front size {} -> {} (archive {}), hypervolume {:.0} -> {:.0}, {} evaluations, files in {}",
        front.initial.len(),
        front.points.len(),
        front.archive.len(),
        front.initial_hypervolume(),
        front.final_hypervolume(),
        front.evaluations,
        out_dir.display()
    );
    println!(
        "knee point `{}` (IL {:.2}, DR {:.2}) written to best.csv",
        report.best.name,
        report.best.assessment.il(),
        report.best.assessment.dr()
    );
    Ok(())
}

fn write_points(out: &mut std::fs::File, phase: &str, points: &[ScatterPoint]) -> Result<()> {
    for p in points {
        writeln!(
            out,
            "{phase},{},{:.4},{:.4},{:.4}",
            p.name, p.il, p.dr, p.score
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_optimize").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn dataset_scalar_mode_writes_artifacts() {
        let out = tmp_dir("scalar");
        run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "60",
            "--iters",
            "20",
            "--seed",
            "3",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        for file in ["evolution.csv", "scatter.csv", "best.csv"] {
            let text = std::fs::read_to_string(out.join(file)).unwrap();
            assert!(text.lines().count() > 1, "{file} has content");
        }
        let evolution = std::fs::read_to_string(out.join("evolution.csv")).unwrap();
        assert!(evolution.starts_with("iteration,min,mean,max"));
        assert_eq!(evolution.lines().count(), 22); // header + initial + 20
    }

    #[test]
    fn job_flag_runs_a_pasted_spec() {
        let out = tmp_dir("jobflag");
        run(&args(&[
            "--job",
            "dataset=german suite=small fitness=mean iters=5 seed=2 records=50",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.join("best.csv").exists());
        // --job excludes the other source flags
        let err = run(&args(&[
            "--job",
            "dataset=german",
            "--dataset",
            "adult",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--job replaces"));
    }

    #[test]
    fn scalar_mode_rejects_zero_iterations_up_front() {
        let out = tmp_dir("zeroiters");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "40",
            "--iters",
            "0",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--iters >= 1"));
    }

    #[test]
    fn dataset_mode_supports_drop_fraction() {
        let out = tmp_dir("drop");
        run(&args(&[
            "--dataset",
            "flare",
            "--records",
            "60",
            "--iters",
            "5",
            "--drop",
            "0.10",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let scatter = std::fs::read_to_string(out.join("scatter.csv")).unwrap();
        let initial = scatter
            .lines()
            .filter(|l| l.starts_with("initial,"))
            .count();
        assert!(initial < 12, "drop must shrink the population: {initial}");
    }

    #[test]
    fn input_nsga_mode_writes_front() {
        let dir = tmp_dir("nsga");
        let input = dir.join("input.csv");
        let mut csv = String::from("X,Y,Z\n");
        for i in 0..60 {
            csv.push_str(["a,p,1\n", "b,q,2\n", "c,r,3\n", "a,q,1\n"][i % 4]);
        }
        std::fs::write(&input, csv).unwrap();
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--attrs",
            "X,Y",
            "--methods",
            "pram:0.8,rankswap:3",
            "--copies",
            "3",
            "--mode",
            "nsga",
            "--iters",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let front = std::fs::read_to_string(dir.join("front.csv")).unwrap();
        assert!(front.starts_with("phase,name,il,dr,score"));
        assert!(front.contains("final,"));
        let hv = std::fs::read_to_string(dir.join("hypervolume.csv")).unwrap();
        assert_eq!(hv.lines().count(), 7); // header + initial + 5 generations
    }

    #[test]
    fn dataset_nsga_mode_writes_front_and_knee_point() {
        let out = tmp_dir("nsga_ds");
        run(&args(&[
            "--dataset",
            "german",
            "--records",
            "60",
            "--mode",
            "nsga",
            "--iters",
            "4",
            "--seed",
            "6",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let front = std::fs::read_to_string(out.join("front.csv")).unwrap();
        assert!(front.starts_with("phase,name,il,dr,score"));
        for phase in ["initial,", "final,", "archive,"] {
            assert!(front.contains(phase), "missing {phase} rows");
        }
        let hv = std::fs::read_to_string(out.join("hypervolume.csv")).unwrap();
        assert_eq!(hv.lines().count(), 6); // header + initial + 4 generations
        let best = std::fs::read_to_string(out.join("best.csv")).unwrap();
        assert_eq!(best.lines().count(), 61); // header + 60 records
    }

    #[test]
    fn nsga_job_spec_reruns_identically() {
        // the echoed `job:` line is re-runnable and reproduces the artifacts
        let out = tmp_dir("nsga_spec_a");
        let out2 = tmp_dir("nsga_spec_b");
        run(&args(&[
            "--dataset",
            "flare",
            "--records",
            "60",
            "--mode",
            "nsga",
            "--iters",
            "3",
            "--seed",
            "9",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "--job",
            "dataset=flare suite=small mode=nsga gens=3 seed=9 records=60",
            "--out",
            out2.to_str().unwrap(),
        ]))
        .unwrap();
        for file in ["front.csv", "hypervolume.csv", "best.csv"] {
            assert_eq!(
                std::fs::read_to_string(out.join(file)).unwrap(),
                std::fs::read_to_string(out2.join(file)).unwrap(),
                "{file} must be bit-identical"
            );
        }
    }

    /// `--cache-dir` reruns are bit-identical to cold runs: the second
    /// invocation rehydrates the prepared evaluator from disk (a fresh
    /// `Session` each time, so only the snapshot tier can carry state) and
    /// every artifact matches byte for byte.
    #[test]
    fn cache_dir_reruns_are_bit_identical() {
        let out_cold = tmp_dir("snap_cold");
        let out_warm = tmp_dir("snap_warm");
        let cache = tmp_dir("snap_cache");
        let _ = std::fs::remove_dir_all(&cache);
        for out in [&out_cold, &out_warm] {
            run(&args(&[
                "--dataset",
                "german",
                "--records",
                "60",
                "--iters",
                "4",
                "--seed",
                "13",
                "--cache-dir",
                cache.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        }
        assert!(
            std::fs::read_dir(&cache).unwrap().count() > 0,
            "cold run must write a snapshot"
        );
        for file in ["evolution.csv", "scatter.csv", "best.csv"] {
            assert_eq!(
                std::fs::read_to_string(out_cold.join(file)).unwrap(),
                std::fs::read_to_string(out_warm.join(file)).unwrap(),
                "{file} must be bit-identical across the snapshot tier"
            );
        }
        let _ = std::fs::remove_dir_all(&cache);
    }

    #[test]
    fn cache_cap_requires_cache_dir() {
        let out = tmp_dir("snap_capflag");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "40",
            "--iters",
            "2",
            "--cache-cap",
            "4096",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--cache-dir"), "{err}");
    }

    #[test]
    fn cross_mode_flags_rejected_with_mode_named() {
        let out = tmp_dir("cross");
        for (flags, needle) in [
            (vec!["--mode", "nsga", "--fitness", "max"], "--fitness"),
            (vec!["--mode", "nsga", "--drop", "0.05"], "--drop"),
            (vec!["--offspring", "4"], "--offspring"),
            (vec!["--xprob", "0.7"], "--xprob"),
        ] {
            let mut tokens = vec!["--dataset", "adult", "--out", out.to_str().unwrap()];
            tokens.extend(flags);
            let err = run(&args(&tokens)).unwrap_err();
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
        // --mode belongs inside a --job spec
        let err = run(&args(&[
            "--job",
            "dataset=adult",
            "--mode",
            "nsga",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--job spec"));
    }

    #[test]
    fn mutually_exclusive_inputs_rejected() {
        let out = tmp_dir("bad");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--input",
            "x.csv",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        let err2 = run(&args(&["--out", out.to_str().unwrap()])).unwrap_err();
        assert!(err2.to_string().contains("required"));
    }

    #[test]
    fn unknown_mode_and_fitness_rejected() {
        let out = tmp_dir("flags");
        for (flag, value) in [("mode", "annealing"), ("fitness", "min")] {
            let err = run(&args(&[
                "--dataset",
                "adult",
                "--records",
                "40",
                "--iters",
                "2",
                &format!("--{flag}"),
                value,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_err();
            assert!(err.to_string().contains(value), "--{flag} {value}");
        }
    }
}
