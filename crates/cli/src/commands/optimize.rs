//! `cdp optimize` — run the evolutionary optimizer (scalar fitness,
//! Algorithm 1 of the paper) or the NSGA-II extension over a population of
//! protections, writing figure-ready CSVs.
//!
//! Flags deserialize into one [`cdp::pipeline::ProtectionJob`]; the scalar
//! path is exactly [`Session::run`], so the CLI and the library cannot
//! drift.

use std::io::Write;
use std::path::Path;

use cdp::pipeline::{JobEvent, ProtectionJob, Session};
use cdp_core::nsga::{Nsga2, NsgaConfig};
use cdp_core::ScatterPoint;
use cdp_dataset::io::write_table_path;

use crate::args::Args;
use crate::commands::generate::dataset_kind;
use crate::data::{load_table_with, resolve_attrs};
use crate::error::{CliError, Result};
use crate::spec::{parse_fitness, parse_method, parse_suite, JobSpec};

/// Usage text.
pub const USAGE: &str = "\
cdp optimize (--dataset <name> | --input <file.csv> | --job <spec>) --out <dir>
             [--attrs <A,B,C>]           attributes to protect (input mode)
             [--methods <spec,spec,...>] initial population (input mode)
             [--copies <n>]              seeds per method spec (default 2)
             [--suite <small|paper>]     population sweep (dataset mode)
             [--records <n>]             record count (dataset mode)
             [--schema <sidecar>]        attribute kinds/dictionaries (input mode)
             [--mode <scalar|nsga>]      optimizer (default scalar)
             [--fitness <mean|max>]      scalar aggregator (default max)
             [--iters <n>]               iterations/generations (default 300)
             [--drop <fraction>]         drop best initial fraction (scalar)
             [--seed <u64>]

Scalar mode writes evolution.csv, scatter.csv and best.csv into --out;
NSGA-II mode writes front.csv and hypervolume.csv.

--job takes one quoted key=value job spec — exactly the `job:` line a
dataset-mode run echoes — so any run can be reproduced verbatim:
  cdp optimize --job 'dataset=adult suite=paper fitness=max iters=300 seed=7' --out dir";

/// Default initial-population recipe for `--input` mode.
const DEFAULT_METHODS: &str =
    "microagg:3,microagg:6,topcode:0.15,bottomcode:0.15,recode:1,rankswap:2,rankswap:8,pram:0.8,pram:0.65";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "dataset", "input", "job", "out", "attrs", "methods", "copies", "suite", "records", "mode",
        "fitness", "iters", "drop", "seed", "schema",
    ])?;
    let out_dir = Path::new(args.require("out")?);
    std::fs::create_dir_all(out_dir)?;

    let job = job_from_args(args)?;
    match args.get("mode").unwrap_or("scalar") {
        "scalar" => run_scalar(&job, out_dir),
        "nsga" => run_nsga(&job, out_dir),
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (scalar, nsga)"
        ))),
    }
}

/// Deserialize the flags into one [`ProtectionJob`].
fn job_from_args(args: &Args) -> Result<ProtectionJob> {
    if let Some(text) = args.get("job") {
        // a whole run as one pasteable spec string
        if args.get("dataset").is_some() || args.get("input").is_some() {
            return Err(CliError::Usage(
                "--job replaces --dataset/--input; pass one source only".into(),
            ));
        }
        return JobSpec::parse(text)?.to_job();
    }
    match (args.get("dataset"), args.get("input")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--dataset and --input are mutually exclusive".into(),
        )),
        (None, None) => Err(CliError::Usage(
            "one of --dataset or --input is required".into(),
        )),
        (Some(name), None) => {
            // dataset mode: the flags map 1:1 onto the CLI job-spec fields
            let mut spec = JobSpec {
                dataset: dataset_kind(name)?,
                ..JobSpec::default()
            };
            spec.records = args.get_parse("records")?;
            if let Some(value) = args.get("suite") {
                spec.suite = parse_suite(value)?;
            }
            if let Some(value) = args.get("fitness") {
                spec.fitness = parse_fitness(value)?;
            }
            spec.iters = args.get_or("iters", spec.iters)?;
            spec.seed = args.get_or("seed", spec.seed)?;
            spec.drop = args.get_or("drop", spec.drop)?;
            spec.to_job()
        }
        (None, Some(path)) => {
            let table = load_table_with(path, args.get("schema"))?;
            let indices = resolve_attrs(&table, args.list("attrs"))?;
            let methods = args
                .get("methods")
                .unwrap_or(DEFAULT_METHODS)
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(parse_method)
                .collect::<Result<Vec<_>>>()?;
            let copies: usize = args.get_or("copies", 2)?;
            if args.get("suite").is_some() {
                return Err(CliError::Usage(
                    "--suite applies to dataset mode; use --methods with --input".into(),
                ));
            }
            let mut builder = ProtectionJob::builder()
                .table(table, indices)
                .methods(methods)
                .copies(copies)
                .iterations(args.get_or("iters", 300)?)
                .drop_best_fraction(args.get_or("drop", 0.0)?)
                .seed(args.get_or("seed", 42)?);
            if let Some(value) = args.get("fitness") {
                builder = builder.aggregator(parse_fitness(value)?);
            } else {
                builder = builder.aggregator(cdp_metrics::ScoreAggregator::Max);
            }
            Ok(builder.build()?)
        }
    }
}

fn run_scalar(job: &ProtectionJob, out_dir: &Path) -> Result<()> {
    if job.iterations() == 0 {
        return Err(CliError::Usage(
            "scalar mode needs --iters >= 1 (0 is mask-and-score only)".into(),
        ));
    }
    // echo the canonical spec so any dataset-mode run can be reproduced by
    // pasting the line back into the flags
    if let Ok(spec) = JobSpec::from_job(job) {
        println!("job: {}", spec.to_spec_string());
    }
    let mut session = Session::new();
    let mut dims = (0usize, 0usize);
    let report = session.run_with(job, |event| match event {
        JobEvent::SourceReady {
            rows, protected, ..
        } => dims = (*rows, *protected),
        JobEvent::PopulationReady { size } => println!(
            "optimizing {size} protections of {} records x {} attributes ({} iterations)",
            dims.0,
            dims.1,
            job.iterations()
        ),
        _ => {}
    })?;
    let outcome = report.outcome.as_ref().expect("iterations >= 1 evolves");

    // evolution.csv: the paper's max/mean/min series
    let mut evolution = std::fs::File::create(out_dir.join("evolution.csv"))?;
    writeln!(evolution, "iteration,min,mean,max")?;
    for g in &outcome.trace.generations {
        writeln!(
            evolution,
            "{},{:.4},{:.4},{:.4}",
            g.iteration, g.min, g.mean, g.max
        )?;
    }

    // scatter.csv: initial + final (IL, DR) dispersion
    let mut scatter = std::fs::File::create(out_dir.join("scatter.csv"))?;
    writeln!(scatter, "phase,name,il,dr,score")?;
    write_points(&mut scatter, "initial", &outcome.initial)?;
    write_points(&mut scatter, "final", &outcome.final_points)?;

    // best.csv: the winning protected file, substituted into the full table
    write_table_path(&report.published_best()?, out_dir.join("best.csv"))?;

    let summary = outcome.summary();
    println!(
        "best score {:.2} -> {:.2} ({}), files in {}",
        summary.initial_min,
        summary.final_min,
        report.best.name,
        out_dir.display()
    );
    println!(
        "max {:.2} -> {:.2} ({:+.2}%), mean {:.2} -> {:.2} ({:+.2}%)",
        summary.initial_max,
        summary.final_max,
        -summary.improvement_max(),
        summary.initial_mean,
        summary.final_mean,
        -summary.improvement_mean(),
    );
    Ok(())
}

fn run_nsga(job: &ProtectionJob, out_dir: &Path) -> Result<()> {
    // NSGA-II is not (yet) a pipeline stage, but it optimizes the exact
    // problem the job describes: same source, same population, same
    // prepared evaluator.
    let src = job.resolve_source()?;
    let population = job.seed_population(&src)?;
    let mut session = Session::new();
    let (evaluator, _) = session.evaluator_for(&src.original(), job.metrics())?;
    println!(
        "optimizing {} protections of {} records x {} attributes ({} generations)",
        population.len(),
        src.table.n_rows(),
        src.protected.len(),
        job.iterations()
    );
    let config = NsgaConfig {
        generations: job.iterations(),
        seed: job.seed(),
        ..NsgaConfig::default()
    };
    let outcome = Nsga2::new(evaluator, config)
        .with_named_population(population)?
        .run();

    let mut front = std::fs::File::create(out_dir.join("front.csv"))?;
    writeln!(front, "phase,name,il,dr,score")?;
    write_points(&mut front, "initial", &outcome.initial_front)?;
    write_points(&mut front, "final", &outcome.front)?;
    write_points(&mut front, "archive", &outcome.archive_front)?;

    let mut hv = std::fs::File::create(out_dir.join("hypervolume.csv"))?;
    writeln!(hv, "generation,hypervolume")?;
    for (generation, value) in outcome.hypervolume_series.iter().enumerate() {
        writeln!(hv, "{generation},{value:.4}")?;
    }

    println!(
        "front size {} -> {} (archive {}), hypervolume {:.0} -> {:.0}, {} evaluations, files in {}",
        outcome.initial_front.len(),
        outcome.front.len(),
        outcome.archive_front.len(),
        outcome.hypervolume_series.first().copied().unwrap_or(0.0),
        outcome.hypervolume_series.last().copied().unwrap_or(0.0),
        outcome.evaluations,
        out_dir.display()
    );
    Ok(())
}

fn write_points(out: &mut std::fs::File, phase: &str, points: &[ScatterPoint]) -> Result<()> {
    for p in points {
        writeln!(
            out,
            "{phase},{},{:.4},{:.4},{:.4}",
            p.name, p.il, p.dr, p.score
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_optimize").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn dataset_scalar_mode_writes_artifacts() {
        let out = tmp_dir("scalar");
        run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "60",
            "--iters",
            "20",
            "--seed",
            "3",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        for file in ["evolution.csv", "scatter.csv", "best.csv"] {
            let text = std::fs::read_to_string(out.join(file)).unwrap();
            assert!(text.lines().count() > 1, "{file} has content");
        }
        let evolution = std::fs::read_to_string(out.join("evolution.csv")).unwrap();
        assert!(evolution.starts_with("iteration,min,mean,max"));
        assert_eq!(evolution.lines().count(), 22); // header + initial + 20
    }

    #[test]
    fn job_flag_runs_a_pasted_spec() {
        let out = tmp_dir("jobflag");
        run(&args(&[
            "--job",
            "dataset=german suite=small fitness=mean iters=5 seed=2 records=50",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.join("best.csv").exists());
        // --job excludes the other source flags
        let err = run(&args(&[
            "--job",
            "dataset=german",
            "--dataset",
            "adult",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--job replaces"));
    }

    #[test]
    fn scalar_mode_rejects_zero_iterations_up_front() {
        let out = tmp_dir("zeroiters");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--records",
            "40",
            "--iters",
            "0",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--iters >= 1"));
    }

    #[test]
    fn dataset_mode_supports_drop_fraction() {
        let out = tmp_dir("drop");
        run(&args(&[
            "--dataset",
            "flare",
            "--records",
            "60",
            "--iters",
            "5",
            "--drop",
            "0.10",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let scatter = std::fs::read_to_string(out.join("scatter.csv")).unwrap();
        let initial = scatter
            .lines()
            .filter(|l| l.starts_with("initial,"))
            .count();
        assert!(initial < 12, "drop must shrink the population: {initial}");
    }

    #[test]
    fn input_nsga_mode_writes_front() {
        let dir = tmp_dir("nsga");
        let input = dir.join("input.csv");
        let mut csv = String::from("X,Y,Z\n");
        for i in 0..60 {
            csv.push_str(["a,p,1\n", "b,q,2\n", "c,r,3\n", "a,q,1\n"][i % 4]);
        }
        std::fs::write(&input, csv).unwrap();
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--attrs",
            "X,Y",
            "--methods",
            "pram:0.8,rankswap:3",
            "--copies",
            "3",
            "--mode",
            "nsga",
            "--iters",
            "5",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        let front = std::fs::read_to_string(dir.join("front.csv")).unwrap();
        assert!(front.starts_with("phase,name,il,dr,score"));
        assert!(front.contains("final,"));
        let hv = std::fs::read_to_string(dir.join("hypervolume.csv")).unwrap();
        assert_eq!(hv.lines().count(), 7); // header + initial + 5 generations
    }

    #[test]
    fn mutually_exclusive_inputs_rejected() {
        let out = tmp_dir("bad");
        let err = run(&args(&[
            "--dataset",
            "adult",
            "--input",
            "x.csv",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        let err2 = run(&args(&["--out", out.to_str().unwrap()])).unwrap_err();
        assert!(err2.to_string().contains("required"));
    }

    #[test]
    fn unknown_mode_and_fitness_rejected() {
        let out = tmp_dir("flags");
        for (flag, value) in [("mode", "annealing"), ("fitness", "min")] {
            let err = run(&args(&[
                "--dataset",
                "adult",
                "--records",
                "40",
                "--iters",
                "2",
                &format!("--{flag}"),
                value,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_err();
            assert!(err.to_string().contains(value), "--{flag} {value}");
        }
    }
}
