//! `cdp protect` — apply one protection method to a CSV file.
//!
//! A mask-and-score [`cdp::pipeline::ProtectionJob`] (iteration budget 0):
//! the file is masked and assessed with the paper's seven measures in one
//! pass.

use cdp::pipeline::ProtectionJob;
use cdp_dataset::io::write_table_path;
use cdp_metrics::ScoreAggregator;

use crate::args::Args;
use crate::data::{hierarchies_for, load_table_with, resolve_attrs};
use crate::error::Result;
use crate::spec::{parse_method, METHOD_GRAMMAR};

/// Usage text.
pub fn usage() -> String {
    format!(
        "\
cdp protect --input <file.csv> --method <spec> --out <file.csv>
            [--attrs <A,B,C>] [--seed <u64>] [--hierarchy-dir <dir>]
            [--schema <sidecar>]

Masks the selected attributes (default: all) with one method and writes the
full file back with the masked columns substituted, reporting the change
rate and the paper's IL/DR scores. Recoding methods use <dir>/<ATTR>.csv
hierarchy files when present (see `cdp help hierarchy`), frequency-built
hierarchies otherwise.

method specs:
{METHOD_GRAMMAR}"
    )
}

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&[
        "input",
        "method",
        "out",
        "attrs",
        "seed",
        "hierarchy-dir",
        "schema",
    ])?;
    let table = load_table_with(args.require("input")?, args.get("schema"))?;
    let indices = resolve_attrs(&table, args.list("attrs"))?;
    let method = parse_method(args.require("method")?)?;
    let method_name = method.name();
    let out = args.require("out")?;

    let hierarchies = hierarchies_for(&table, &indices, args.get("hierarchy-dir"))?;
    let job = ProtectionJob::builder()
        .table(table, indices)
        .hierarchies(hierarchies)
        .methods(vec![method])
        .copies(1)
        .iterations(0) // mask and score, no evolution
        .seed(args.get_or("seed", 42)?)
        .build()?;
    let report = job.run()?;

    let original = report.original();
    let changed = original.hamming(&report.best.data);
    write_table_path(&report.published_best()?, out)?;
    println!(
        "wrote {} ({}; {} of {} cells changed, {:.1}%)",
        out,
        method_name,
        changed,
        original.flat_len(),
        100.0 * changed as f64 / original.flat_len() as f64
    );
    let a = &report.best.assessment;
    println!(
        "IL {:.2}, DR {:.2} (Eq.1 {:.2}, Eq.2 {:.2})",
        a.il(),
        a.dr(),
        a.score(ScoreAggregator::Mean),
        a.score(ScoreAggregator::Max)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_protect");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn protect_round_trip() {
        let input = tmp("in.csv");
        // enough rows for pram to act on
        let mut csv = String::from("CITY,JOB\n");
        for i in 0..40 {
            csv.push_str(["a,x\n", "b,y\n", "c,x\n", "a,z\n"][i % 4]);
        }
        std::fs::write(&input, csv).unwrap();
        let out = tmp("out.csv");
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--method",
            "pram:0.5",
            "--out",
            out.to_str().unwrap(),
            "--seed",
            "1",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("CITY,JOB"));
        assert_eq!(text.lines().count(), 41);
        // masked labels stay inside the original dictionaries
        for line in text.lines().skip(1) {
            let (city, job) = line.split_once(',').unwrap();
            assert!(["a", "b", "c"].contains(&city));
            assert!(["x", "y", "z"].contains(&job));
        }
    }

    #[test]
    fn protect_selected_attribute_only() {
        let input = tmp("sel.csv");
        let mut csv = String::from("CITY,JOB\n");
        for i in 0..30 {
            csv.push_str(["a,x\n", "b,y\n", "c,z\n"][i % 3]);
        }
        std::fs::write(&input, csv).unwrap();
        let out = tmp("sel_out.csv");
        run(&args(&[
            "--input",
            input.to_str().unwrap(),
            "--method",
            "randomswap:0.9",
            "--attrs",
            "JOB",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        // CITY column untouched
        for (i, line) in text.lines().skip(1).enumerate() {
            let city = line.split(',').next().unwrap();
            assert_eq!(city, ["a", "b", "c"][i % 3]);
        }
    }

    #[test]
    fn missing_method_is_usage_error() {
        let input = tmp("um.csv");
        std::fs::write(&input, "A\nx\n").unwrap();
        let e = run(&args(&["--input", input.to_str().unwrap(), "--out", "o"])).unwrap_err();
        assert!(e.to_string().contains("--method"));
    }
}
