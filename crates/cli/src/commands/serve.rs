//! `cdp serve` — the protection server: job specs in, event streams out.
//!
//! A long-lived TCP service over one [`SharedSession`]: every worker
//! thread runs jobs against the same shared evaluator cache, so N
//! concurrent clients submitting jobs for the same original trigger
//! exactly **one** preparation — the cache hit rate (`STATS`) is the
//! headline metric. The wire format is the line-delimited grammar of
//! [`crate::protocol`]; job specs are the CLI's canonical `key=value`
//! grammar ([`JobSpec`]), so any `cdp optimize --job` line can be sent to
//! a server verbatim.
//!
//! The transport is hand-rolled over `std::net` — no HTTP dependency, a
//! fixed pool of accept workers (each connection is served start to
//! finish by one worker; concurrency = many connections). Determinism
//! holds across the wire: a served job produces the bit-identical
//! [`DoneSummary`] to [`Session::run`] on the same spec, which `--once`
//! smoke mode (and the e2e suite) asserts.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use cdp::pipeline::{Session, SessionStats, SharedSession, SnapshotCacheConfig};

use crate::args::Args;
use crate::error::{CliError, Result};
use crate::protocol::{DoneSummary, Request, Response};
use crate::spec::JobSpec;

/// Usage text.
pub const USAGE: &str = "\
cdp serve [--addr <host:port>]  listen address (default 127.0.0.1:7171;
                                port 0 picks a free one)
          [--workers <n>]       fixed worker-pool size (default: CPU
                                cores, clamped to 2..=8)
          [--once]              smoke mode: serve two concurrent clients
                                submitting the same job over loopback,
                                assert one shared preparation and a
                                bit-identical in-process rerun, then exit
          [--job '<spec>']      smoke-mode job (canonical key=value spec;
                                default a mask-and-score Adult job)
          [--cache-dir <dir>]   persistent snapshot cache: prepared
                                evaluators are written to <dir> and
                                rehydrated on later runs — even after a
                                server restart — instead of re-prepared
          [--cache-cap <bytes>] LRU byte cap on the in-memory tier
                                (requires --cache-dir); slots over the cap
                                demote to disk and fault back on demand

Line-delimited protocol (UTF-8, one request per line):
  JOB <key=value spec>   run a job; streams `EVENT <kind> <fields>` lines
                         (one per JobEvent) and ends with one `DONE
                         <winner IL/DR breakdown, eval counts, cache_hit>`
                         or `ERR <message>` line
  STATS                  one `STATS <preparations/hits/misses/
                         snapshot_hits/snapshot_misses/evictions/cached/
                         approx_bytes>` line for the shared cache, plus
                         one `entry=rows:attrs:hits:bytes:prepared` field
                         of per-slot detail per cached original
  SHUTDOWN               acknowledge with `OK bye` and stop the server

Jobs served over the wire are bit-identical to `Session::run` on the same
spec — same seed, same RNG stream, same winner.";

/// Fallback smoke-mode job: mask-and-score (no evolution), small enough
/// to finish in well under a second, big enough that preparation cost is
/// observable.
const SMOKE_SPEC: &str = "dataset=adult records=120 iters=0 seed=42";

/// Run the command.
pub fn run(args: &Args) -> Result<()> {
    args.expect_only(&["addr", "workers", "once", "job", "cache-dir", "cache-cap"])?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7171");
    let workers = args.get_or("workers", default_workers())?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    let snapshot = super::cache::snapshot_config_from(args)?;
    let once = args.get_parse::<bool>("once")?.unwrap_or(false);
    if once {
        return run_once(addr, args.get("job"), snapshot);
    }
    if args.get("job").is_some() {
        return Err(CliError::Usage("--job applies to --once smoke mode".into()));
    }

    let listener = TcpListener::bind(addr)?;
    println!(
        "listening on {} ({workers} workers)",
        listener.local_addr()?
    );
    let session = SharedSession::new();
    session.set_snapshot_cache(snapshot);
    let stop = AtomicBool::new(false);
    serve_on(&listener, workers, &session, &stop)?;
    let stats = session.stats();
    println!("server stopped: {}", stats_headline(&stats));
    Ok(())
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// The human-readable cache summary printed at shutdown and by `--once`:
/// the headline counters, then one line of per-slot detail per cached
/// entry ([`cdp::pipeline::CacheEntryStats`]).
fn stats_headline(stats: &SessionStats) -> String {
    let mut out = format!(
        "cache hit rate {} (preparations={}, hits={}, misses={}, snapshot_hits={}, \
         snapshot_misses={}, evictions={}, cached={}, ~{} KiB resident)",
        match stats.hit_rate() {
            Some(rate) => format!("{:.0}%", rate * 100.0),
            None => "n/a".into(),
        },
        stats.preparations,
        stats.hits,
        stats.misses,
        stats.snapshot_hits,
        stats.snapshot_misses,
        stats.evictions,
        stats.cached,
        stats.approx_bytes / 1024,
    );
    for (i, e) in stats.entries.iter().enumerate() {
        out.push_str(&format!(
            "\n  slot {i}: {} rows x {} attrs, hits={}, ~{} KiB{}",
            e.rows,
            e.attrs,
            e.hits,
            e.approx_bytes / 1024,
            if e.prepared { "" } else { " (preparing)" },
        ));
    }
    out
}

/// Accept-and-serve loop: `workers` threads block on `accept` and each
/// serves its connection start to finish. Returns after a `SHUTDOWN`
/// request (the receiving worker wakes its siblings with dummy connects).
fn serve_on(
    listener: &TcpListener,
    workers: usize,
    session: &SharedSession,
    stop: &AtomicBool,
) -> Result<()> {
    let local = listener.local_addr()?;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    if stop.load(Ordering::SeqCst) {
                        break; // a wake-up connect, not a client
                    }
                    if handle_connection(stream, session) {
                        stop.store(true, Ordering::SeqCst);
                        for _ in 0..workers {
                            let _ = TcpStream::connect(local);
                        }
                        break;
                    }
                }
            });
        }
    });
    Ok(())
}

/// Serve one connection until the client hangs up. Returns `true` when
/// the client requested a server shutdown.
fn handle_connection(stream: TcpStream, session: &SharedSession) -> bool {
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = match Request::parse(&line) {
            Ok(Request::Job(spec)) => stream_job(&spec, session, &mut writer),
            Ok(Request::Stats) => send(&mut writer, &Response::Stats(session.stats())),
            Ok(Request::Shutdown) => {
                let _ = send(&mut writer, &Response::Ok("bye".into()));
                return true;
            }
            Err(e) => send(&mut writer, &Response::Err(e.to_string())),
        };
        if outcome.is_err() {
            break; // client gone; drop the connection, keep the worker
        }
    }
    false
}

/// Run one job, streaming each [`cdp::pipeline::JobEvent`] as an `EVENT`
/// line, then the terminal `DONE`/`ERR` line.
fn stream_job<W: Write>(
    spec: &JobSpec,
    session: &SharedSession,
    out: &mut W,
) -> std::io::Result<()> {
    let job = match spec.to_job() {
        Ok(job) => job,
        Err(e) => return send(out, &Response::Err(e.to_string())),
    };
    let mut write_err: Option<std::io::Error> = None;
    let result = session.run_with(&job, |event| {
        // a vanished client must not abort the job mid-run (the cache
        // still profits); remember the failure and go quiet
        if write_err.is_none() {
            if let Err(e) = send(out, &Response::Event(event.clone())) {
                write_err = Some(e);
            }
        }
    });
    if let Some(e) = write_err {
        return Err(e);
    }
    match result {
        Ok(report) => send(out, &Response::Done(DoneSummary::from_report(&report))),
        Err(e) => send(out, &Response::Err(e.to_string())),
    }
}

fn send<W: Write>(out: &mut W, response: &Response) -> std::io::Result<()> {
    writeln!(out, "{}", response.to_line())?;
    out.flush() // events must stream, not sit in the BufWriter
}

/// One client exchange: connect, send `request`, read responses until the
/// terminal line (`DONE`/`ERR`/`STATS`/`OK`). Shared by `--once`, the
/// e2e suite, and anyone scripting a client in Rust.
///
/// # Errors
/// Connection failures, or a response line the protocol cannot parse.
pub fn request(addr: SocketAddr, request: &Request) -> Result<Vec<Response>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    writeln!(writer, "{}", request.to_line())?;
    writer.flush()?;
    let reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse(&line)?;
        let terminal = !matches!(response, Response::Event(_));
        responses.push(response);
        if terminal {
            break;
        }
    }
    Ok(responses)
}

/// The terminal [`DoneSummary`] of a `JOB` exchange.
///
/// # Errors
/// [`CliError::Server`] when the exchange ended in `ERR` or hung up
/// without a terminal line.
fn done_of(responses: &[Response]) -> Result<DoneSummary> {
    match responses.last() {
        Some(Response::Done(done)) => Ok(done.clone()),
        Some(Response::Err(msg)) => Err(CliError::Server(format!("job failed: {msg}"))),
        other => Err(CliError::Server(format!(
            "job ended without DONE: {other:?}"
        ))),
    }
}

/// `--once` smoke mode: spin up the server on `addr`, run two concurrent
/// clients submitting the *same* job, and verify the subsystem's two
/// contracts end to end —
///
/// 1. **amortization**: the hot original is prepared exactly once
///    (`preparations == 1`, `hits >= 1`);
/// 2. **determinism**: both wire summaries are bit-identical to
///    [`Session::run`] on the same spec, in-process.
fn run_once(
    addr: &str,
    spec_text: Option<&str>,
    snapshot: Option<SnapshotCacheConfig>,
) -> Result<()> {
    let spec = JobSpec::parse(spec_text.unwrap_or(SMOKE_SPEC))?;
    let canonical = spec.to_spec_string();

    // the in-process reference: same spec through the plain Session API
    let reference = {
        let mut session = Session::new();
        DoneSummary::from_report(&session.run(&spec.to_job()?)?)
    };

    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    println!("smoke: listening on {local}, job `{canonical}`");
    let session = SharedSession::new();
    session.set_snapshot_cache(snapshot);
    let stop = AtomicBool::new(false);

    let (replies, stats) = std::thread::scope(|scope| -> Result<_> {
        let server = {
            let (session, stop) = (&session, &stop);
            scope.spawn(move || serve_on(&listener, 2, session, stop))
        };
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let spec = spec.clone();
                scope.spawn(move || request(local, &Request::Job(spec)))
            })
            .collect();
        let mut replies = Vec::new();
        for client in clients {
            replies.push(client.join().expect("smoke client thread")?);
        }
        let stats_reply = request(local, &Request::Stats)?;
        request(local, &Request::Shutdown)?;
        server.join().expect("server thread")?;
        Ok((replies, stats_reply))
    })?;

    let fail = |msg: String| CliError::Server(format!("smoke failed: {msg}"));
    let dones: Vec<DoneSummary> = replies.iter().map(|r| done_of(r)).collect::<Result<_>>()?;
    let stats = match stats.as_slice() {
        [Response::Stats(stats)] => stats.clone(),
        other => return Err(fail(format!("unexpected STATS reply: {other:?}"))),
    };
    if stats.preparations != 1 {
        return Err(fail(format!(
            "expected exactly one shared preparation, got {}",
            stats.preparations
        )));
    }
    if stats.hits == 0 {
        return Err(fail("expected at least one cache hit".into()));
    }
    for done in &dones {
        let mut normalized = done.clone();
        normalized.cache_hit = reference.cache_hit;
        if normalized != reference {
            return Err(fail(format!(
                "wire summary diverged from the in-process run:\n  wire:     {done:?}\n  in-proc:  {reference:?}"
            )));
        }
    }
    println!(
        "smoke: ok — 2 concurrent clients, winner `{}` (IL {:.2}, DR {:.2}), {}",
        dones[0].name,
        dones[0].il(),
        dones[0].dr(),
        stats_headline(&stats),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bind an ephemeral loopback listener + fresh session for one test.
    fn test_server() -> (TcpListener, SocketAddr, SharedSession) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        (listener, addr, SharedSession::new())
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn once_smoke_mode_verifies_both_contracts() {
        run(&args(&[
            "--once",
            "--addr",
            "127.0.0.1:0",
            "--job",
            "dataset=german records=60 iters=0 seed=5",
        ]))
        .unwrap();
    }

    #[test]
    fn repeat_job_reports_a_cache_hit_and_identical_summary() {
        let (listener, addr, session) = test_server();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| serve_on(&listener, 2, &session, &stop).unwrap());

            let spec = JobSpec::parse("dataset=german records=60 iters=3 seed=8").unwrap();
            let first = done_of(&request(addr, &Request::Job(spec.clone())).unwrap()).unwrap();
            let second = done_of(&request(addr, &Request::Job(spec)).unwrap()).unwrap();
            assert!(!first.cache_hit, "first job prepares");
            assert!(second.cache_hit, "second job hits the cache");
            let mut normalized = second.clone();
            normalized.cache_hit = first.cache_hit;
            assert_eq!(normalized, first, "reruns are bit-identical");

            let stats = request(addr, &Request::Stats).unwrap();
            match stats.as_slice() {
                [Response::Stats(s)] => {
                    assert_eq!((s.preparations, s.hits, s.misses), (1, 1, 1));
                    assert_eq!(s.hit_rate(), Some(0.5));
                    // per-slot detail crosses the wire too
                    assert_eq!(s.entries.len(), 1);
                    assert_eq!(s.entries[0].hits, 1);
                    assert_eq!(s.entries[0].rows, 60);
                    assert!(s.entries[0].prepared);
                }
                other => panic!("unexpected STATS reply: {other:?}"),
            }
            request(addr, &Request::Shutdown).unwrap();
        });
    }

    #[test]
    fn job_exchange_streams_events_in_order() {
        let (listener, addr, session) = test_server();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| serve_on(&listener, 1, &session, &stop).unwrap());

            let spec = JobSpec::parse("dataset=flare records=60 iters=2 seed=3").unwrap();
            let responses = request(addr, &Request::Job(spec)).unwrap();
            let kinds: Vec<String> = responses
                .iter()
                .map(|r| match r {
                    Response::Event(e) => crate::protocol::encode_event(e)
                        .split(' ')
                        .next()
                        .unwrap()
                        .to_string(),
                    Response::Done(_) => "done".into(),
                    other => panic!("unexpected response {other:?}"),
                })
                .collect();
            assert_eq!(&kinds[..4], &["source", "evaluator", "cache", "population"]);
            assert_eq!(kinds[kinds.len() - 2], "finished");
            assert_eq!(kinds[kinds.len() - 1], "done");
            assert!(kinds.iter().any(|k| k == "generation"));

            request(addr, &Request::Shutdown).unwrap();
        });
    }

    #[test]
    fn bad_lines_get_err_replies_and_the_connection_survives() {
        let (listener, addr, session) = test_server();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| serve_on(&listener, 1, &session, &stop).unwrap());

            // one connection, several bad requests, then a good one; the
            // block drops the connection so the single worker is free to
            // accept the SHUTDOWN exchange afterwards
            {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = BufWriter::new(stream.try_clone().unwrap());
                let mut reader = BufReader::new(stream);
                let mut exchange = |line: &str| -> Response {
                    writeln!(writer, "{line}").unwrap();
                    writer.flush().unwrap();
                    let mut reply = String::new();
                    loop {
                        reply.clear();
                        reader.read_line(&mut reply).unwrap();
                        let response = Response::parse(&reply).unwrap();
                        if !matches!(response, Response::Event(_)) {
                            return response;
                        }
                    }
                };
                for bad in ["HELLO", "JOB dataset=iris", "JOB records=60"] {
                    let reply = exchange(bad);
                    assert!(matches!(reply, Response::Err(_)), "{bad}: {reply:?}");
                }
                let good = exchange("JOB dataset=german records=60 iters=0 seed=5");
                assert!(matches!(good, Response::Done(_)), "{good:?}");
            }

            request(addr, &Request::Shutdown).unwrap();
        });
    }

    #[test]
    fn flag_validation() {
        assert!(run(&args(&["--workers", "0"])).is_err());
        assert!(
            run(&args(&["--job", "dataset=adult"])).is_err(),
            "--job needs --once"
        );
        assert!(run(&args(&["--port", "1"])).is_err(), "unknown flag");
        assert!(
            run(&args(&["--cache-cap", "1024"])).is_err(),
            "--cache-cap needs --cache-dir"
        );
    }

    /// A server restart with the same `--cache-dir` warm-starts from the
    /// snapshot tier: the second server's first job rehydrates from disk
    /// (`snapshot_hits == 1`, `preparations == 0`) and still produces the
    /// bit-identical summary.
    #[test]
    fn restarted_server_warm_starts_from_the_snapshot_tier() {
        let dir = std::env::temp_dir().join(format!(
            "cdp_serve_snapshot_tests/restart_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec_text = "dataset=german records=60 iters=2 seed=11";

        let serve_one = |session: &SharedSession| -> (DoneSummary, SessionStats) {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let stop = AtomicBool::new(false);
            std::thread::scope(|scope| {
                scope.spawn(|| serve_on(&listener, 1, session, &stop).unwrap());
                let spec = JobSpec::parse(spec_text).unwrap();
                let done = done_of(&request(addr, &Request::Job(spec)).unwrap()).unwrap();
                let stats = match request(addr, &Request::Stats).unwrap().as_slice() {
                    [Response::Stats(s)] => s.clone(),
                    other => panic!("unexpected STATS reply: {other:?}"),
                };
                request(addr, &Request::Shutdown).unwrap();
                (done, stats)
            })
        };

        let cold_session = SharedSession::new();
        cold_session.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir)));
        let (cold, cold_stats) = serve_one(&cold_session);
        assert_eq!(cold_stats.preparations, 1);
        assert_eq!(
            cold_stats.snapshot_misses, 1,
            "cold start misses the disk tier"
        );

        // "restart": a brand-new session (empty in-memory cache), same dir
        let warm_session = SharedSession::new();
        warm_session.set_snapshot_cache(Some(SnapshotCacheConfig::new(&dir)));
        let (warm, warm_stats) = serve_one(&warm_session);
        assert_eq!(
            warm_stats.preparations, 0,
            "no cold preparation after restart"
        );
        assert_eq!(warm_stats.snapshot_hits, 1, "rehydrated from disk");
        assert!(warm.cache_hit, "snapshot loads count as cache reuse");

        let mut normalized = warm.clone();
        normalized.cache_hit = cold.cache_hit;
        assert_eq!(normalized, cold, "rehydrated run is bit-identical");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
