//! Shared data-loading helpers for the CLI commands.

use std::path::Path;
use std::sync::Arc;

use cdp_dataset::io::{read_hierarchy_path, read_schema_path, read_table_path, SchemaSource};
use cdp_dataset::{stats, AttrKind, Hierarchy, SubTable, Table};

use crate::error::{CliError, Result};

/// Load a CSV with an inferred schema (every attribute nominal, categories
/// interned in order of first appearance).
pub fn load_table<P: AsRef<Path>>(path: P) -> Result<Table> {
    Ok(read_table_path(SchemaSource::Infer, path)?)
}

/// Resolve the `--schema` flag into a [`SchemaSource`]: a sidecar file
/// (declaring attribute kinds and dictionary order) when given, inference
/// otherwise.
pub fn schema_source(sidecar: Option<&str>) -> Result<SchemaSource> {
    match sidecar {
        None => Ok(SchemaSource::Infer),
        Some(path) => Ok(SchemaSource::Fixed(Arc::new(read_schema_path(path)?))),
    }
}

/// Load a CSV against an optional sidecar schema.
pub fn load_table_with<P: AsRef<Path>>(path: P, sidecar: Option<&str>) -> Result<Table> {
    match sidecar {
        None => load_table(path),
        Some(_) => Ok(read_table_path(schema_source(sidecar)?, path)?),
    }
}

/// Load an original/masked pair sharing one schema (the sidecar's when
/// given, the original's inferred schema otherwise), so category codes
/// align across the two files (required by every measure).
pub fn load_pair<P: AsRef<Path>>(
    original: P,
    masked: P,
    sidecar: Option<&str>,
) -> Result<(Table, Table)> {
    let orig = load_table_with(original, sidecar)?;
    let schema = Arc::clone(orig.schema());
    let masked = read_table_path(SchemaSource::Fixed(schema), masked)?;
    if masked.n_rows() != orig.n_rows() {
        return Err(CliError::Usage(format!(
            "original has {} records, masked has {}; measures need aligned files",
            orig.n_rows(),
            masked.n_rows()
        )));
    }
    Ok((orig, masked))
}

/// Resolve `--attrs` names to schema indices; `None` selects every
/// attribute.
pub fn resolve_attrs(table: &Table, names: Option<Vec<String>>) -> Result<Vec<usize>> {
    match names {
        None => Ok((0..table.n_attrs()).collect()),
        Some(names) => {
            if names.is_empty() {
                return Err(CliError::Usage("--attrs list is empty".into()));
            }
            names
                .iter()
                .map(|name| {
                    table.schema().index_of(name).ok_or_else(|| {
                        CliError::Usage(format!(
                            "attribute `{name}` not in header ({})",
                            table
                                .schema()
                                .attrs()
                                .iter()
                                .map(|a| a.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    })
                })
                .collect()
        }
    }
}

/// Build a generalization hierarchy per selected attribute: merged runs for
/// ordinal attributes, fold-into-mode for nominal ones (driven by the
/// observed marginal counts).
pub fn auto_hierarchies(table: &Table, indices: &[usize]) -> Result<Vec<Hierarchy>> {
    indices
        .iter()
        .map(|&j| {
            let attr = table.schema().attr(j);
            match attr.kind() {
                AttrKind::Ordinal => Ok(Hierarchy::ordinal_auto(attr)),
                AttrKind::Nominal => {
                    let counts = stats::marginal_counts(table.column(j), attr.n_categories());
                    Ok(Hierarchy::nominal_from_counts(attr, &counts)?)
                }
            }
        })
        .collect()
}

/// Extract the sub-table of the selected attributes.
pub fn subtable(table: &Table, indices: &[usize]) -> Result<SubTable> {
    Ok(table.subtable(indices)?)
}

/// Resolve one hierarchy per selected attribute: `<dir>/<NAME>.csv` when a
/// hierarchy directory is given and the file exists, the auto-built
/// hierarchy otherwise.
pub fn hierarchies_for(
    table: &Table,
    indices: &[usize],
    hierarchy_dir: Option<&str>,
) -> Result<Vec<Hierarchy>> {
    let auto = auto_hierarchies(table, indices)?;
    let Some(dir) = hierarchy_dir else {
        return Ok(auto);
    };
    indices
        .iter()
        .zip(auto)
        .map(|(&j, fallback)| {
            let attr = table.schema().attr(j);
            let path = Path::new(dir).join(format!("{}.csv", attr.name()));
            if path.exists() {
                Ok(read_hierarchy_path(attr, &path)?)
            } else {
                Ok(fallback)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_cli_data_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_sample(name: &str) -> PathBuf {
        let path = tmp(name);
        std::fs::write(&path, "A,B\nx,1\ny,2\nx,1\n").unwrap();
        path
    }

    #[test]
    fn load_and_resolve() {
        let path = write_sample("sample.csv");
        let t = load_table(&path).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(resolve_attrs(&t, None).unwrap(), vec![0, 1]);
        assert_eq!(resolve_attrs(&t, Some(vec!["B".into()])).unwrap(), vec![1]);
        assert!(resolve_attrs(&t, Some(vec!["NOPE".into()])).is_err());
        assert!(resolve_attrs(&t, Some(vec![])).is_err());
    }

    #[test]
    fn pair_shares_schema_and_checks_length() {
        let a = write_sample("orig.csv");
        let b = write_sample("masked.csv");
        let (orig, masked) = load_pair(&a, &b, None).unwrap();
        assert!(Arc::ptr_eq(orig.schema(), masked.schema()));

        let short = tmp("short.csv");
        std::fs::write(&short, "A,B\nx,1\n").unwrap();
        assert!(load_pair(&a, &short, None).is_err());
    }

    #[test]
    fn pair_rejects_unknown_labels_in_masked() {
        let a = write_sample("orig2.csv");
        let bad = tmp("bad.csv");
        std::fs::write(&bad, "A,B\nz,9\nz,9\nz,9\n").unwrap();
        assert!(load_pair(&a, &bad, None).is_err());
    }

    #[test]
    fn sidecar_schema_declares_kinds_and_order() {
        let data = tmp("sidecar_data.csv");
        std::fs::write(&data, "A,B\nx,1\ny,2\nx,1\n").unwrap();
        let sidecar = tmp("sidecar.schema");
        // declare B ordinal with reversed dictionary order
        std::fs::write(&sidecar, "A,nominal,x|y\nB,ordinal,2|1\n").unwrap();
        let t = load_table_with(&data, Some(sidecar.to_str().unwrap())).unwrap();
        assert_eq!(t.schema().attr(1).kind(), AttrKind::Ordinal);
        assert_eq!(t.schema().attr(1).code_of("2"), Some(0));
        // dictionary is closed: labels outside it fail
        let bad = tmp("sidecar_bad.csv");
        std::fs::write(&bad, "A,B\nz,1\n").unwrap();
        assert!(load_table_with(&bad, Some(sidecar.to_str().unwrap())).is_err());
        // pair loading honours the sidecar too
        let (orig, _) = load_pair(&data, &data, Some(sidecar.to_str().unwrap())).unwrap();
        assert_eq!(orig.schema().attr(1).kind(), AttrKind::Ordinal);
    }

    #[test]
    fn hierarchies_cover_all_selected() {
        let path = write_sample("hier.csv");
        let t = load_table(&path).unwrap();
        let hs = auto_hierarchies(&t, &[0, 1]).unwrap();
        assert_eq!(hs.len(), 2);
        for (h, &j) in hs.iter().zip(&[0usize, 1]) {
            assert_eq!(
                h.level(0).repr_table().len(),
                t.schema().attr(j).n_categories()
            );
        }
    }

    #[test]
    fn subtable_extracts_columns() {
        let path = write_sample("sub.csv");
        let t = load_table(&path).unwrap();
        let sub = subtable(&t, &[1]).unwrap();
        assert_eq!(sub.n_attrs(), 1);
        assert_eq!(sub.n_rows(), 3);
    }

    #[test]
    fn hierarchy_dir_overrides_auto() {
        let data = tmp("hdir_data.csv");
        std::fs::write(&data, "A,B\nx,1\ny,2\nz,1\n").unwrap();
        let t = load_table(&data).unwrap();

        let dir = tmp("hdir");
        std::fs::create_dir_all(&dir).unwrap();
        // custom VGH for A only; B falls back to auto
        std::fs::write(dir.join("A.csv"), "x,G\ny,G\nz,H\n").unwrap();

        let hs = hierarchies_for(&t, &[0, 1], Some(dir.to_str().unwrap())).unwrap();
        assert_eq!(hs[0].n_levels(), 2);
        assert_eq!(hs[0].level(1).n_groups(), 2); // {x,y} and {z}
        let auto = auto_hierarchies(&t, &[0, 1]).unwrap();
        assert_eq!(hs[1], auto[1]);

        // no dir -> pure auto
        let plain = hierarchies_for(&t, &[0, 1], None).unwrap();
        assert_eq!(plain, auto);
    }

    #[test]
    fn hierarchy_dir_reports_bad_files() {
        let data = tmp("hbad_data.csv");
        std::fs::write(&data, "A\nx\ny\n").unwrap();
        let t = load_table(&data).unwrap();
        let dir = tmp("hbad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("A.csv"), "x,G\nmars,H\n").unwrap();
        assert!(hierarchies_for(&t, &[0], Some(dir.to_str().unwrap())).is_err());
    }
}
