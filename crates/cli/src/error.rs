//! CLI error type: wraps every workspace error plus usage mistakes.

use std::fmt;

/// Anything that can abort a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// Wrong flags/arguments; the message is printed with the usage text.
    Usage(String),
    /// Dataset-layer failure (CSV parse, schema mismatch, …).
    Dataset(cdp_dataset::DatasetError),
    /// Protection-method failure.
    Sdc(cdp_sdc::SdcError),
    /// Measure/evaluator failure.
    Metric(cdp_metrics::MetricError),
    /// Privacy-model failure.
    Privacy(cdp_privacy::PrivacyError),
    /// Evolution failure.
    Evo(cdp_core::EvoError),
    /// Pipeline-job failure (invalid job description or staged execution).
    Pipeline(cdp::pipeline::PipelineError),
    /// Protection-server failure (`cdp serve`): a broken wire exchange or
    /// a failed smoke-mode contract.
    Server(String),
    /// Snapshot-cache failure (`cdp cache`): an unreadable cache directory
    /// or a verification that found defective snapshot files.
    Cache(String),
    /// Filesystem failure outside the dataset layer.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Dataset(e) => write!(f, "{e}"),
            CliError::Sdc(e) => write!(f, "{e}"),
            CliError::Metric(e) => write!(f, "{e}"),
            CliError::Privacy(e) => write!(f, "{e}"),
            CliError::Evo(e) => write!(f, "{e}"),
            CliError::Pipeline(e) => write!(f, "{e}"),
            CliError::Server(msg) => write!(f, "server error: {msg}"),
            CliError::Cache(msg) => write!(f, "cache error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Dataset(e) => Some(e),
            CliError::Sdc(e) => Some(e),
            CliError::Metric(e) => Some(e),
            CliError::Privacy(e) => Some(e),
            CliError::Evo(e) => Some(e),
            CliError::Pipeline(e) => Some(e),
            CliError::Server(_) => None,
            CliError::Cache(_) => None,
            CliError::Io(e) => Some(e),
        }
    }
}

impl From<cdp_dataset::DatasetError> for CliError {
    fn from(e: cdp_dataset::DatasetError) -> Self {
        CliError::Dataset(e)
    }
}
impl From<cdp_sdc::SdcError> for CliError {
    fn from(e: cdp_sdc::SdcError) -> Self {
        CliError::Sdc(e)
    }
}
impl From<cdp_metrics::MetricError> for CliError {
    fn from(e: cdp_metrics::MetricError) -> Self {
        CliError::Metric(e)
    }
}
impl From<cdp_privacy::PrivacyError> for CliError {
    fn from(e: cdp_privacy::PrivacyError) -> Self {
        CliError::Privacy(e)
    }
}
impl From<cdp_core::EvoError> for CliError {
    fn from(e: cdp_core::EvoError) -> Self {
        CliError::Evo(e)
    }
}
impl From<cdp::pipeline::PipelineError> for CliError {
    fn from(e: cdp::pipeline::PipelineError) -> Self {
        // surface invalid-job descriptions as usage errors (they almost
        // always stem from flag values)
        match e {
            cdp::pipeline::PipelineError::InvalidJob(msg) => CliError::Usage(msg),
            other => CliError::Pipeline(other),
        }
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// CLI result alias.
pub type Result<T> = std::result::Result<T, CliError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_error_displays_message() {
        let e = CliError::Usage("missing --input".into());
        assert!(e.to_string().contains("missing --input"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn wrapped_errors_are_chained() {
        let e = CliError::from(cdp_dataset::DatasetError::Empty("x".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
