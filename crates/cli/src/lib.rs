//! `cdp_cli` — the library behind the `cdp` binary.
//!
//! Everything the command-line tool does lives here so integration tests
//! (and the `cdp serve` protocol round-trip suite) can exercise it
//! in-process: argument parsing ([`args`]), the `key=value` job grammar
//! ([`spec`]), the line-delimited server protocol ([`protocol`]), the
//! subcommands ([`commands`]) and the shared error type ([`error`]). The
//! binary in `main.rs` is a thin `dispatch` wrapper.

pub mod args;
pub mod commands;
pub mod data;
pub mod error;
pub mod protocol;
pub mod spec;

use args::Args;
use error::{CliError, Result};

/// Top-level `cdp help` text.
pub const TOP_USAGE: &str = "\
cdp — categorical data protection toolkit

commands:
  generate   write a synthetic evaluation dataset as CSV
  protect    mask a CSV file with one SDC method
  evaluate   information-loss / disclosure-risk measures of a masked file
  analyze    privacy-model audit (k-anonymity, risk, diversity)
  optimize   evolutionary optimization of a protection population
  hierarchy  export editable generalization-hierarchy files
  serve      protection server: JobSpec lines over TCP, streamed events
  cache      inspect, verify or clear a snapshot-cache directory
  help       this text (or `cdp help <command>`)

run `cdp help <command>` for flags.";

/// The usage text of a subcommand, if `command` names one.
pub fn usage_of(command: &str) -> Option<String> {
    match command {
        "generate" => Some(commands::generate::USAGE.to_string()),
        "protect" => Some(commands::protect::usage()),
        "evaluate" => Some(commands::evaluate::USAGE.to_string()),
        "analyze" => Some(commands::analyze::USAGE.to_string()),
        "optimize" => Some(commands::optimize::USAGE.to_string()),
        "hierarchy" => Some(commands::hierarchy::USAGE.to_string()),
        "serve" => Some(commands::serve::USAGE.to_string()),
        "cache" => Some(commands::cache::USAGE.to_string()),
        _ => None,
    }
}

/// Route one invocation to its subcommand.
///
/// # Errors
/// Whatever the subcommand raises; unknown commands are
/// [`CliError::Usage`].
pub fn dispatch(command: &str, rest: Vec<String>) -> Result<()> {
    match command {
        "generate" => commands::generate::run(&Args::parse(rest)?),
        "protect" => commands::protect::run(&Args::parse(rest)?),
        "evaluate" => commands::evaluate::run(&Args::parse(rest)?),
        "analyze" => commands::analyze::run(&Args::parse(rest)?),
        "optimize" => commands::optimize::run(&Args::parse(rest)?),
        "hierarchy" => commands::hierarchy::run(&Args::parse(rest)?),
        "serve" => commands::serve::run(&Args::parse(rest)?),
        "cache" => {
            // the action (`ls`/`verify`/`clear`) is the one positional
            // token in the whole grammar; peel it off before the flag-only
            // parser sees the rest
            let mut rest = rest;
            let action = match rest.first() {
                Some(token) if !token.starts_with("--") => Some(rest.remove(0)),
                _ => None,
            };
            commands::cache::run(action.as_deref(), &Args::parse(rest)?)
        }
        "help" | "--help" | "-h" => {
            match rest.first().and_then(|c| usage_of(c)) {
                Some(text) => println!("{text}"),
                None => println!("{TOP_USAGE}"),
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{TOP_USAGE}"
        ))),
    }
}
