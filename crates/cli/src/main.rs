//! `cdp` — categorical data protection from the command line.
//!
//! Wraps the workspace crates into an end-user tool: generate synthetic
//! evaluation data, protect CSV files with the paper's SDC methods,
//! evaluate the seven IL/DR measures, audit privacy models, and run the
//! evolutionary optimizer (scalar or NSGA-II).

mod args;
mod commands;
mod data;
mod error;
mod spec;

use std::process::ExitCode;

use args::Args;
use error::{CliError, Result};

const TOP_USAGE: &str = "\
cdp — categorical data protection toolkit

commands:
  generate   write a synthetic evaluation dataset as CSV
  protect    mask a CSV file with one SDC method
  evaluate   information-loss / disclosure-risk measures of a masked file
  analyze    privacy-model audit (k-anonymity, risk, diversity)
  optimize   evolutionary optimization of a protection population
  hierarchy  export editable generalization-hierarchy files
  help       this text (or `cdp help <command>`)

run `cdp help <command>` for flags.";

fn usage_of(command: &str) -> Option<String> {
    match command {
        "generate" => Some(commands::generate::USAGE.to_string()),
        "protect" => Some(commands::protect::usage()),
        "evaluate" => Some(commands::evaluate::USAGE.to_string()),
        "analyze" => Some(commands::analyze::USAGE.to_string()),
        "optimize" => Some(commands::optimize::USAGE.to_string()),
        "hierarchy" => Some(commands::hierarchy::USAGE.to_string()),
        _ => None,
    }
}

fn dispatch(command: &str, rest: Vec<String>) -> Result<()> {
    match command {
        "generate" => commands::generate::run(&Args::parse(rest)?),
        "protect" => commands::protect::run(&Args::parse(rest)?),
        "evaluate" => commands::evaluate::run(&Args::parse(rest)?),
        "analyze" => commands::analyze::run(&Args::parse(rest)?),
        "optimize" => commands::optimize::run(&Args::parse(rest)?),
        "hierarchy" => commands::hierarchy::run(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            match rest.first().and_then(|c| usage_of(c)) {
                Some(text) => println!("{text}"),
                None => println!("{TOP_USAGE}"),
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{TOP_USAGE}"
        ))),
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        println!("{TOP_USAGE}");
        return ExitCode::from(2);
    };
    match dispatch(&command, argv.collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("cdp {command}: {err}");
            if matches!(err, CliError::Usage(_)) {
                if let Some(text) = usage_of(&command) {
                    eprintln!("\n{text}");
                }
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
