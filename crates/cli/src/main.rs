//! `cdp` — categorical data protection from the command line.
//!
//! Wraps the workspace crates into an end-user tool: generate synthetic
//! evaluation data, protect CSV files with the paper's SDC methods,
//! evaluate the seven IL/DR measures, audit privacy models, run the
//! evolutionary optimizer (scalar or NSGA-II), and serve all of it as a
//! long-lived protection server. All logic lives in the `cdp_cli`
//! library; this binary only routes `argv`.

use std::process::ExitCode;

use cdp_cli::error::CliError;
use cdp_cli::{dispatch, usage_of, TOP_USAGE};

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        println!("{TOP_USAGE}");
        return ExitCode::from(2);
    };
    match dispatch(&command, argv.collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("cdp {command}: {err}");
            if matches!(err, CliError::Usage(_)) {
                if let Some(text) = usage_of(&command) {
                    eprintln!("\n{text}");
                }
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
