//! The `cdp serve` wire protocol: line-delimited UTF-8, lossless both ways.
//!
//! One request per line, one response kind per line. A client sends
//! [`Request`] lines (`JOB <canonical job spec>`, `STATS`, `SHUTDOWN`);
//! the server answers a `JOB` with a stream of `EVENT …` lines — one per
//! [`JobEvent`], in execution order — terminated by exactly one `DONE …`
//! ([`DoneSummary`]: winner IL/DR breakdown, eval counts, cache-hit flag)
//! or `ERR …` line. `STATS` answers with one `STATS …` line carrying the
//! session's [`SessionStats`]; `SHUTDOWN` is acknowledged with `OK bye`.
//!
//! Everything round-trips: `parse(encode(x)) == x` for every request and
//! response, property-tested alongside the job-spec grammar. Numbers use
//! Rust's shortest-round-trip float formatting, so a summary that crossed
//! the wire compares **bit-identical** to one computed in-process — the
//! determinism contract the server e2e tests assert. Free-form text
//! (protection names, error messages) is percent-escaped so spaces and
//! newlines cannot break the framing.

use cdp::pipeline::{CacheEntryStats, JobEvent, JobReport, SessionStats};
use cdp_core::{ObjectiveVector, OperatorKind};

use crate::error::{CliError, Result};
use crate::spec::JobSpec;

/// One client → server line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `JOB <spec>` — run a job described in the CLI's canonical
    /// `key=value` grammar ([`JobSpec`]).
    Job(JobSpec),
    /// `STATS` — report the shared session's cache counters.
    Stats,
    /// `SHUTDOWN` — stop accepting connections and exit cleanly.
    Shutdown,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    /// [`CliError::Usage`] for unknown verbs or an invalid job spec.
    pub fn parse(line: &str) -> Result<Request> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest),
            None => (line, ""),
        };
        match verb {
            "JOB" => Ok(Request::Job(JobSpec::parse(rest)?)),
            "STATS" if rest.is_empty() => Ok(Request::Stats),
            "SHUTDOWN" if rest.is_empty() => Ok(Request::Shutdown),
            _ => Err(CliError::Usage(format!(
                "unknown request `{line}` (JOB <spec> | STATS | SHUTDOWN)"
            ))),
        }
    }

    /// The canonical line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Job(spec) => format!("JOB {}", spec.to_spec_string()),
            Request::Stats => "STATS".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }
}

/// The final summary of a served job: everything a client needs to verify
/// the run against an in-process [`cdp::pipeline::Session::run`] of the
/// same spec.
///
/// Built by [`DoneSummary::from_report`] on both sides of the wire, so
/// equality of two summaries is equality of the underlying winners —
/// the seven-measure breakdown is carried at full precision.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneSummary {
    /// Winner's provenance label.
    pub name: String,
    /// Winner's contingency-table IL.
    pub ctbil: f64,
    /// Winner's distance-based IL.
    pub dbil: f64,
    /// Winner's entropy-based IL.
    pub ebil: f64,
    /// Winner's interval-disclosure DR.
    pub id: f64,
    /// Winner's distance-based record-linkage DR.
    pub dbrl: f64,
    /// Winner's probabilistic record-linkage DR.
    pub prl: f64,
    /// Winner's rank-swapping record-linkage DR.
    pub rsrl: f64,
    /// Records in the original file.
    pub rows: usize,
    /// Protections that entered the run.
    pub population: usize,
    /// Iterations (scalar) or generations (NSGA-II) executed; 0 for
    /// mask-and-score jobs.
    pub iterations: usize,
    /// Full assessments performed.
    pub evals_full: usize,
    /// Patch-based re-assessments performed.
    pub evals_incremental: usize,
    /// Whether the session served a cached evaluator preparation.
    pub cache_hit: bool,
}

impl DoneSummary {
    /// Summarize a finished job.
    pub fn from_report(report: &JobReport) -> DoneSummary {
        use cdp::pipeline::JobOutcome;
        let (iterations, counts) = match &report.outcome {
            JobOutcome::Scored => (0, Default::default()),
            JobOutcome::Scalar(o) => (o.iterations_run, o.eval_counts),
            JobOutcome::Pareto(f) => (f.generations_run(), f.eval_counts),
        };
        let a = &report.best.assessment;
        DoneSummary {
            name: report.best.name.clone(),
            ctbil: a.il_parts.ctbil,
            dbil: a.il_parts.dbil,
            ebil: a.il_parts.ebil,
            id: a.dr_parts.id,
            dbrl: a.dr_parts.dbrl,
            prl: a.dr_parts.prl,
            rsrl: a.dr_parts.rsrl,
            rows: report.table.n_rows(),
            population: report.population_size,
            iterations,
            evals_full: counts.full,
            evals_incremental: counts.incremental,
            cache_hit: report.evaluator_reused,
        }
    }

    /// Aggregated information loss (mean of the three IL measures).
    pub fn il(&self) -> f64 {
        (self.ctbil + self.dbil + self.ebil) / 3.0
    }

    /// Aggregated disclosure risk (mean of the four DR measures).
    pub fn dr(&self) -> f64 {
        (self.id + self.dbrl + self.prl + self.rsrl) / 4.0
    }
}

/// One server → client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `EVENT <kind> <fields…>` — one job progress event.
    Event(JobEvent),
    /// `DONE <fields…>` — the job finished; its summary.
    Done(DoneSummary),
    /// `ERR <message>` — the request failed; no further lines follow it.
    Err(String),
    /// `STATS <fields…>` — the session's cache counters.
    Stats(SessionStats),
    /// `OK <message>` — acknowledgement (shutdown).
    Ok(String),
}

impl Response {
    /// The canonical line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Event(event) => format!("EVENT {}", encode_event(event)),
            Response::Done(d) => format!(
                "DONE name={} ctbil={} dbil={} ebil={} id={} dbrl={} prl={} rsrl={} \
                 rows={} population={} iterations={} evals_full={} evals_incremental={} \
                 cache_hit={}",
                escape(&d.name),
                d.ctbil,
                d.dbil,
                d.ebil,
                d.id,
                d.dbrl,
                d.prl,
                d.rsrl,
                d.rows,
                d.population,
                d.iterations,
                d.evals_full,
                d.evals_incremental,
                d.cache_hit,
            ),
            Response::Err(msg) => format!("ERR {}", escape(msg)),
            Response::Stats(s) => format!("STATS {}", encode_stats(s)),
            Response::Ok(msg) => format!("OK {}", escape(msg)),
        }
    }

    /// Parse one response line.
    ///
    /// # Errors
    /// [`CliError::Usage`] for unknown verbs or malformed fields.
    pub fn parse(line: &str) -> Result<Response> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest),
            None => (line, ""),
        };
        match verb {
            "EVENT" => Ok(Response::Event(decode_event(rest)?)),
            "DONE" => {
                let f = Fields::parse(rest);
                Ok(Response::Done(DoneSummary {
                    name: unescape(f.require("name")?),
                    ctbil: f.num("ctbil")?,
                    dbil: f.num("dbil")?,
                    ebil: f.num("ebil")?,
                    id: f.num("id")?,
                    dbrl: f.num("dbrl")?,
                    prl: f.num("prl")?,
                    rsrl: f.num("rsrl")?,
                    rows: f.num("rows")?,
                    population: f.num("population")?,
                    iterations: f.num("iterations")?,
                    evals_full: f.num("evals_full")?,
                    evals_incremental: f.num("evals_incremental")?,
                    cache_hit: f.num("cache_hit")?,
                }))
            }
            "ERR" => Ok(Response::Err(unescape(rest))),
            "STATS" => Ok(Response::Stats(decode_stats(&Fields::parse(rest))?)),
            "OK" => Ok(Response::Ok(unescape(rest))),
            _ => Err(CliError::Usage(format!(
                "unknown response line `{line}` (EVENT | DONE | ERR | STATS | OK)"
            ))),
        }
    }
}

/// Percent-escape free-form text so it survives the space-separated,
/// line-delimited framing (`%`, space, `=`, CR, LF).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '=' => out.push_str("%3D"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
    // an empty token would vanish from the field grammar
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

/// Invert [`escape`]. Unknown or truncated `%` sequences pass through
/// verbatim (the encoder never emits them).
pub fn unescape(token: &str) -> String {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.clone().take(2).collect();
        match hex.as_str() {
            "25" => out.push('%'),
            "20" => out.push(' '),
            "3D" => out.push('='),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            "00" => {} // the empty-token marker
            _ => {
                out.push('%');
                continue;
            }
        }
        chars.next();
        chars.next();
    }
    out
}

/// Space-separated `key=value` fields of one line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(rest: &'a str) -> Fields<'a> {
        Fields {
            pairs: rest
                .split_whitespace()
                .filter_map(|tok| tok.split_once('='))
                .collect(),
        }
    }

    fn require(&self, key: &str) -> Result<&'a str> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| CliError::Usage(format!("protocol line missing field `{key}`")))
    }

    fn num<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("protocol field {key}: cannot parse `{raw}`")))
    }

    /// Every value of a repeated key, in line order (`entry=` fields).
    fn all(&self, key: &str) -> Vec<&'a str> {
        self.pairs
            .iter()
            .filter(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .collect()
    }
}

fn encode_stats(s: &SessionStats) -> String {
    let mut out = format!(
        "preparations={} hits={} misses={} snapshot_hits={} snapshot_misses={} \
         evictions={} cached={} approx_bytes={}",
        s.preparations,
        s.hits,
        s.misses,
        s.snapshot_hits,
        s.snapshot_misses,
        s.evictions,
        s.cached,
        s.approx_bytes
    );
    for e in &s.entries {
        out.push_str(&format!(
            " entry={}:{}:{}:{}:{}",
            e.rows, e.attrs, e.hits, e.approx_bytes, e.prepared
        ));
    }
    out
}

fn decode_entry(raw: &str) -> Result<CacheEntryStats> {
    let bad = || CliError::Usage(format!("protocol field entry: cannot parse `{raw}`"));
    let parts: Vec<&str> = raw.split(':').collect();
    let [rows, attrs, hits, approx_bytes, prepared] = parts.as_slice() else {
        return Err(bad());
    };
    Ok(CacheEntryStats {
        rows: rows.parse().map_err(|_| bad())?,
        attrs: attrs.parse().map_err(|_| bad())?,
        hits: hits.parse().map_err(|_| bad())?,
        approx_bytes: approx_bytes.parse().map_err(|_| bad())?,
        prepared: prepared.parse().map_err(|_| bad())?,
    })
}

fn decode_stats(f: &Fields<'_>) -> Result<SessionStats> {
    Ok(SessionStats {
        preparations: f.num("preparations")?,
        hits: f.num("hits")?,
        misses: f.num("misses")?,
        snapshot_hits: f.num("snapshot_hits")?,
        snapshot_misses: f.num("snapshot_misses")?,
        evictions: f.num("evictions")?,
        cached: f.num("cached")?,
        approx_bytes: f.num("approx_bytes")?,
        entries: f
            .all("entry")
            .into_iter()
            .map(decode_entry)
            .collect::<Result<_>>()?,
    })
}

/// Encode an objective vector as colon-joined shortest-round-trip floats
/// (`ideal=12.5:40.25:3.75`); component count = run's objective count.
fn encode_vector(v: &ObjectiveVector) -> String {
    v.as_slice()
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(":")
}

fn decode_vector(raw: &str) -> Result<ObjectiveVector> {
    let bad = || CliError::Usage(format!("protocol field ideal: cannot parse `{raw}`"));
    let vals: Vec<f64> = raw
        .split(':')
        .map(|t| t.parse().map_err(|_| bad()))
        .collect::<Result<_>>()?;
    if vals.is_empty() || vals.len() > cdp_metrics::MAX_OBJECTIVES {
        return Err(bad());
    }
    Ok(ObjectiveVector::from_slice(&vals))
}

fn encode_generation_stats(g: &cdp_core::GenerationStats) -> String {
    format!(
        "iteration={} min={} mean={} max={} operator={} accepted={}",
        g.iteration,
        g.min,
        g.mean,
        g.max,
        g.operator.map_or("none", OperatorKind::name),
        g.accepted,
    )
}

fn decode_generation_stats(f: &Fields<'_>) -> Result<cdp_core::GenerationStats> {
    Ok(cdp_core::GenerationStats {
        iteration: f.num("iteration")?,
        min: f.num("min")?,
        mean: f.num("mean")?,
        max: f.num("max")?,
        operator: match f.require("operator")? {
            "none" => None,
            "mutation" => Some(OperatorKind::Mutation),
            "crossover" => Some(OperatorKind::Crossover),
            other => {
                return Err(CliError::Usage(format!(
                    "protocol field operator: unknown value `{other}`"
                )))
            }
        },
        accepted: f.num("accepted")?,
    })
}

/// Serialize one [`JobEvent`] as `<kind> <fields…>` (the part after
/// `EVENT `).
pub fn encode_event(event: &JobEvent) -> String {
    match event {
        JobEvent::SourceReady {
            rows,
            attrs,
            protected,
        } => format!("source rows={rows} attrs={attrs} protected={protected}"),
        JobEvent::EvaluatorReady { reused } => format!("evaluator reused={reused}"),
        JobEvent::CacheStats(stats) => format!("cache {}", encode_stats(stats)),
        JobEvent::PopulationReady { size } => format!("population size={size}"),
        JobEvent::Generation(g) => format!("generation {}", encode_generation_stats(g)),
        JobEvent::FrontAdvanced {
            generation,
            front_size,
            hypervolume,
            ideal,
        } => format!(
            "front generation={generation} front_size={front_size} hypervolume={hypervolume} \
             ideal={}",
            encode_vector(ideal)
        ),
        JobEvent::IslandGeneration { island, stats } => format!(
            "island_generation island={island} {}",
            encode_generation_stats(stats)
        ),
        JobEvent::IslandFront {
            island,
            generation,
            front_size,
            hypervolume,
            ideal,
        } => format!(
            "island_front island={island} generation={generation} \
             front_size={front_size} hypervolume={hypervolume} ideal={}",
            encode_vector(ideal)
        ),
        JobEvent::Migration {
            generation,
            island,
            emigrants,
        } => format!("migration generation={generation} island={island} emigrants={emigrants}"),
        JobEvent::EvolutionFinished {
            iterations,
            evaluations,
        } => format!(
            "finished iterations={iterations} evals_full={} evals_incremental={}",
            evaluations.full, evaluations.incremental
        ),
        JobEvent::AuditReady => "audit".into(),
    }
}

/// Invert [`encode_event`].
///
/// # Errors
/// [`CliError::Usage`] for unknown kinds or malformed fields.
pub fn decode_event(rest: &str) -> Result<JobEvent> {
    let (kind, fields) = match rest.split_once(' ') {
        Some((kind, fields)) => (kind, fields),
        None => (rest, ""),
    };
    let f = Fields::parse(fields);
    match kind {
        "source" => Ok(JobEvent::SourceReady {
            rows: f.num("rows")?,
            attrs: f.num("attrs")?,
            protected: f.num("protected")?,
        }),
        "evaluator" => Ok(JobEvent::EvaluatorReady {
            reused: f.num("reused")?,
        }),
        "cache" => Ok(JobEvent::CacheStats(decode_stats(&f)?)),
        "population" => Ok(JobEvent::PopulationReady {
            size: f.num("size")?,
        }),
        "generation" => Ok(JobEvent::Generation(decode_generation_stats(&f)?)),
        "front" => Ok(JobEvent::FrontAdvanced {
            generation: f.num("generation")?,
            front_size: f.num("front_size")?,
            hypervolume: f.num("hypervolume")?,
            ideal: decode_vector(f.require("ideal")?)?,
        }),
        "island_generation" => Ok(JobEvent::IslandGeneration {
            island: f.num("island")?,
            stats: decode_generation_stats(&f)?,
        }),
        "island_front" => Ok(JobEvent::IslandFront {
            island: f.num("island")?,
            generation: f.num("generation")?,
            front_size: f.num("front_size")?,
            hypervolume: f.num("hypervolume")?,
            ideal: decode_vector(f.require("ideal")?)?,
        }),
        "migration" => Ok(JobEvent::Migration {
            generation: f.num("generation")?,
            island: f.num("island")?,
            emigrants: f.num("emigrants")?,
        }),
        "finished" => Ok(JobEvent::EvolutionFinished {
            iterations: f.num("iterations")?,
            evaluations: cdp_core::EvalCounts {
                full: f.num("evals_full")?,
                incremental: f.num("evals_incremental")?,
            },
        }),
        "audit" => Ok(JobEvent::AuditReady),
        other => Err(CliError::Usage(format!(
            "unknown event kind `{other}` in `{rest}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_core::{EvalCounts, GenerationStats};

    fn roundtrip_response(r: &Response) {
        let line = r.to_line();
        let back = Response::parse(&line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
        assert_eq!(&back, r, "{line}");
        // the canonical line is a fixed point
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn requests_round_trip() {
        for line in [
            "JOB dataset=adult suite=small fitness=max iters=300 seed=42",
            "JOB dataset=german suite=paper mode=nsga gens=25 seed=9 records=100",
            "STATS",
            "SHUTDOWN",
        ] {
            let req = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(req.to_line(), line);
            assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "NOPE",
            "JOB",                 // missing dataset
            "JOB dataset=iris",    // unknown dataset
            "STATS now",           // trailing operand
            "SHUTDOWN please",     // trailing operand
            "job dataset=adult",   // verbs are case-sensitive
            "EVENT source rows=1", // response, not request
        ] {
            assert!(Request::parse(line).is_err(), "`{line}` must be rejected");
        }
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = [
            JobEvent::SourceReady {
                rows: 1000,
                attrs: 13,
                protected: 3,
            },
            JobEvent::EvaluatorReady { reused: true },
            JobEvent::CacheStats(SessionStats {
                preparations: 1,
                hits: 3,
                misses: 1,
                snapshot_hits: 2,
                snapshot_misses: 1,
                evictions: 1,
                cached: 1,
                approx_bytes: 32_768,
                entries: vec![CacheEntryStats {
                    rows: 1000,
                    attrs: 3,
                    hits: 3,
                    approx_bytes: 32_768,
                    prepared: true,
                }],
            }),
            JobEvent::PopulationReady { size: 110 },
            JobEvent::Generation(GenerationStats {
                iteration: 17,
                min: 12.25,
                mean: 30.125,
                max: 97.0625,
                operator: Some(OperatorKind::Crossover),
                accepted: true,
            }),
            JobEvent::Generation(GenerationStats {
                iteration: 0,
                min: 0.1,
                mean: 0.2,
                max: 0.3,
                operator: None,
                accepted: false,
            }),
            JobEvent::FrontAdvanced {
                generation: 3,
                front_size: 9,
                hypervolume: 9123.0625,
                ideal: ObjectiveVector::pair(18.15625, 43.890625),
            },
            // a three-objective front line: the ideal vector's length is
            // the run's objective count, not always 2
            JobEvent::FrontAdvanced {
                generation: 4,
                front_size: 11,
                hypervolume: 712_831.25,
                ideal: ObjectiveVector::from_slice(&[18.15625, 43.890625, 12.5]),
            },
            JobEvent::IslandGeneration {
                island: 3,
                stats: GenerationStats {
                    iteration: 42,
                    min: 11.5,
                    mean: 23.75,
                    max: 88.0625,
                    operator: Some(OperatorKind::Mutation),
                    accepted: false,
                },
            },
            JobEvent::IslandFront {
                island: 1,
                generation: 7,
                front_size: 5,
                hypervolume: 8127.5,
                ideal: ObjectiveVector::pair(9.03125, 61.25),
            },
            JobEvent::Migration {
                generation: 10,
                island: 2,
                emigrants: 2,
            },
            JobEvent::EvolutionFinished {
                iterations: 250,
                evaluations: EvalCounts {
                    full: 120,
                    incremental: 500,
                },
            },
            JobEvent::AuditReady,
        ];
        for event in events {
            roundtrip_response(&Response::Event(event));
        }
    }

    #[test]
    fn done_err_ok_round_trip_with_hostile_text() {
        for name in [
            "pram(0.8)",
            "microagg(k=5,multi,median)",
            "a name with spaces",
            "percent % equals = newline \n cr \r end",
            "",
        ] {
            roundtrip_response(&Response::Done(DoneSummary {
                name: name.into(),
                ctbil: 1.0625,
                dbil: 2.5,
                ebil: 3.25,
                id: 4.125,
                dbrl: 5.75,
                prl: 6.5,
                rsrl: 7.875,
                rows: 120,
                population: 110,
                iterations: 250,
                evals_full: 130,
                evals_incremental: 490,
                cache_hit: true,
            }));
            roundtrip_response(&Response::Err(name.into()));
            roundtrip_response(&Response::Ok(name.into()));
        }
        // every escaped line stays single-line
        let r = Response::Err("two\nlines".into());
        assert_eq!(r.to_line().lines().count(), 1);
    }

    #[test]
    fn stats_round_trip() {
        // without per-entry detail …
        roundtrip_response(&Response::Stats(SessionStats {
            preparations: 2,
            hits: 40,
            misses: 2,
            snapshot_hits: 0,
            snapshot_misses: 0,
            evictions: 0,
            cached: 2,
            approx_bytes: 1 << 20,
            entries: Vec::new(),
        }));
        // … and with: repeated `entry=` fields, order-preserving
        roundtrip_response(&Response::Stats(SessionStats {
            preparations: 2,
            hits: 40,
            misses: 2,
            snapshot_hits: 7,
            snapshot_misses: 2,
            evictions: 6,
            cached: 2,
            approx_bytes: 1 << 20,
            entries: vec![
                CacheEntryStats {
                    rows: 1000,
                    attrs: 3,
                    hits: 39,
                    approx_bytes: 1 << 19,
                    prepared: true,
                },
                CacheEntryStats {
                    rows: 500,
                    attrs: 4,
                    hits: 1,
                    approx_bytes: 1 << 19,
                    prepared: false,
                },
            ],
        }));
    }

    #[test]
    fn malformed_responses_are_rejected() {
        for line in [
            "WHAT 1",
            "EVENT",
            "EVENT warp speed=9",
            "EVENT source rows=1 attrs=2",        // protected missing
            "EVENT generation iteration=1 min=a", // bad float
            "EVENT generation iteration=1 operator=warp", // unknown operator
            "EVENT migration generation=1 island=0", // emigrants missing
            "EVENT island_front island=0 generation=1", // front fields missing
            // ideal vector: missing, empty, unparsable, over-long
            "EVENT front generation=1 front_size=2 hypervolume=3",
            "EVENT front generation=1 front_size=2 hypervolume=3 ideal=",
            "EVENT front generation=1 front_size=2 hypervolume=3 ideal=1:x",
            "EVENT front generation=1 front_size=2 hypervolume=3 ideal=1:2:3:4:5",
            // short entry list
            "STATS preparations=1 hits=0 misses=1 snapshot_hits=0 snapshot_misses=1 \
             evictions=0 cached=1 approx_bytes=8 entry=1:2:3",
            // pre-snapshot STATS lines lack the new mandatory counters
            "STATS preparations=1 hits=0 misses=1 cached=1 approx_bytes=8",
            "DONE name=x", // breakdown missing
        ] {
            assert!(Response::parse(line).is_err(), "`{line}` must be rejected");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// parse ∘ to_line = id over randomly drawn DONE summaries —
        /// float fields at full precision (shortest-round-trip encoding),
        /// names over an adversarial alphabet (spaces, `%`, `=`,
        /// newlines — every character the framing must defend against).
        #[test]
        fn done_summary_round_trips_losslessly(
            name_bits in proptest::prelude::any::<u64>(),
            name_len in 0usize..16,
            ctbil in 0.0f64..100.0, dbil in 0.0f64..100.0, ebil in 0.0f64..100.0,
            id in 0.0f64..100.0, dbrl in 0.0f64..100.0,
            prl in 0.0f64..100.0, rsrl in 0.0f64..100.0,
            rows in 0usize..1_000_000, population in 0usize..4096,
            iterations in 0usize..100_000,
            evals_full in 0usize..1_000_000, evals_incremental in 0usize..1_000_000,
            cache_hit in proptest::prelude::any::<bool>(),
        ) {
            const ALPHABET: &[char] =
                &['a', 'Z', '0', '(', ')', ',', '.', '+', ' ', '%', '=', '\n', '\r', '-', ':', '_'];
            let name: String = (0..name_len)
                .map(|i| ALPHABET[((name_bits >> (i * 4)) & 0xF) as usize])
                .collect();
            let done = Response::Done(DoneSummary {
                name, ctbil, dbil, ebil, id, dbrl, prl, rsrl,
                rows, population, iterations, evals_full, evals_incremental, cache_hit,
            });
            let line = done.to_line();
            proptest::prop_assert_eq!(line.lines().count(), 1, "framing: one line");
            proptest::prop_assert_eq!(&Response::parse(&line).unwrap(), &done);
        }

        /// Generation events carry raw float telemetry; the wire encoding
        /// must preserve every bit.
        #[test]
        fn generation_events_round_trip_losslessly(
            iteration in 0usize..100_000,
            min_bits in proptest::prelude::any::<f64>(),
            mean_bits in proptest::prelude::any::<f64>(),
            max_bits in proptest::prelude::any::<f64>(),
            operator in 0u8..3,
            accepted in proptest::prelude::any::<bool>(),
        ) {
            // finite floats only: the pipeline never emits NaN/inf scores,
            // and NaN would break the PartialEq comparison below
            let finite = |v: f64| if v.is_finite() { v } else { 0.5 };
            let event = Response::Event(JobEvent::Generation(GenerationStats {
                iteration,
                min: finite(min_bits),
                mean: finite(mean_bits),
                max: finite(max_bits),
                operator: [None, Some(OperatorKind::Mutation), Some(OperatorKind::Crossover)]
                    [operator as usize],
                accepted,
            }));
            let line = event.to_line();
            proptest::prop_assert_eq!(&Response::parse(&line).unwrap(), &event);
        }

        /// `STATS` lines (and the identical `EVENT cache` payload) carry
        /// the full counter set — including the snapshot-tier counters —
        /// losslessly, for any entry list.
        #[test]
        fn session_stats_round_trip_losslessly(
            preparations in 0usize..1_000, hits in 0usize..1_000_000,
            misses in 0usize..1_000, snapshot_hits in 0usize..1_000,
            snapshot_misses in 0usize..1_000, evictions in 0usize..1_000,
            approx_bytes in proptest::prelude::any::<usize>(),
            entry_rows in proptest::collection::vec(0usize..1_000_000, 0..4),
            entry_hits in 0usize..1_000,
            entry_prepared in proptest::prelude::any::<bool>(),
        ) {
            let entries: Vec<CacheEntryStats> = entry_rows
                .iter()
                .map(|&rows| CacheEntryStats {
                    rows,
                    attrs: rows % 7,
                    hits: entry_hits,
                    approx_bytes: rows * 13,
                    prepared: entry_prepared,
                })
                .collect();
            let stats = Response::Stats(SessionStats {
                preparations, hits, misses, snapshot_hits, snapshot_misses,
                evictions, cached: entries.len(), approx_bytes, entries,
            });
            let line = stats.to_line();
            proptest::prop_assert_eq!(line.lines().count(), 1);
            let parsed = Response::parse(&line).unwrap();
            proptest::prop_assert_eq!(&parsed, &stats);
            // hit_rate is None at zero lookups and finite otherwise —
            // never NaN, on either side of the wire
            if let Response::Stats(s) = &parsed {
                match s.hit_rate() {
                    None => proptest::prop_assert_eq!(s.hits + s.misses, 0),
                    Some(r) => proptest::prop_assert!(r.is_finite() && (0.0..=1.0).contains(&r)),
                }
            }
        }

        /// `JOB` framing: any canonical job-spec line survives the trip
        /// through a request line (both optimizer modes are drawn by the
        /// sibling spec proptest; here the framing itself is the subject).
        #[test]
        fn job_request_framing_round_trips(
            dataset_i in 0usize..4,
            seed in proptest::prelude::any::<u64>(),
            records_set in proptest::prelude::any::<bool>(),
            records_n in 30usize..500,
            nsga in proptest::prelude::any::<bool>(),
        ) {
            use cdp_dataset::generators::DatasetKind;
            let mut spec = JobSpec {
                dataset: [
                    DatasetKind::Adult,
                    DatasetKind::Housing,
                    DatasetKind::German,
                    DatasetKind::Flare,
                ][dataset_i],
                seed,
                records: records_set.then_some(records_n),
                ..JobSpec::default()
            };
            if nsga {
                spec.mode = crate::spec::SpecMode::Nsga;
                spec.inc = crate::spec::IncMode::Crossover;
            }
            let req = Request::Job(spec);
            let line = req.to_line();
            proptest::prop_assert_eq!(line.lines().count(), 1);
            proptest::prop_assert_eq!(&Request::parse(&line).unwrap(), &req);
        }
    }
}
