//! Method specifications: the `--method name:param` mini-grammar that maps
//! CLI strings onto [`cdp_sdc::ProtectionMethod`] values.

use cdp_sdc::{
    Aggregate, BottomCoding, GlobalRecoding, Grouping, LocalSuppression, MicroVariant,
    Microaggregation, Pram, PramMode, ProtectionMethod, RandomSwap, RankSwapping, TopCoding,
};

use crate::error::{CliError, Result};

/// Grammar accepted by [`parse_method`], one line per method.
pub const METHOD_GRAMMAR: &str = "\
  microagg:<k>[:uni|multi|bi][:median|mode]   categorical microaggregation
  bottomcode:<fraction>                       bottom coding
  topcode:<fraction>                          top coding
  recode:<level>                              global recoding (uniform level)
  rankswap:<p>                                rank swapping, window p% of n
  pram:<theta>[:unif|prop|inv]                PRAM, retention probability theta
  suppress:<k>                                local suppression of classes < k
  randomswap:<fraction>                       uncontrolled random swapping";

/// Parse a method spec like `pram:0.2:inv` into a boxed method.
///
/// # Errors
/// [`CliError::Usage`] with the offending token and the grammar.
pub fn parse_method(spec: &str) -> Result<Box<dyn ProtectionMethod>> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let params: Vec<&str> = parts.collect();
    let bad = |msg: String| CliError::Usage(format!("{msg}\naccepted methods:\n{METHOD_GRAMMAR}"));

    let one_param = |what: &str| -> Result<&str> {
        match params.as_slice() {
            [p] => Ok(*p),
            _ => Err(bad(format!("{name} needs exactly one parameter ({what})"))),
        }
    };

    match name {
        "microagg" => {
            if params.is_empty() || params.len() > 3 {
                return Err(bad("microagg:<k>[:grouping][:aggregate]".into()));
            }
            let k: usize = params[0]
                .parse()
                .map_err(|_| bad(format!("microagg: bad k `{}`", params[0])))?;
            let grouping = match params.get(1).copied() {
                None | Some("uni") => Grouping::Univariate,
                Some("multi") => Grouping::Multivariate,
                Some("bi") => Grouping::Bivariate,
                Some(other) => return Err(bad(format!("microagg: bad grouping `{other}`"))),
            };
            let aggregate = match params.get(2).copied() {
                None | Some("median") => Aggregate::Median,
                Some("mode") => Aggregate::Mode,
                Some(other) => return Err(bad(format!("microagg: bad aggregate `{other}`"))),
            };
            Ok(Box::new(Microaggregation::new(
                k,
                MicroVariant {
                    grouping,
                    aggregate,
                },
            )))
        }
        "bottomcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("bottomcode: bad fraction".into()))?;
            Ok(Box::new(BottomCoding { fraction }))
        }
        "topcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("topcode: bad fraction".into()))?;
            Ok(Box::new(TopCoding { fraction }))
        }
        "recode" => {
            let level: usize = one_param("level")?
                .parse()
                .map_err(|_| bad("recode: bad level".into()))?;
            Ok(Box::new(GlobalRecoding::uniform(level)))
        }
        "rankswap" => {
            let p: usize = one_param("p")?
                .parse()
                .map_err(|_| bad("rankswap: bad p".into()))?;
            Ok(Box::new(RankSwapping::new(p)))
        }
        "pram" => {
            if params.is_empty() || params.len() > 2 {
                return Err(bad("pram:<theta>[:mode]".into()));
            }
            let theta: f64 = params[0]
                .parse()
                .map_err(|_| bad(format!("pram: bad theta `{}`", params[0])))?;
            let mode = match params.get(1).copied() {
                None | Some("unif") => PramMode::Uniform,
                Some("prop") => PramMode::Proportional,
                Some("inv") => PramMode::Invariant,
                Some(other) => return Err(bad(format!("pram: bad mode `{other}`"))),
            };
            Ok(Box::new(Pram::new(theta, mode)))
        }
        "suppress" => {
            let min_class_size: usize = one_param("k")?
                .parse()
                .map_err(|_| bad("suppress: bad k".into()))?;
            Ok(Box::new(LocalSuppression { min_class_size }))
        }
        "randomswap" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("randomswap: bad fraction".into()))?;
            Ok(Box::new(RandomSwap { fraction }))
        }
        other => Err(bad(format!("unknown method `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_method_family() {
        for (spec, expected) in [
            ("microagg:3", "microagg"),
            ("microagg:5:multi:mode", "microagg"),
            ("bottomcode:0.1", "bottom"),
            ("topcode:0.2", "top"),
            ("recode:1", "grec"),
            ("rankswap:5", "rank"),
            ("pram:0.8", "pram"),
            ("pram:0.8:inv", "pram"),
            ("suppress:3", "suppress"),
            ("randomswap:0.25", "random"),
        ] {
            let m = parse_method(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(
                m.name().to_lowercase().contains(expected),
                "{spec} -> {}",
                m.name()
            );
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        for spec in [
            "nope:1",
            "microagg",
            "microagg:x",
            "microagg:3:diag",
            "microagg:3:uni:avg",
            "pram",
            "pram:0.5:weird",
            "rankswap:0.5:extra",
            "suppress:abc",
        ] {
            match parse_method(spec) {
                Ok(m) => panic!("{spec} unexpectedly parsed as {}", m.name()),
                Err(err) => assert!(
                    err.to_string().contains("accepted methods"),
                    "{spec} should fail with grammar help"
                ),
            }
        }
    }
}
