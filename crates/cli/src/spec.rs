//! Protection specifications: the CLI's two mini-grammars.
//!
//! * [`parse_method`] — the `--method name:param` grammar mapping CLI
//!   strings onto [`cdp_sdc::ProtectionMethod`] values.
//! * [`JobSpec`] — the `key=value` job grammar that deserializes a whole
//!   `cdp optimize` invocation straight into a
//!   [`cdp::pipeline::ProtectionJob`], and serializes one back, so CLI
//!   jobs and library jobs cannot drift.

use cdp::pipeline::{DataSource, PopulationSpec, ProtectionJob, SuiteKind};
use cdp_dataset::generators::DatasetKind;
use cdp_metrics::ScoreAggregator;
use cdp_sdc::{
    Aggregate, BottomCoding, GlobalRecoding, Grouping, LocalSuppression, MicroVariant,
    Microaggregation, Pram, PramMode, ProtectionMethod, RandomSwap, RankSwapping, TopCoding,
};

use crate::commands::generate::dataset_kind;
use crate::error::{CliError, Result};

/// Grammar accepted by [`JobSpec::parse`]: whitespace-separated
/// `key=value` tokens, order-insensitive.
pub const JOB_GRAMMAR: &str = "\
  dataset=<adult|housing|german|flare>   evaluation dataset (required)
  records=<n>                            record-count override
  suite=<small|paper>                    initial population sweep
  fitness=<mean|max>                     scalar aggregator
  iters=<n>                              evolution budget (0 = mask only)
  seed=<u64>                             master seed
  drop=<fraction>                        drop best initial fraction (§3.3)
  audit=<true|false>                     privacy-audit the winner";

/// A `cdp optimize` dataset-mode invocation as data: the textual job
/// format the CLI exchanges with [`ProtectionJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Evaluation dataset.
    pub dataset: DatasetKind,
    /// Record-count override.
    pub records: Option<usize>,
    /// Initial population sweep.
    pub suite: SuiteKind,
    /// Scalar fitness aggregator.
    pub fitness: ScoreAggregator,
    /// Evolution budget (0 = mask and score only).
    pub iters: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of best initial protections dropped before evolving.
    pub drop: f64,
    /// Whether to privacy-audit the winner.
    pub audit: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            dataset: DatasetKind::Adult,
            records: None,
            suite: SuiteKind::Small,
            fitness: ScoreAggregator::Max,
            iters: 300,
            seed: 42,
            drop: 0.0,
            audit: false,
        }
    }
}

impl JobSpec {
    /// Parse the `key=value` grammar.
    ///
    /// # Errors
    /// [`CliError::Usage`] with the offending token and the grammar.
    pub fn parse(text: &str) -> Result<JobSpec> {
        let bad = |msg: String| CliError::Usage(format!("{msg}\njob spec keys:\n{JOB_GRAMMAR}"));
        let mut spec = JobSpec::default();
        let mut saw_dataset = false;
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key=value, got `{token}`")))?;
            match key {
                "dataset" => {
                    spec.dataset = dataset_kind(value)?;
                    saw_dataset = true;
                }
                "records" => {
                    spec.records = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("records: bad count `{value}`")))?,
                    );
                }
                "suite" => {
                    spec.suite = parse_suite(value)?;
                }
                "fitness" => {
                    spec.fitness = parse_fitness(value)?;
                }
                "iters" => {
                    spec.iters = value
                        .parse()
                        .map_err(|_| bad(format!("iters: bad count `{value}`")))?;
                }
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| bad(format!("seed: bad value `{value}`")))?;
                }
                "drop" => {
                    spec.drop = value
                        .parse()
                        .map_err(|_| bad(format!("drop: bad fraction `{value}`")))?;
                }
                "audit" => {
                    spec.audit = value
                        .parse()
                        .map_err(|_| bad(format!("audit: expected true/false, got `{value}`")))?;
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        if !saw_dataset {
            return Err(bad("a dataset= key is required".into()));
        }
        Ok(spec)
    }

    /// Canonical serialization: every key, fixed order, re-parses to an
    /// equal spec.
    pub fn to_spec_string(&self) -> String {
        let mut out = format!(
            "dataset={} suite={} fitness={} iters={} seed={}",
            self.dataset.name().to_ascii_lowercase(),
            self.suite.name(),
            self.fitness.name(),
            self.iters,
            self.seed,
        );
        if let Some(n) = self.records {
            out.push_str(&format!(" records={n}"));
        }
        if self.drop > 0.0 {
            out.push_str(&format!(" drop={}", self.drop));
        }
        if self.audit {
            out.push_str(" audit=true");
        }
        out
    }

    /// Deserialize into a runnable [`ProtectionJob`].
    ///
    /// # Errors
    /// [`CliError::Usage`] for inconsistent knob combinations.
    pub fn to_job(&self) -> Result<ProtectionJob> {
        let mut builder = ProtectionJob::builder()
            .dataset(self.dataset)
            .suite_kind(self.suite)
            .aggregator(self.fitness)
            .iterations(self.iters)
            .drop_best_fraction(self.drop)
            .seed(self.seed);
        if let Some(n) = self.records {
            builder = builder.records(n);
        }
        if self.audit {
            builder = builder.audit();
        }
        Ok(builder.build()?)
    }

    /// Recover the spec from a [`ProtectionJob`], when the job is
    /// expressible in the CLI grammar (generated source, suite
    /// population, default knobs). The exact inverse of
    /// [`JobSpec::to_job`]: `from_job(spec.to_job()?) == spec`.
    ///
    /// # Errors
    /// [`CliError::Usage`] for jobs carrying values the textual format
    /// cannot represent: loaded tables, custom suites, explicit method
    /// lists, pre-masked populations, `add_protection` extras, a
    /// generator-seed override, named sensitive audit attributes, or
    /// non-default metric/evolution knobs.
    pub fn from_job(job: &ProtectionJob) -> Result<JobSpec> {
        let unrepresentable =
            |what: &str| CliError::Usage(format!("{what} is not expressible as a CLI job spec"));
        let (dataset, records) = match job.source() {
            DataSource::Generated {
                kind,
                records,
                seed,
            } => {
                if seed.is_some() && *seed != Some(job.seed()) {
                    return Err(unrepresentable("a generator-seed override"));
                }
                (*kind, *records)
            }
            _ => return Err(unrepresentable("a non-generated data source")),
        };
        let suite = match job.population() {
            PopulationSpec::Suite(kind) => *kind,
            _ => return Err(unrepresentable("a non-suite population recipe")),
        };
        if !job.extras().is_empty() {
            return Err(unrepresentable("an add_protection extra"));
        }
        if job
            .audit_spec()
            .is_some_and(|spec| !spec.sensitive.is_empty())
        {
            return Err(unrepresentable("a named sensitive audit attribute"));
        }
        if job.metrics() != cdp_metrics::MetricConfig::default() {
            return Err(unrepresentable("a non-default metric configuration"));
        }
        // the grammar only carries fitness/iters/seed; every other
        // evolution knob must sit at its default
        let mut expected = cdp_core::EvoConfig::default();
        expected.aggregator = job.evo_config().aggregator;
        expected.seed = job.seed();
        expected.stop.max_iterations = job.iterations().max(1);
        if job.evo_config() != expected {
            return Err(unrepresentable("a non-default evolution knob"));
        }
        Ok(JobSpec {
            dataset,
            records,
            suite,
            fitness: job.evo_config().aggregator,
            iters: job.iterations(),
            seed: job.seed(),
            drop: job.drop_fraction(),
            audit: job.audit_spec().is_some(),
        })
    }
}

/// Parse a `--suite` / `suite=` value.
pub fn parse_suite(value: &str) -> Result<SuiteKind> {
    match value {
        "small" => Ok(SuiteKind::Small),
        "paper" => Ok(SuiteKind::Paper),
        other => Err(CliError::Usage(format!(
            "unknown suite `{other}` (small, paper)"
        ))),
    }
}

/// Parse a `--fitness` / `fitness=` value.
pub fn parse_fitness(value: &str) -> Result<ScoreAggregator> {
    match value {
        "mean" => Ok(ScoreAggregator::Mean),
        "max" => Ok(ScoreAggregator::Max),
        other => Err(CliError::Usage(format!(
            "unknown fitness `{other}` (mean, max)"
        ))),
    }
}

/// Grammar accepted by [`parse_method`], one line per method.
pub const METHOD_GRAMMAR: &str = "\
  microagg:<k>[:uni|multi|bi][:median|mode]   categorical microaggregation
  bottomcode:<fraction>                       bottom coding
  topcode:<fraction>                          top coding
  recode:<level>                              global recoding (uniform level)
  rankswap:<p>                                rank swapping, window p% of n
  pram:<theta>[:unif|prop|inv]                PRAM, retention probability theta
  suppress:<k>                                local suppression of classes < k
  randomswap:<fraction>                       uncontrolled random swapping";

/// Parse a method spec like `pram:0.2:inv` into a boxed method.
///
/// # Errors
/// [`CliError::Usage`] with the offending token and the grammar.
pub fn parse_method(spec: &str) -> Result<Box<dyn ProtectionMethod>> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let params: Vec<&str> = parts.collect();
    let bad = |msg: String| CliError::Usage(format!("{msg}\naccepted methods:\n{METHOD_GRAMMAR}"));

    let one_param = |what: &str| -> Result<&str> {
        match params.as_slice() {
            [p] => Ok(*p),
            _ => Err(bad(format!("{name} needs exactly one parameter ({what})"))),
        }
    };

    match name {
        "microagg" => {
            if params.is_empty() || params.len() > 3 {
                return Err(bad("microagg:<k>[:grouping][:aggregate]".into()));
            }
            let k: usize = params[0]
                .parse()
                .map_err(|_| bad(format!("microagg: bad k `{}`", params[0])))?;
            let grouping = match params.get(1).copied() {
                None | Some("uni") => Grouping::Univariate,
                Some("multi") => Grouping::Multivariate,
                Some("bi") => Grouping::Bivariate,
                Some(other) => return Err(bad(format!("microagg: bad grouping `{other}`"))),
            };
            let aggregate = match params.get(2).copied() {
                None | Some("median") => Aggregate::Median,
                Some("mode") => Aggregate::Mode,
                Some(other) => return Err(bad(format!("microagg: bad aggregate `{other}`"))),
            };
            Ok(Box::new(Microaggregation::new(
                k,
                MicroVariant {
                    grouping,
                    aggregate,
                },
            )))
        }
        "bottomcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("bottomcode: bad fraction".into()))?;
            Ok(Box::new(BottomCoding { fraction }))
        }
        "topcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("topcode: bad fraction".into()))?;
            Ok(Box::new(TopCoding { fraction }))
        }
        "recode" => {
            let level: usize = one_param("level")?
                .parse()
                .map_err(|_| bad("recode: bad level".into()))?;
            Ok(Box::new(GlobalRecoding::uniform(level)))
        }
        "rankswap" => {
            let p: usize = one_param("p")?
                .parse()
                .map_err(|_| bad("rankswap: bad p".into()))?;
            Ok(Box::new(RankSwapping::new(p)))
        }
        "pram" => {
            if params.is_empty() || params.len() > 2 {
                return Err(bad("pram:<theta>[:mode]".into()));
            }
            let theta: f64 = params[0]
                .parse()
                .map_err(|_| bad(format!("pram: bad theta `{}`", params[0])))?;
            let mode = match params.get(1).copied() {
                None | Some("unif") => PramMode::Uniform,
                Some("prop") => PramMode::Proportional,
                Some("inv") => PramMode::Invariant,
                Some(other) => return Err(bad(format!("pram: bad mode `{other}`"))),
            };
            Ok(Box::new(Pram::new(theta, mode)))
        }
        "suppress" => {
            let min_class_size: usize = one_param("k")?
                .parse()
                .map_err(|_| bad("suppress: bad k".into()))?;
            Ok(Box::new(LocalSuppression { min_class_size }))
        }
        "randomswap" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("randomswap: bad fraction".into()))?;
            Ok(Box::new(RandomSwap { fraction }))
        }
        other => Err(bad(format!("unknown method `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_method_family() {
        for (spec, expected) in [
            ("microagg:3", "microagg"),
            ("microagg:5:multi:mode", "microagg"),
            ("bottomcode:0.1", "bottom"),
            ("topcode:0.2", "top"),
            ("recode:1", "grec"),
            ("rankswap:5", "rank"),
            ("pram:0.8", "pram"),
            ("pram:0.8:inv", "pram"),
            ("suppress:3", "suppress"),
            ("randomswap:0.25", "random"),
        ] {
            let m = parse_method(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(
                m.name().to_lowercase().contains(expected),
                "{spec} -> {}",
                m.name()
            );
        }
    }

    #[test]
    fn job_spec_round_trips_through_protection_job() {
        // spec text -> JobSpec -> ProtectionJob -> JobSpec -> spec text:
        // CLI jobs and library jobs cannot drift
        for text in [
            "dataset=adult suite=small fitness=max iters=300 seed=42",
            "dataset=flare suite=paper fitness=mean iters=250 seed=7 records=120 drop=0.05",
            "dataset=german suite=small fitness=max iters=0 seed=1 audit=true",
            "dataset=housing suite=paper fitness=max iters=10 seed=3 records=80 drop=0.1 audit=true",
        ] {
            let spec = JobSpec::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let job = spec.to_job().unwrap_or_else(|e| panic!("{text}: {e}"));
            let back = JobSpec::from_job(&job).unwrap();
            assert_eq!(spec, back, "{text}");
            assert_eq!(spec.to_spec_string(), back.to_spec_string());
            // the canonical string re-parses to the same spec
            assert_eq!(JobSpec::parse(&spec.to_spec_string()).unwrap(), spec);
        }
    }

    #[test]
    fn job_spec_is_order_insensitive_and_defaulted() {
        let a = JobSpec::parse("seed=9 dataset=adult").unwrap();
        let b = JobSpec::parse("dataset=adult seed=9").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.suite, cdp::pipeline::SuiteKind::Small);
        assert_eq!(a.iters, 300);
    }

    #[test]
    fn job_spec_rejects_malformed_input() {
        for text in [
            "",                          // dataset missing
            "dataset=iris",              // unknown dataset
            "dataset=adult suite=huge",  // unknown suite
            "dataset=adult fitness=min", // unknown fitness
            "dataset=adult iters=many",  // bad number
            "dataset=adult audit=yes",   // bad bool
            "dataset=adult unknown=1",   // unknown key
            "dataset=adult records",     // not key=value
            "dataset=adult drop=1.5",    // builder rejects the fraction
        ] {
            let result = JobSpec::parse(text).and_then(|s| s.to_job().map(|_| ()));
            assert!(result.is_err(), "`{text}` should be rejected");
        }
    }

    #[test]
    fn non_cli_expressible_jobs_are_reported() {
        let ds = cdp_dataset::generators::DatasetKind::Adult
            .generate(&cdp_dataset::generators::GeneratorConfig::seeded(1).with_records(30));
        let job = ProtectionJob::builder()
            .table(ds.table, ds.protected)
            .build()
            .unwrap();
        assert!(JobSpec::from_job(&job).is_err());

        let job = ProtectionJob::builder()
            .dataset(cdp_dataset::generators::DatasetKind::Adult)
            .methods(vec![Box::new(Pram::new(0.8, PramMode::Uniform))])
            .build()
            .unwrap();
        assert!(JobSpec::from_job(&job).is_err());

        // knobs outside the grammar must be reported, not silently dropped
        let adult = cdp_dataset::generators::DatasetKind::Adult;
        for (what, job) in [
            (
                "generator seed override",
                ProtectionJob::builder()
                    .dataset(adult)
                    .generator_seed(5)
                    .seed(42)
                    .build()
                    .unwrap(),
            ),
            (
                "sensitive audit attribute",
                ProtectionJob::builder()
                    .dataset(adult)
                    .audit_sensitive(["INCOME"])
                    .build()
                    .unwrap(),
            ),
            (
                "mutation rate",
                ProtectionJob::builder()
                    .dataset(adult)
                    .mutation_rate(0.9)
                    .build()
                    .unwrap(),
            ),
            (
                "metric config",
                ProtectionJob::builder()
                    .dataset(adult)
                    .metrics(cdp_metrics::MetricConfig {
                        prl_em_iters: 3,
                        ..cdp_metrics::MetricConfig::default()
                    })
                    .build()
                    .unwrap(),
            ),
        ] {
            let err = JobSpec::from_job(&job).unwrap_err();
            assert!(err.to_string().contains("not expressible"), "{what}: {err}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        for spec in [
            "nope:1",
            "microagg",
            "microagg:x",
            "microagg:3:diag",
            "microagg:3:uni:avg",
            "pram",
            "pram:0.5:weird",
            "rankswap:0.5:extra",
            "suppress:abc",
        ] {
            match parse_method(spec) {
                Ok(m) => panic!("{spec} unexpectedly parsed as {}", m.name()),
                Err(err) => assert!(
                    err.to_string().contains("accepted methods"),
                    "{spec} should fail with grammar help"
                ),
            }
        }
    }
}
