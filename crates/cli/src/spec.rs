//! Protection specifications: the CLI's two mini-grammars.
//!
//! * [`parse_method`] — the `--method name:param` grammar mapping CLI
//!   strings onto [`cdp_sdc::ProtectionMethod`] values.
//! * [`JobSpec`] — the `key=value` job grammar that deserializes a whole
//!   `cdp optimize` invocation straight into a
//!   [`cdp::pipeline::ProtectionJob`], and serializes one back, so CLI
//!   jobs and library jobs cannot drift.

use cdp::pipeline::{DataSource, OptimizerMode, PopulationSpec, ProtectionJob, SuiteKind};
use cdp_core::NsgaConfig;
use cdp_dataset::generators::DatasetKind;
use cdp_metrics::{LinkageMode, ScoreAggregator};
use cdp_sdc::{
    Aggregate, BottomCoding, GlobalRecoding, Grouping, LocalSuppression, MicroVariant,
    Microaggregation, Pram, PramMode, ProtectionMethod, RandomSwap, RankSwapping, TopCoding,
};

use crate::commands::generate::dataset_kind;
use crate::error::{CliError, Result};

/// Grammar accepted by [`JobSpec::parse`]: whitespace-separated
/// `key=value` tokens, order-insensitive. Scalar-only keys under
/// `mode=nsga` (and vice versa) are rejected with the offending key named.
pub const JOB_GRAMMAR: &str = "\
  dataset=<adult|housing|german|flare>   evaluation dataset (required)
  records=<n>                            record-count override
  suite=<small|paper>                    initial population sweep
  mode=<scalar|nsga>                     optimizer (default scalar)
  seed=<u64>                             master seed
  audit=<true|false>                     privacy-audit the winner
  inc=<off|mut|xover|all>                incremental offspring evaluation
                                         (default: all; under mode=nsga the
                                         default — and only on-value — is
                                         xover; mut/all: scalar mode only)
  link=<pairs|blocked>                   DBRL/RSRL scan backend (default
                                         blocked: distinct-pattern index
                                         scans, identical credits to the
                                         all-pairs reference)
  islands=<k>                            island-model parallel run with k
                                         islands (default 1 = the legacy
                                         single-population streams)
  mig=<n>                                generations between migration
                                         epochs when islands>1 (default 10)
  -- scalar mode only --
  fitness=<mean|max>                     scalar aggregator
  iters=<n>                              evolution budget (0 = mask only)
  drop=<fraction>                        drop best initial fraction (§3.3)
  -- nsga mode only --
  gens=<n>                               NSGA-II generations
  offspring=<n>                          offspring per generation (0 = population size)
  xprob=<p>                              crossover probability
  obj=il,dr[,eps|util]                   objective vector (leads with the
                                         canonical il,dr pair; extras: eps
                                         empirical-LDP leakage, util
                                         task-utility gap)
  eps=<budget>                           add an ε-calibrated invariant-PRAM
                                         member to the initial population";

/// The incremental-evaluation selector of the job grammar (`inc=` key).
///
/// Incremental evaluation is exact (bit-identical to full assessments) and
/// on by default: `all` in scalar mode, `xover` under `mode=nsga` (where
/// one knob covers both operators). `xover` is valid in both modes (it
/// maps onto `EvoConfig::incremental_crossover` in scalar mode and
/// `NsgaConfig::incremental` under `mode=nsga`); `mut` and `all` name the
/// mutation path and are scalar-only. `inc=off` opts back into full O(n²)
/// scoring of every offspring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncMode {
    /// Every offspring pays a full assessment.
    Off,
    /// Incremental mutation offspring only.
    Mutation,
    /// Incremental crossover offspring only.
    Crossover,
    /// Both operators evaluate incrementally.
    All,
}

impl IncMode {
    /// The default selector of a [`SpecMode`]: `all` in scalar mode,
    /// `xover` under `mode=nsga` (one knob covers both operators there).
    pub fn default_for(mode: SpecMode) -> IncMode {
        match mode {
            SpecMode::Scalar => IncMode::All,
            SpecMode::Nsga => IncMode::Crossover,
        }
    }

    /// The CLI spelling (`off` / `mut` / `xover` / `all`).
    pub fn name(self) -> &'static str {
        match self {
            IncMode::Off => "off",
            IncMode::Mutation => "mut",
            IncMode::Crossover => "xover",
            IncMode::All => "all",
        }
    }

    /// Whether the mutation path evaluates incrementally.
    pub fn mutation(self) -> bool {
        matches!(self, IncMode::Mutation | IncMode::All)
    }

    /// Whether the crossover path evaluates incrementally.
    pub fn crossover(self) -> bool {
        matches!(self, IncMode::Crossover | IncMode::All)
    }
}

/// Parse an `inc=` value.
pub fn parse_inc(value: &str) -> Result<IncMode> {
    match value {
        "off" => Ok(IncMode::Off),
        "mut" => Ok(IncMode::Mutation),
        "xover" => Ok(IncMode::Crossover),
        "all" => Ok(IncMode::All),
        other => Err(CliError::Usage(format!(
            "unknown inc `{other}` (off, mut, xover, all)"
        ))),
    }
}

/// The optimizer selector of the job grammar (`mode=` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecMode {
    /// The paper's scalar algorithm (default).
    Scalar,
    /// NSGA-II over Pareto dominance.
    Nsga,
}

impl SpecMode {
    /// The CLI spelling (`scalar` / `nsga`).
    pub fn name(self) -> &'static str {
        match self {
            SpecMode::Scalar => "scalar",
            SpecMode::Nsga => "nsga",
        }
    }
}

/// A `cdp optimize` dataset-mode invocation as data: the textual job
/// format the CLI exchanges with [`ProtectionJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Evaluation dataset.
    pub dataset: DatasetKind,
    /// Record-count override.
    pub records: Option<usize>,
    /// Initial population sweep.
    pub suite: SuiteKind,
    /// Which optimizer drives the run.
    pub mode: SpecMode,
    /// Scalar fitness aggregator.
    pub fitness: ScoreAggregator,
    /// Scalar evolution budget (0 = mask and score only).
    pub iters: usize,
    /// NSGA-II generations.
    pub gens: usize,
    /// NSGA-II offspring per generation (0 = population size).
    pub offspring: usize,
    /// NSGA-II crossover probability.
    pub xprob: f64,
    /// Master seed.
    pub seed: u64,
    /// Fraction of best initial protections dropped before evolving
    /// (scalar).
    pub drop: f64,
    /// Whether to privacy-audit the winner.
    pub audit: bool,
    /// Incremental offspring evaluation (`inc=` key; defaults to
    /// [`IncMode::default_for`] the spec's mode).
    pub inc: IncMode,
    /// DBRL/RSRL scan backend (`link=` key; defaults to
    /// [`LinkageMode::Blocked`]).
    pub link: LinkageMode,
    /// Island count (`islands=` key; default 1 = the legacy
    /// single-population run). Shared between the two modes.
    pub islands: usize,
    /// Migration interval in generations (`mig=` key; default 10).
    pub mig: usize,
    /// Extra objective keys beyond the canonical leading `il, dr` pair
    /// (`obj=` key; nsga mode only — the scalar optimizer aggregates the
    /// fixed pair).
    pub obj: Vec<String>,
    /// ε-calibrated invariant-PRAM population member: the budget of the
    /// `eps=` key (nsga mode only).
    pub eps: Option<f64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        let nsga = NsgaConfig::default();
        JobSpec {
            dataset: DatasetKind::Adult,
            records: None,
            suite: SuiteKind::Small,
            mode: SpecMode::Scalar,
            fitness: ScoreAggregator::Max,
            iters: 300,
            // match the scalar `iters` default, so a budget-less CLI run
            // spends the same 300 steps in either mode
            gens: 300,
            offspring: nsga.offspring,
            xprob: nsga.crossover_prob,
            seed: 42,
            drop: 0.0,
            audit: false,
            inc: IncMode::default_for(SpecMode::Scalar),
            link: LinkageMode::default(),
            islands: 1,
            mig: cdp_core::IslandConfig::default().migration_interval,
            obj: Vec::new(),
            eps: None,
        }
    }
}

impl JobSpec {
    /// Parse the `key=value` grammar.
    ///
    /// Mode consistency is validated after all tokens are read (the
    /// grammar is order-insensitive, so `mode=` may come last): scalar-only
    /// keys under `mode=nsga` — and nsga-only keys under the (default)
    /// scalar mode — are usage errors naming the offending key.
    ///
    /// # Errors
    /// [`CliError::Usage`] with the offending token and the grammar.
    pub fn parse(text: &str) -> Result<JobSpec> {
        let bad = |msg: String| CliError::Usage(format!("{msg}\njob spec keys:\n{JOB_GRAMMAR}"));
        let mut spec = JobSpec::default();
        let mut saw_dataset = false;
        let mut seen: Vec<&str> = Vec::new();
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key=value, got `{token}`")))?;
            match key {
                "dataset" => {
                    spec.dataset = dataset_kind(value)?;
                    saw_dataset = true;
                }
                "records" => {
                    spec.records = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("records: bad count `{value}`")))?,
                    );
                }
                "suite" => {
                    spec.suite = parse_suite(value)?;
                }
                "mode" => {
                    spec.mode = parse_mode(value)?;
                }
                "fitness" => {
                    spec.fitness = parse_fitness(value)?;
                    seen.push("fitness");
                }
                "iters" => {
                    spec.iters = value
                        .parse()
                        .map_err(|_| bad(format!("iters: bad count `{value}`")))?;
                    seen.push("iters");
                }
                "gens" => {
                    spec.gens = value
                        .parse()
                        .map_err(|_| bad(format!("gens: bad count `{value}`")))?;
                    seen.push("gens");
                }
                "offspring" => {
                    spec.offspring = value
                        .parse()
                        .map_err(|_| bad(format!("offspring: bad count `{value}`")))?;
                    seen.push("offspring");
                }
                "xprob" => {
                    spec.xprob = value
                        .parse()
                        .map_err(|_| bad(format!("xprob: bad probability `{value}`")))?;
                    seen.push("xprob");
                }
                "seed" => {
                    spec.seed = value
                        .parse()
                        .map_err(|_| bad(format!("seed: bad value `{value}`")))?;
                }
                "drop" => {
                    spec.drop = value
                        .parse()
                        .map_err(|_| bad(format!("drop: bad fraction `{value}`")))?;
                    seen.push("drop");
                }
                "audit" => {
                    spec.audit = value
                        .parse()
                        .map_err(|_| bad(format!("audit: expected true/false, got `{value}`")))?;
                }
                "inc" => {
                    spec.inc = parse_inc(value)?;
                    seen.push("inc");
                }
                "link" => {
                    spec.link = parse_link(value)?;
                }
                "islands" => {
                    spec.islands = value
                        .parse()
                        .map_err(|_| bad(format!("islands: bad count `{value}`")))?;
                }
                "mig" => {
                    spec.mig = value
                        .parse()
                        .map_err(|_| bad(format!("mig: bad interval `{value}`")))?;
                }
                "obj" => {
                    // the metrics registry owns the key grammar; the CLI
                    // stores only the extension beyond the canonical pair
                    let set = cdp_metrics::ObjectiveSet::parse(value)
                        .map_err(|e| bad(format!("obj: {e}")))?;
                    spec.obj = set.keys()[2..].iter().map(|k| (*k).to_string()).collect();
                    seen.push("obj");
                }
                "eps" => {
                    spec.eps = Some(
                        value
                            .parse()
                            .map_err(|_| bad(format!("eps: bad budget `{value}`")))?,
                    );
                    seen.push("eps");
                }
                other => return Err(bad(format!("unknown key `{other}`"))),
            }
        }
        if !saw_dataset {
            return Err(bad("a dataset= key is required".into()));
        }
        let (wrong, right_mode): (&[&str], &str) = match spec.mode {
            SpecMode::Scalar => (&["gens", "offspring", "xprob", "obj", "eps"], "mode=nsga"),
            SpecMode::Nsga => (&["fitness", "iters", "drop"], "the (default) scalar mode"),
        };
        if let Some(key) = seen.iter().find(|k| wrong.contains(k)) {
            return Err(bad(format!(
                "`{key}` applies to {right_mode} (this spec runs {})",
                spec.mode.name()
            )));
        }
        if spec.mode == SpecMode::Nsga {
            if !seen.contains(&"inc") {
                // the default is mode-dependent: one nsga knob covers both
                // operators, so default-on spells `xover` there
                spec.inc = IncMode::default_for(SpecMode::Nsga);
            } else if spec.inc.mutation() {
                return Err(bad(format!(
                    "`inc={}` names the mutation path and applies to the \
                     (default) scalar mode; under mode=nsga use inc=xover",
                    spec.inc.name()
                )));
            }
        }
        Ok(spec)
    }

    /// Canonical serialization: fixed order, mode-appropriate keys only,
    /// re-parses to an equal spec (`parse ∘ to_spec_string = id`).
    pub fn to_spec_string(&self) -> String {
        let defaults = JobSpec::default();
        let mut out = match self.mode {
            SpecMode::Scalar => format!(
                "dataset={} suite={} fitness={} iters={} seed={}",
                self.dataset.name().to_ascii_lowercase(),
                self.suite.name(),
                self.fitness.name(),
                self.iters,
                self.seed,
            ),
            SpecMode::Nsga => format!(
                "dataset={} suite={} mode=nsga gens={} seed={}",
                self.dataset.name().to_ascii_lowercase(),
                self.suite.name(),
                self.gens,
                self.seed,
            ),
        };
        if let Some(n) = self.records {
            out.push_str(&format!(" records={n}"));
        }
        match self.mode {
            SpecMode::Scalar => {
                if self.drop > 0.0 {
                    out.push_str(&format!(" drop={}", self.drop));
                }
            }
            SpecMode::Nsga => {
                if self.offspring != defaults.offspring {
                    out.push_str(&format!(" offspring={}", self.offspring));
                }
                if self.xprob != defaults.xprob {
                    out.push_str(&format!(" xprob={}", self.xprob));
                }
                if !self.obj.is_empty() {
                    out.push_str(&format!(" obj=il,dr,{}", self.obj.join(",")));
                }
                if let Some(eps) = self.eps {
                    out.push_str(&format!(" eps={eps}"));
                }
            }
        }
        if self.inc != IncMode::default_for(self.mode) {
            out.push_str(&format!(" inc={}", self.inc.name()));
        }
        if self.link != LinkageMode::default() {
            out.push_str(&format!(" link={}", link_name(self.link)));
        }
        if self.islands != defaults.islands {
            out.push_str(&format!(" islands={}", self.islands));
        }
        if self.mig != defaults.mig {
            out.push_str(&format!(" mig={}", self.mig));
        }
        if self.audit {
            out.push_str(" audit=true");
        }
        out
    }

    /// Deserialize into a runnable [`ProtectionJob`].
    ///
    /// # Errors
    /// [`CliError::Usage`] for inconsistent knob combinations.
    pub fn to_job(&self) -> Result<ProtectionJob> {
        let mut builder = ProtectionJob::builder()
            .dataset(self.dataset)
            .suite_kind(self.suite)
            .seed(self.seed)
            .linkage(self.link)
            .islands(self.islands)
            .migration_interval(self.mig);
        builder = match self.mode {
            SpecMode::Scalar => builder
                .aggregator(self.fitness)
                .iterations(self.iters)
                .drop_best_fraction(self.drop)
                .incremental_mutation(self.inc.mutation())
                .incremental_crossover(self.inc.crossover()),
            SpecMode::Nsga => builder
                .nsga()
                .iterations(self.gens)
                .offspring(self.offspring)
                .crossover_prob(self.xprob)
                .incremental_crossover(self.inc.crossover()),
        };
        for key in &self.obj {
            builder = builder.objective(key.clone());
        }
        if let Some(eps) = self.eps {
            builder = builder.epsilon_pram(eps);
        }
        if let Some(n) = self.records {
            builder = builder.records(n);
        }
        if self.audit {
            builder = builder.audit();
        }
        Ok(builder.build()?)
    }

    /// Recover the spec from a [`ProtectionJob`], when the job is
    /// expressible in the CLI grammar (generated source, suite
    /// population, default knobs) — both optimizer modes round-trip. The
    /// exact inverse of [`JobSpec::to_job`]:
    /// `from_job(spec.to_job()?) == spec`.
    ///
    /// # Errors
    /// [`CliError::Usage`] for jobs carrying values the textual format
    /// cannot represent: loaded tables, custom suites, explicit method
    /// lists, pre-masked populations, `add_protection` extras, a
    /// generator-seed override, named sensitive audit attributes, or
    /// non-default metric/evolution knobs.
    pub fn from_job(job: &ProtectionJob) -> Result<JobSpec> {
        let unrepresentable =
            |what: &str| CliError::Usage(format!("{what} is not expressible as a CLI job spec"));
        let (dataset, records) = match job.source() {
            DataSource::Generated {
                kind,
                records,
                seed,
            } => {
                if seed.is_some() && *seed != Some(job.seed()) {
                    return Err(unrepresentable("a generator-seed override"));
                }
                (*kind, *records)
            }
            _ => return Err(unrepresentable("a non-generated data source")),
        };
        let suite = match job.population() {
            PopulationSpec::Suite(kind) => *kind,
            _ => return Err(unrepresentable("a non-suite population recipe")),
        };
        if !job.extras().is_empty() {
            return Err(unrepresentable("an add_protection extra"));
        }
        if job
            .audit_spec()
            .is_some_and(|spec| !spec.sensitive.is_empty())
        {
            return Err(unrepresentable("a named sensitive audit attribute"));
        }
        // the linkage backend is the one metric knob the grammar carries
        // (`link=`); everything else must sit at its default
        let expected_metrics = cdp_metrics::MetricConfig {
            linkage: job.metrics().linkage,
            ..cdp_metrics::MetricConfig::default()
        };
        if job.metrics() != expected_metrics {
            return Err(unrepresentable("a non-default metric configuration"));
        }
        let mut spec = JobSpec {
            dataset,
            records,
            suite,
            seed: job.seed(),
            audit: job.audit_spec().is_some(),
            link: job.metrics().linkage,
            ..JobSpec::default()
        };
        match job.optimizer() {
            OptimizerMode::Scalar(evo) => {
                // the grammar keeps obj=/eps= nsga-only, so a scalar job
                // carrying an ε-PRAM member has no spelling (the builder
                // already forbids a non-canonical objective set here)
                if job.pram_epsilon().is_some() {
                    return Err(unrepresentable(
                        "an ε-PRAM member under the scalar optimizer",
                    ));
                }
                // the grammar carries fitness/iters/drop/seed/inc plus the
                // islands/mig pair; every other evolution knob must sit at
                // its default
                let mut expected = cdp_core::EvoConfig {
                    aggregator: evo.aggregator,
                    seed: job.seed(),
                    incremental_mutation: evo.incremental_mutation,
                    incremental_crossover: evo.incremental_crossover,
                    islands: cdp_core::IslandConfig {
                        count: evo.islands.count,
                        migration_interval: evo.islands.migration_interval,
                        ..cdp_core::IslandConfig::default()
                    },
                    ..cdp_core::EvoConfig::default()
                };
                expected.stop.max_iterations = job.iterations().max(1);
                if evo != expected {
                    return Err(unrepresentable("a non-default evolution knob"));
                }
                spec.mode = SpecMode::Scalar;
                spec.fitness = evo.aggregator;
                spec.iters = job.iterations();
                spec.drop = job.drop_fraction();
                spec.islands = evo.islands.count;
                spec.mig = evo.islands.migration_interval;
                spec.inc = match (evo.incremental_mutation, evo.incremental_crossover) {
                    (false, false) => IncMode::Off,
                    (true, false) => IncMode::Mutation,
                    (false, true) => IncMode::Crossover,
                    (true, true) => IncMode::All,
                };
            }
            OptimizerMode::Nsga(cfg) => {
                if !cfg.parallel_init {
                    return Err(unrepresentable("a parallel_init override"));
                }
                if cfg.incremental_refresh != NsgaConfig::default().incremental_refresh {
                    return Err(unrepresentable("an incremental_refresh override"));
                }
                let expected_islands = cdp_core::IslandConfig {
                    count: cfg.islands.count,
                    migration_interval: cfg.islands.migration_interval,
                    ..cdp_core::IslandConfig::default()
                };
                if cfg.islands != expected_islands {
                    return Err(unrepresentable("a migration_size/topology override"));
                }
                spec.mode = SpecMode::Nsga;
                spec.gens = cfg.generations;
                spec.offspring = cfg.offspring;
                spec.xprob = cfg.crossover_prob;
                spec.islands = cfg.islands.count;
                spec.mig = cfg.islands.migration_interval;
                spec.inc = if cfg.incremental {
                    IncMode::Crossover
                } else {
                    IncMode::Off
                };
                spec.obj = job.objectives().keys()[2..]
                    .iter()
                    .map(|k| (*k).to_string())
                    .collect();
                spec.eps = job.pram_epsilon();
            }
        }
        Ok(spec)
    }
}

/// Parse a `link=` value.
pub fn parse_link(value: &str) -> Result<LinkageMode> {
    match value {
        "pairs" => Ok(LinkageMode::Pairs),
        "blocked" => Ok(LinkageMode::Blocked),
        other => Err(CliError::Usage(format!(
            "unknown link `{other}` (pairs, blocked)"
        ))),
    }
}

/// The CLI spelling of a [`LinkageMode`] (`pairs` / `blocked`).
pub fn link_name(mode: LinkageMode) -> &'static str {
    match mode {
        LinkageMode::Pairs => "pairs",
        LinkageMode::Blocked => "blocked",
    }
}

/// Parse a `--mode` / `mode=` value.
pub fn parse_mode(value: &str) -> Result<SpecMode> {
    match value {
        "scalar" => Ok(SpecMode::Scalar),
        "nsga" => Ok(SpecMode::Nsga),
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (scalar, nsga)"
        ))),
    }
}

/// Parse a `--suite` / `suite=` value.
pub fn parse_suite(value: &str) -> Result<SuiteKind> {
    match value {
        "small" => Ok(SuiteKind::Small),
        "paper" => Ok(SuiteKind::Paper),
        other => Err(CliError::Usage(format!(
            "unknown suite `{other}` (small, paper)"
        ))),
    }
}

/// Parse a `--fitness` / `fitness=` value.
pub fn parse_fitness(value: &str) -> Result<ScoreAggregator> {
    match value {
        "mean" => Ok(ScoreAggregator::Mean),
        "max" => Ok(ScoreAggregator::Max),
        other => Err(CliError::Usage(format!(
            "unknown fitness `{other}` (mean, max)"
        ))),
    }
}

/// Grammar accepted by [`parse_method`], one line per method.
pub const METHOD_GRAMMAR: &str = "\
  microagg:<k>[:uni|multi|bi][:median|mode]   categorical microaggregation
  bottomcode:<fraction>                       bottom coding
  topcode:<fraction>                          top coding
  recode:<level>                              global recoding (uniform level)
  rankswap:<p>                                rank swapping, window p% of n
  pram:<theta>[:unif|prop|inv]                PRAM, retention probability theta
  suppress:<k>                                local suppression of classes < k
  randomswap:<fraction>                       uncontrolled random swapping";

/// Parse a method spec like `pram:0.2:inv` into a boxed method.
///
/// # Errors
/// [`CliError::Usage`] with the offending token and the grammar.
pub fn parse_method(spec: &str) -> Result<Box<dyn ProtectionMethod>> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let params: Vec<&str> = parts.collect();
    let bad = |msg: String| CliError::Usage(format!("{msg}\naccepted methods:\n{METHOD_GRAMMAR}"));

    let one_param = |what: &str| -> Result<&str> {
        match params.as_slice() {
            [p] => Ok(*p),
            _ => Err(bad(format!("{name} needs exactly one parameter ({what})"))),
        }
    };

    match name {
        "microagg" => {
            if params.is_empty() || params.len() > 3 {
                return Err(bad("microagg:<k>[:grouping][:aggregate]".into()));
            }
            let k: usize = params[0]
                .parse()
                .map_err(|_| bad(format!("microagg: bad k `{}`", params[0])))?;
            let grouping = match params.get(1).copied() {
                None | Some("uni") => Grouping::Univariate,
                Some("multi") => Grouping::Multivariate,
                Some("bi") => Grouping::Bivariate,
                Some(other) => return Err(bad(format!("microagg: bad grouping `{other}`"))),
            };
            let aggregate = match params.get(2).copied() {
                None | Some("median") => Aggregate::Median,
                Some("mode") => Aggregate::Mode,
                Some(other) => return Err(bad(format!("microagg: bad aggregate `{other}`"))),
            };
            Ok(Box::new(Microaggregation::new(
                k,
                MicroVariant {
                    grouping,
                    aggregate,
                },
            )))
        }
        "bottomcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("bottomcode: bad fraction".into()))?;
            Ok(Box::new(BottomCoding { fraction }))
        }
        "topcode" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("topcode: bad fraction".into()))?;
            Ok(Box::new(TopCoding { fraction }))
        }
        "recode" => {
            let level: usize = one_param("level")?
                .parse()
                .map_err(|_| bad("recode: bad level".into()))?;
            Ok(Box::new(GlobalRecoding::uniform(level)))
        }
        "rankswap" => {
            let p: usize = one_param("p")?
                .parse()
                .map_err(|_| bad("rankswap: bad p".into()))?;
            Ok(Box::new(RankSwapping::new(p)))
        }
        "pram" => {
            if params.is_empty() || params.len() > 2 {
                return Err(bad("pram:<theta>[:mode]".into()));
            }
            let theta: f64 = params[0]
                .parse()
                .map_err(|_| bad(format!("pram: bad theta `{}`", params[0])))?;
            let mode = match params.get(1).copied() {
                None | Some("unif") => PramMode::Uniform,
                Some("prop") => PramMode::Proportional,
                Some("inv") => PramMode::Invariant,
                Some(other) => return Err(bad(format!("pram: bad mode `{other}`"))),
            };
            Ok(Box::new(Pram::new(theta, mode)))
        }
        "suppress" => {
            let min_class_size: usize = one_param("k")?
                .parse()
                .map_err(|_| bad("suppress: bad k".into()))?;
            Ok(Box::new(LocalSuppression { min_class_size }))
        }
        "randomswap" => {
            let fraction: f64 = one_param("fraction")?
                .parse()
                .map_err(|_| bad("randomswap: bad fraction".into()))?;
            Ok(Box::new(RandomSwap { fraction }))
        }
        other => Err(bad(format!("unknown method `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_method_family() {
        for (spec, expected) in [
            ("microagg:3", "microagg"),
            ("microagg:5:multi:mode", "microagg"),
            ("bottomcode:0.1", "bottom"),
            ("topcode:0.2", "top"),
            ("recode:1", "grec"),
            ("rankswap:5", "rank"),
            ("pram:0.8", "pram"),
            ("pram:0.8:inv", "pram"),
            ("suppress:3", "suppress"),
            ("randomswap:0.25", "random"),
        ] {
            let m = parse_method(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(
                m.name().to_lowercase().contains(expected),
                "{spec} -> {}",
                m.name()
            );
        }
    }

    #[test]
    fn job_spec_round_trips_through_protection_job() {
        // spec text -> JobSpec -> ProtectionJob -> JobSpec -> spec text:
        // CLI jobs and library jobs cannot drift — in either mode
        for text in [
            "dataset=adult suite=small fitness=max iters=300 seed=42",
            "dataset=flare suite=paper fitness=mean iters=250 seed=7 records=120 drop=0.05",
            "dataset=german suite=small fitness=max iters=0 seed=1 audit=true",
            "dataset=housing suite=paper fitness=max iters=10 seed=3 records=80 drop=0.1 audit=true",
            "dataset=adult suite=small mode=nsga gens=100 seed=42",
            "dataset=german suite=paper mode=nsga gens=25 seed=9 records=100 offspring=6",
            "dataset=flare suite=small mode=nsga gens=12 seed=3 xprob=0.8 audit=true",
            "dataset=adult suite=small fitness=max iters=250 seed=4 inc=all",
            "dataset=flare suite=paper fitness=mean iters=100 seed=5 inc=mut",
            "dataset=german suite=small fitness=max iters=90 seed=6 inc=xover",
            "dataset=housing suite=small mode=nsga gens=15 seed=7 inc=xover",
            "dataset=adult suite=small fitness=max iters=250 seed=8 inc=off",
            "dataset=housing suite=small mode=nsga gens=15 seed=9 inc=off",
            "dataset=adult suite=small fitness=max iters=100 seed=10 link=pairs",
            "dataset=german suite=small mode=nsga gens=15 seed=11 link=pairs",
            "dataset=flare suite=paper fitness=mean iters=50 seed=12 link=blocked",
            "dataset=adult suite=small fitness=max iters=200 seed=13 islands=4",
            "dataset=german suite=small fitness=mean iters=120 seed=14 islands=2 mig=5",
            "dataset=housing suite=small mode=nsga gens=20 seed=15 islands=3",
            "dataset=flare suite=paper mode=nsga gens=30 seed=16 islands=2 mig=4 audit=true",
            "dataset=german suite=small mode=nsga gens=12 seed=17 obj=il,dr,eps eps=1.5",
            "dataset=adult suite=small mode=nsga gens=10 seed=18 obj=il,dr,util",
            "dataset=flare suite=small mode=nsga gens=8 seed=19 obj=il,dr,eps,util eps=0.75 audit=true",
            "dataset=housing suite=small mode=nsga gens=6 seed=20 eps=2.5",
        ] {
            let spec = JobSpec::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let job = spec.to_job().unwrap_or_else(|e| panic!("{text}: {e}"));
            let back = JobSpec::from_job(&job).unwrap();
            assert_eq!(spec, back, "{text}");
            assert_eq!(spec.to_spec_string(), back.to_spec_string());
            // the canonical string re-parses to the same spec
            assert_eq!(JobSpec::parse(&spec.to_spec_string()).unwrap(), spec);
        }
    }

    #[test]
    fn cross_mode_keys_are_rejected_with_the_key_named() {
        // scalar-only keys under mode=nsga …
        for (text, key) in [
            ("dataset=adult mode=nsga fitness=max", "fitness"),
            ("dataset=adult mode=nsga iters=10", "iters"),
            ("dataset=adult mode=nsga drop=0.05", "drop"),
            // … and mode= may come after the offending key
            ("dataset=adult iters=10 mode=nsga", "iters"),
        ] {
            let err = JobSpec::parse(text).unwrap_err().to_string();
            assert!(err.contains(&format!("`{key}`")), "{text}: {err}");
            assert!(err.contains("scalar"), "{text}: {err}");
        }
        // nsga-only keys under the default scalar mode
        for (text, key) in [
            ("dataset=adult gens=10", "gens"),
            ("dataset=adult offspring=4", "offspring"),
            ("dataset=adult mode=scalar xprob=0.5", "xprob"),
            // the objective vector (even spelled canonically) and the
            // ε-PRAM member only exist under the multi-objective optimizer
            ("dataset=adult obj=il,dr", "obj"),
            ("dataset=adult obj=il,dr,eps", "obj"),
            ("dataset=adult eps=1.5", "eps"),
            ("dataset=adult eps=1.5 mode=scalar", "eps"),
        ] {
            let err = JobSpec::parse(text).unwrap_err().to_string();
            assert!(err.contains(&format!("`{key}`")), "{text}: {err}");
            assert!(err.contains("mode=nsga"), "{text}: {err}");
        }
        // inc values naming the mutation path are scalar-only, wherever
        // mode= appears in the token stream
        for text in [
            "dataset=adult mode=nsga inc=mut",
            "dataset=adult inc=all mode=nsga",
        ] {
            let err = JobSpec::parse(text).unwrap_err().to_string();
            assert!(err.contains("inc="), "{text}: {err}");
            assert!(err.contains("scalar"), "{text}: {err}");
        }
        // … while inc=xover is valid in both modes
        assert!(JobSpec::parse("dataset=adult mode=nsga inc=xover").is_ok());
        assert!(JobSpec::parse("dataset=adult inc=xover").is_ok());
    }

    #[test]
    fn incremental_defaults_are_mode_dependent_and_off_is_explicit() {
        // exact delta evaluation is the default: both operators in scalar
        // mode, the one shared knob under mode=nsga
        let scalar = JobSpec::parse("dataset=adult").unwrap();
        assert_eq!(scalar.inc, IncMode::All);
        let nsga = JobSpec::parse("dataset=adult mode=nsga").unwrap();
        assert_eq!(nsga.inc, IncMode::Crossover);
        // the default never renders; opting out does
        assert!(!scalar.to_spec_string().contains("inc="));
        assert!(!nsga.to_spec_string().contains("inc="));
        let off = JobSpec::parse("dataset=adult inc=off").unwrap();
        assert_eq!(off.inc, IncMode::Off);
        assert!(off.to_spec_string().contains("inc=off"));
        assert_eq!(JobSpec::parse(&off.to_spec_string()).unwrap(), off);
        // and the built jobs carry the right optimizer knobs
        match scalar.to_job().unwrap().optimizer() {
            OptimizerMode::Scalar(evo) => {
                assert!(evo.incremental_mutation && evo.incremental_crossover);
            }
            _ => panic!("scalar job expected"),
        }
        match nsga.to_job().unwrap().optimizer() {
            OptimizerMode::Nsga(cfg) => assert!(cfg.incremental),
            _ => panic!("nsga job expected"),
        }
        match off.to_job().unwrap().optimizer() {
            OptimizerMode::Scalar(evo) => {
                assert!(!evo.incremental_mutation && !evo.incremental_crossover);
            }
            _ => panic!("scalar job expected"),
        }
    }

    #[test]
    fn job_spec_is_order_insensitive_and_defaulted() {
        let a = JobSpec::parse("seed=9 dataset=adult").unwrap();
        let b = JobSpec::parse("dataset=adult seed=9").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.suite, cdp::pipeline::SuiteKind::Small);
        assert_eq!(a.iters, 300);
        // the objective keys participate in the order-insensitive grammar:
        // mode= may trail the keys it licenses
        let c = JobSpec::parse("eps=1.5 obj=il,dr,eps gens=5 mode=nsga dataset=adult").unwrap();
        let d = JobSpec::parse("dataset=adult mode=nsga gens=5 obj=il,dr,eps eps=1.5").unwrap();
        assert_eq!(c, d);
        assert_eq!(c.obj, vec!["eps".to_string()]);
        assert_eq!(c.eps, Some(1.5));
        // a spelled-out canonical obj= list is accepted and renders away
        let e = JobSpec::parse("dataset=adult mode=nsga gens=5 obj=il,dr").unwrap();
        assert!(e.obj.is_empty());
        assert!(!e.to_spec_string().contains("obj="));
    }

    #[test]
    fn job_spec_rejects_malformed_input() {
        for text in [
            "",                                               // dataset missing
            "dataset=iris",                                   // unknown dataset
            "dataset=adult suite=huge",                       // unknown suite
            "dataset=adult fitness=min",                      // unknown fitness
            "dataset=adult iters=many",                       // bad number
            "dataset=adult audit=yes",                        // bad bool
            "dataset=adult unknown=1",                        // unknown key
            "dataset=adult records",                          // not key=value
            "dataset=adult drop=1.5",                         // builder rejects the fraction
            "dataset=adult mode=annealing",                   // unknown mode
            "dataset=adult mode=nsga gens=x",                 // bad count
            "dataset=adult mode=nsga gens=0",                 // builder rejects 0 generations
            "dataset=adult mode=nsga xprob=2",                // builder rejects the probability
            "dataset=adult inc=fast",                         // unknown inc value
            "dataset=adult link=sorted",                      // unknown link value
            "dataset=adult islands=many",                     // bad count
            "dataset=adult islands=0",                        // builder rejects 0 islands
            "dataset=adult mig=0",                            // builder rejects 0 interval
            "dataset=adult mode=nsga obj=dr,il",              // must lead il,dr
            "dataset=adult mode=nsga obj=il",                 // canonical pair incomplete
            "dataset=adult mode=nsga obj=il,dr,warp",         // unknown objective
            "dataset=adult mode=nsga obj=il,dr,eps,eps",      // duplicate
            "dataset=adult mode=nsga obj=il,dr,eps,util,eps", // over MAX_OBJECTIVES
            "dataset=adult mode=nsga eps=fast",               // bad float
            "dataset=adult mode=nsga eps=0",                  // builder rejects zero budget
            "dataset=adult mode=nsga eps=-1.5",               // builder rejects negatives
        ] {
            let result = JobSpec::parse(text).and_then(|s| s.to_job().map(|_| ()));
            assert!(result.is_err(), "`{text}` should be rejected");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

        /// parse ∘ to_spec_string = id, and from_job ∘ to_job = id, over
        /// randomly drawn specs of *both* optimizer modes.
        #[test]
        fn job_spec_grammar_round_trips_both_modes(
            dataset_i in 0usize..4,
            records_set in proptest::prelude::any::<bool>(),
            records_n in 30usize..200,
            paper_suite in proptest::prelude::any::<bool>(),
            nsga_mode in proptest::prelude::any::<bool>(),
            mean_fitness in proptest::prelude::any::<bool>(),
            iters in 0usize..400,
            gens in 1usize..200,
            offspring in 0usize..40,
            xprob_pct in 0u8..=100,
            seed in proptest::prelude::any::<u64>(),
            drop_20th in 0u8..20,
            audit in proptest::prelude::any::<bool>(),
            inc_i in 0usize..4,
            pairs_link in proptest::prelude::any::<bool>(),
            islands in 1usize..=8,
            mig in 1usize..=50,
            obj_i in 0usize..4,
            eps_set in proptest::prelude::any::<bool>(),
            eps_20th in 1u8..=80,
        ) {
            let mut spec = JobSpec {
                dataset: [
                    DatasetKind::Adult,
                    DatasetKind::Housing,
                    DatasetKind::German,
                    DatasetKind::Flare,
                ][dataset_i],
                records: records_set.then_some(records_n),
                suite: if paper_suite { SuiteKind::Paper } else { SuiteKind::Small },
                seed,
                audit,
                link: if pairs_link { LinkageMode::Pairs } else { LinkageMode::Blocked },
                islands,
                mig,
                ..JobSpec::default()
            };
            if nsga_mode {
                spec.mode = SpecMode::Nsga;
                spec.gens = gens;
                spec.offspring = offspring;
                spec.xprob = f64::from(xprob_pct) / 100.0;
                // only the crossover path exists as an nsga inc value
                spec.inc = [IncMode::Off, IncMode::Crossover][inc_i % 2];
                // every legal extension of the canonical pair, plus the
                // ε-PRAM member knob (exact 20ths survive the float trip)
                const EXTENSIONS: [&[&str]; 4] = [&[], &["eps"], &["util"], &["eps", "util"]];
                spec.obj = EXTENSIONS[obj_i].iter().map(|k| (*k).to_string()).collect();
                spec.eps = eps_set.then(|| f64::from(eps_20th) / 20.0);
            } else {
                spec.fitness = if mean_fitness {
                    ScoreAggregator::Mean
                } else {
                    ScoreAggregator::Max
                };
                spec.iters = iters;
                spec.drop = f64::from(drop_20th) / 20.0;
                spec.inc = [IncMode::Off, IncMode::Mutation, IncMode::Crossover, IncMode::All]
                    [inc_i];
            }
            let text = spec.to_spec_string();
            let reparsed = JobSpec::parse(&text)
                .unwrap_or_else(|e| panic!("canonical `{text}` must parse: {e}"));
            proptest::prop_assert_eq!(&reparsed, &spec, "parse ∘ render: {}", text);
            let job = spec.to_job()
                .unwrap_or_else(|e| panic!("canonical `{text}` must build: {e}"));
            let back = JobSpec::from_job(&job)
                .unwrap_or_else(|e| panic!("job from `{text}` must serialize: {e}"));
            proptest::prop_assert_eq!(&back, &spec, "from_job ∘ to_job: {}", text);
        }
    }

    #[test]
    fn non_cli_expressible_jobs_are_reported() {
        let ds = cdp_dataset::generators::DatasetKind::Adult
            .generate(&cdp_dataset::generators::GeneratorConfig::seeded(1).with_records(30));
        let job = ProtectionJob::builder()
            .table(ds.table, ds.protected)
            .build()
            .unwrap();
        assert!(JobSpec::from_job(&job).is_err());

        let job = ProtectionJob::builder()
            .dataset(cdp_dataset::generators::DatasetKind::Adult)
            .methods(vec![Box::new(Pram::new(0.8, PramMode::Uniform))])
            .build()
            .unwrap();
        assert!(JobSpec::from_job(&job).is_err());

        // knobs outside the grammar must be reported, not silently dropped
        let adult = cdp_dataset::generators::DatasetKind::Adult;
        for (what, job) in [
            (
                "generator seed override",
                ProtectionJob::builder()
                    .dataset(adult)
                    .generator_seed(5)
                    .seed(42)
                    .build()
                    .unwrap(),
            ),
            (
                "sensitive audit attribute",
                ProtectionJob::builder()
                    .dataset(adult)
                    .audit_sensitive(["INCOME"])
                    .build()
                    .unwrap(),
            ),
            (
                "mutation rate",
                ProtectionJob::builder()
                    .dataset(adult)
                    .mutation_rate(0.9)
                    .build()
                    .unwrap(),
            ),
            (
                "metric config",
                ProtectionJob::builder()
                    .dataset(adult)
                    .metrics(cdp_metrics::MetricConfig {
                        prl_em_iters: 3,
                        ..cdp_metrics::MetricConfig::default()
                    })
                    .build()
                    .unwrap(),
            ),
        ] {
            let err = JobSpec::from_job(&job).unwrap_err();
            assert!(err.to_string().contains("not expressible"), "{what}: {err}");
        }
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        for spec in [
            "nope:1",
            "microagg",
            "microagg:x",
            "microagg:3:diag",
            "microagg:3:uni:avg",
            "pram",
            "pram:0.5:weird",
            "rankswap:0.5:extra",
            "suppress:abc",
        ] {
            match parse_method(spec) {
                Ok(m) => panic!("{spec} unexpectedly parsed as {}", m.name()),
                Err(err) => assert!(
                    err.to_string().contains("accepted methods"),
                    "{spec} should fail with grammar help"
                ),
            }
        }
    }
}
