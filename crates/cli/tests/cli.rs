//! End-to-end tests driving the compiled `cdp` binary: the full
//! generate → protect → evaluate → analyze → optimize workflow an agency
//! analyst would run.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cdp"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cdp_cli_e2e").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(args: &[&str]) -> Output {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "cdp {:?} failed:\nstdout: {}\nstderr: {}",
        args,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_lists_commands() {
    let out = run_ok(&["help"]);
    let text = stdout_of(&out);
    for cmd in ["generate", "protect", "evaluate", "analyze", "optimize"] {
        assert!(text.contains(cmd), "help mentions {cmd}");
    }
    let out = run_ok(&["help", "protect"]);
    assert!(stdout_of(&out).contains("pram:<theta>"));
}

#[test]
fn no_command_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unknown_command_is_usage_error() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_workflow_generate_protect_evaluate_analyze() {
    let dir = workdir("workflow");
    let original = dir.join("original.csv");
    let masked = dir.join("masked.csv");

    run_ok(&[
        "generate",
        "--dataset",
        "german",
        "--seed",
        "11",
        "--records",
        "80",
        "--out",
        original.to_str().unwrap(),
    ]);
    assert_eq!(
        std::fs::read_to_string(&original).unwrap().lines().count(),
        81
    );

    let protect_out = run_ok(&[
        "protect",
        "--input",
        original.to_str().unwrap(),
        "--method",
        "pram:0.6",
        "--seed",
        "11",
        "--out",
        masked.to_str().unwrap(),
    ]);
    assert!(stdout_of(&protect_out).contains("cells changed"));

    let eval_out = run_ok(&[
        "evaluate",
        "--original",
        original.to_str().unwrap(),
        "--masked",
        masked.to_str().unwrap(),
    ]);
    let eval_text = stdout_of(&eval_out);
    for token in [
        "CTBIL", "DBIL", "EBIL", "ID", "DBRL", "PRL", "RSRL", "Eq.1", "Eq.2",
    ] {
        assert!(eval_text.contains(token), "evaluate prints {token}");
    }

    let analyze_out = run_ok(&[
        "analyze",
        "--masked",
        masked.to_str().unwrap(),
        "--original",
        original.to_str().unwrap(),
        "--suggest-k",
        "2",
    ]);
    let analyze_text = stdout_of(&analyze_out);
    assert!(analyze_text.contains("k-anonymity"));
    assert!(analyze_text.contains("prosecutor risk"));
    assert!(analyze_text.contains("journalist risk"));
    assert!(analyze_text.contains("suggestion:"));
}

#[test]
fn evaluate_identity_reports_zero_il() {
    let dir = workdir("identity");
    let original = dir.join("original.csv");
    run_ok(&[
        "generate",
        "--dataset",
        "flare",
        "--records",
        "60",
        "--out",
        original.to_str().unwrap(),
    ]);
    let out = run_ok(&[
        "evaluate",
        "--original",
        original.to_str().unwrap(),
        "--masked",
        original.to_str().unwrap(),
    ]);
    let text = stdout_of(&out);
    let il_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("IL"))
        .expect("IL line present");
    assert!(
        il_line.contains("0.00"),
        "identity masking must have zero IL: {il_line}"
    );
}

#[test]
fn optimize_scalar_produces_runnable_artifacts() {
    let dir = workdir("optimize");
    run_ok(&[
        "optimize",
        "--dataset",
        "adult",
        "--records",
        "60",
        "--iters",
        "15",
        "--seed",
        "5",
        "--out",
        dir.to_str().unwrap(),
    ]);
    let evolution = std::fs::read_to_string(dir.join("evolution.csv")).unwrap();
    assert!(evolution.starts_with("iteration,min,mean,max"));
    // min score series never increases (elitism)
    let mins: Vec<f64> = evolution
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    assert!(mins.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    // best.csv parses back as CSV with the original header
    let best = std::fs::read_to_string(dir.join("best.csv")).unwrap();
    assert_eq!(best.lines().count(), 61);
}

#[test]
fn optimize_user_csv_nsga_mode() {
    let dir = workdir("nsga");
    let input = dir.join("input.csv");
    let mut csv = String::from("REGION,JOB,AGE\n");
    for i in 0..80 {
        csv.push_str(
            [
                "north,clerk,30\n",
                "south,nurse,40\n",
                "east,clerk,30\n",
                "west,teacher,50\n",
            ][i % 4],
        );
    }
    std::fs::write(&input, csv).unwrap();
    run_ok(&[
        "optimize",
        "--input",
        input.to_str().unwrap(),
        "--attrs",
        "REGION,JOB",
        "--methods",
        "pram:0.7,randomswap:0.4",
        "--copies",
        "4",
        "--mode",
        "nsga",
        "--iters",
        "6",
        "--seed",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    let front = std::fs::read_to_string(dir.join("front.csv")).unwrap();
    assert!(front.contains("archive,"));
    let hv = std::fs::read_to_string(dir.join("hypervolume.csv")).unwrap();
    let values: Vec<f64> = hv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
        .collect();
    assert_eq!(values.len(), 7);
    assert!(values.iter().all(|v| *v >= 0.0));
}

#[test]
fn hierarchy_export_edit_protect_workflow() {
    let dir = workdir("hierarchy");
    let input = dir.join("data.csv");
    let mut csv = String::from("CITY,JOB\n");
    for i in 0..40 {
        csv.push_str(["a,x\n", "b,y\n", "c,x\n", "d,z\n"][i % 4]);
    }
    std::fs::write(&input, csv).unwrap();

    // 1. export auto hierarchies
    let hier_dir = dir.join("vgh");
    run_ok(&[
        "hierarchy",
        "--input",
        input.to_str().unwrap(),
        "--out",
        hier_dir.to_str().unwrap(),
    ]);
    assert!(hier_dir.join("CITY.csv").exists());
    assert!(hier_dir.join("JOB.csv").exists());

    // 2. hand-curate CITY: {a,b} and {c,d} at level 1
    std::fs::write(hier_dir.join("CITY.csv"), "a,a\nb,a\nc,c\nd,c\n").unwrap();

    // 3. recode through the curated hierarchy
    let masked = dir.join("masked.csv");
    run_ok(&[
        "protect",
        "--input",
        input.to_str().unwrap(),
        "--method",
        "recode:1",
        "--hierarchy-dir",
        hier_dir.to_str().unwrap(),
        "--attrs",
        "CITY",
        "--out",
        masked.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&masked).unwrap();
    for line in text.lines().skip(1) {
        let city = line.split(',').next().unwrap();
        assert!(
            ["a", "c"].contains(&city),
            "curated level 1 keeps only group representatives: got {city}"
        );
    }

    // 4. the audit should now see bigger classes on CITY
    let analyze_out = run_ok(&[
        "analyze",
        "--masked",
        masked.to_str().unwrap(),
        "--attrs",
        "CITY",
    ]);
    assert!(stdout_of(&analyze_out).contains("k-anonymity"));
}

#[test]
fn protect_bad_method_fails_with_grammar() {
    let dir = workdir("badmethod");
    let input = dir.join("in.csv");
    std::fs::write(&input, "A\nx\ny\n").unwrap();
    let out = bin()
        .args([
            "protect",
            "--input",
            input.to_str().unwrap(),
            "--method",
            "quantum:9",
            "--out",
            dir.join("out.csv").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("accepted methods"));
}

#[test]
fn evaluate_misaligned_files_fails_cleanly() {
    let dir = workdir("misaligned");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    std::fs::write(&a, "X\np\nq\n").unwrap();
    std::fs::write(&b, "X\np\n").unwrap();
    let out = bin()
        .args([
            "evaluate",
            "--original",
            a.to_str().unwrap(),
            "--masked",
            b.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("aligned"));
}
