//! End-to-end: the real `cdp` binary serving real TCP clients.
//!
//! Proves the subsystem's two contracts at the process boundary:
//!
//! 1. **amortization** — two concurrent clients submitting jobs against
//!    the same original trigger exactly one evaluator preparation
//!    (`SessionStats.preparations == 1`, `hits >= 1`);
//! 2. **determinism** — a wire-submitted job's summary is bit-identical
//!    to the same spec run through [`Session::run`] in-process.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};

use cdp::pipeline::Session;
use cdp_cli::commands::serve::request;
use cdp_cli::protocol::{DoneSummary, Request, Response};
use cdp_cli::spec::JobSpec;

/// A `cdp serve` child on an ephemeral loopback port, killed on drop if
/// a test fails before its clean `SHUTDOWN`.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
    // held open so the server's shutdown headline has somewhere to go
    stdout: BufReader<ChildStdout>,
}

impl ServerProcess {
    fn spawn() -> ServerProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cdp"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("cdp binary spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("server banner");
        // "listening on 127.0.0.1:<port> (2 workers)"
        let addr = banner
            .strip_prefix("listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|addr| addr.parse().ok())
            .unwrap_or_else(|| panic!("unexpected banner `{banner}`"));
        ServerProcess {
            child,
            addr,
            stdout,
        }
    }

    /// `SHUTDOWN`, then assert the process exits cleanly after printing
    /// its cache headline.
    fn shutdown(mut self) {
        let replies = request(self.addr, &Request::Shutdown).expect("shutdown exchange");
        assert!(
            matches!(replies.as_slice(), [Response::Ok(_)]),
            "shutdown ack: {replies:?}"
        );
        let status = self.child.wait().expect("server exits");
        assert!(status.success(), "clean exit, got {status}");
        let mut headline = String::new();
        self.stdout.read_line(&mut headline).expect("headline");
        assert!(
            headline.starts_with("server stopped: cache hit rate"),
            "stats headline on shutdown, got `{headline}`"
        );
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

fn done_of(replies: &[Response]) -> &DoneSummary {
    match replies.last() {
        Some(Response::Done(done)) => done,
        other => panic!("job must end in DONE, got {other:?}"),
    }
}

#[test]
fn concurrent_clients_share_one_preparation_and_match_in_process() {
    let server = ServerProcess::spawn();
    let spec = JobSpec::parse("dataset=adult records=100 iters=4 seed=11").unwrap();

    // two concurrent clients, same original, same spec
    let (a, b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| request(server.addr, &Request::Job(spec.clone())).unwrap());
        let hb = scope.spawn(|| request(server.addr, &Request::Job(spec.clone())).unwrap());
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let (done_a, done_b) = (done_of(&a), done_of(&b));

    // exactly one preparation was paid between the two of them
    let stats = match request(server.addr, &Request::Stats).unwrap().as_slice() {
        [Response::Stats(stats)] => stats.clone(),
        other => panic!("unexpected STATS reply: {other:?}"),
    };
    assert_eq!(stats.preparations, 1, "one hot original, one preparation");
    assert!(stats.hits >= 1, "the racing client must hit: {stats:?}");
    assert_eq!(stats.hits + stats.misses, 2, "two requests seen");
    assert_eq!(stats.cached, 1);
    assert!(
        u8::from(done_a.cache_hit) + u8::from(done_b.cache_hit) == 1,
        "exactly one client paid the miss: {done_a:?} vs {done_b:?}"
    );

    // wire summaries are bit-identical to the in-process run of the spec
    let report = Session::new().run(&spec.to_job().unwrap()).unwrap();
    let reference = DoneSummary::from_report(&report);
    for done in [done_a, done_b] {
        let mut normalized = done.clone();
        normalized.cache_hit = reference.cache_hit;
        assert_eq!(normalized, reference, "wire vs in-process");
    }

    server.shutdown();
}

#[test]
fn event_stream_arrives_in_stage_order_with_cache_stats() {
    let server = ServerProcess::spawn();
    let spec = JobSpec::parse("dataset=german records=80 iters=5 seed=3").unwrap();
    let replies = request(server.addr, &Request::Job(spec)).unwrap();

    let mut saw_cache_stats = false;
    let mut first_kinds = Vec::new();
    for reply in &replies {
        match reply {
            Response::Event(event) => {
                if let cdp::pipeline::JobEvent::CacheStats(stats) = event {
                    saw_cache_stats = true;
                    assert_eq!(stats.misses, 1, "this job's own request is counted");
                }
                if first_kinds.len() < 4 {
                    first_kinds.push(cdp_cli::protocol::encode_event(event));
                }
            }
            Response::Done(done) => assert!(!done.cache_hit, "fresh server, fresh original"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(saw_cache_stats, "CacheStats must stream per job");
    let kinds: Vec<&str> = first_kinds
        .iter()
        .map(|s| s.split(' ').next().unwrap())
        .collect();
    assert_eq!(kinds, ["source", "evaluator", "cache", "population"]);

    server.shutdown();
}

#[test]
fn wire_errors_are_one_line_and_do_not_kill_the_server() {
    let server = ServerProcess::spawn();

    let replies = request(server.addr, &Request::Stats).unwrap();
    match replies.as_slice() {
        [Response::Stats(stats)] => assert_eq!(stats.preparations, 0, "fresh server"),
        other => panic!("unexpected STATS reply: {other:?}"),
    }

    // a malformed spec draws ERR, then the server keeps serving
    let spec = JobSpec::parse("dataset=flare records=60 iters=0 seed=2").unwrap();
    let bad = Request::Job(spec.clone());
    // corrupt the line at the wire level: send a raw unknown verb instead
    {
        use std::io::Write;
        let stream = std::net::TcpStream::connect(server.addr).unwrap();
        let mut writer = std::io::BufWriter::new(stream.try_clone().unwrap());
        writeln!(writer, "OPTIMIZE HARDER").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).unwrap();
        assert!(
            matches!(Response::parse(&reply).unwrap(), Response::Err(_)),
            "unknown verb must draw ERR: {reply}"
        );
    }
    let replies = request(server.addr, &bad).unwrap();
    assert!(
        matches!(replies.last(), Some(Response::Done(_))),
        "the server survives bad lines: {replies:?}"
    );

    server.shutdown();
}
