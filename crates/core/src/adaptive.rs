//! Adaptive operator scheduling (extension).
//!
//! The paper fixes both operator rates at 0.5 "heuristically". A standard
//! refinement is *adaptive pursuit*: track each operator's recent success
//! (offspring that survived their duel) and shift probability mass toward
//! the operator that is currently producing improvements, within bounds
//! that keep both operators alive. The scheduler is deterministic given
//! the acceptance sequence, so seeded runs stay reproducible.

use crate::operators::OperatorKind;

/// How the mutation-vs-crossover probability evolves during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatorSchedule {
    /// The paper's behaviour: a constant rate (from `EvoConfig::mutation_rate`).
    Fixed,
    /// Adaptive pursuit: every `window` iterations, set the mutation rate
    /// to its recent success share, clamped to `[floor, ceil]`.
    Adaptive {
        /// Iterations per adaptation step.
        window: usize,
        /// Lower clamp for the mutation rate.
        floor: f64,
        /// Upper clamp for the mutation rate.
        ceil: f64,
    },
}

impl OperatorSchedule {
    /// A reasonable adaptive default (window 50, rate within `[0.2, 0.8]`).
    pub fn adaptive() -> Self {
        OperatorSchedule::Adaptive {
            window: 50,
            floor: 0.2,
            ceil: 0.8,
        }
    }
}

/// Sliding-window success tracker feeding the adaptive schedule.
#[derive(Debug, Clone)]
pub struct OperatorStats {
    schedule: OperatorSchedule,
    rate: f64,
    in_window: usize,
    attempts: [u32; 2],
    successes: [u32; 2],
}

impl OperatorStats {
    /// Start tracking from the configured base rate.
    pub fn new(schedule: OperatorSchedule, base_rate: f64) -> Self {
        OperatorStats {
            schedule,
            rate: base_rate,
            in_window: 0,
            attempts: [0; 2],
            successes: [0; 2],
        }
    }

    /// The current mutation rate.
    pub fn mutation_rate(&self) -> f64 {
        self.rate
    }

    /// Record one generation's outcome and adapt when the window closes.
    pub fn record(&mut self, op: OperatorKind, accepted: bool) {
        let OperatorSchedule::Adaptive {
            window,
            floor,
            ceil,
        } = self.schedule
        else {
            return;
        };
        let idx = match op {
            OperatorKind::Mutation => 0,
            OperatorKind::Crossover => 1,
        };
        self.attempts[idx] += 1;
        if accepted {
            self.successes[idx] += 1;
        }
        self.in_window += 1;
        if self.in_window >= window.max(1) {
            let s_mut = if self.attempts[0] > 0 {
                f64::from(self.successes[0]) / f64::from(self.attempts[0])
            } else {
                0.0
            };
            let s_x = if self.attempts[1] > 0 {
                f64::from(self.successes[1]) / f64::from(self.attempts[1])
            } else {
                0.0
            };
            if s_mut + s_x > 0.0 {
                self.rate = (s_mut / (s_mut + s_x)).clamp(floor, ceil);
            }
            self.in_window = 0;
            self.attempts = [0; 2];
            self.successes = [0; 2];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_never_moves() {
        let mut s = OperatorStats::new(OperatorSchedule::Fixed, 0.5);
        for i in 0..500 {
            s.record(
                if i % 2 == 0 {
                    OperatorKind::Mutation
                } else {
                    OperatorKind::Crossover
                },
                i % 3 == 0,
            );
        }
        assert_eq!(s.mutation_rate(), 0.5);
    }

    #[test]
    fn adaptive_moves_toward_the_successful_operator() {
        let mut s = OperatorStats::new(OperatorSchedule::adaptive(), 0.5);
        // mutation always succeeds, crossover never
        for i in 0..100 {
            let op = if i % 2 == 0 {
                OperatorKind::Mutation
            } else {
                OperatorKind::Crossover
            };
            s.record(op, op == OperatorKind::Mutation);
        }
        assert!(s.mutation_rate() > 0.5);
        assert!(s.mutation_rate() <= 0.8, "ceil respected");
    }

    #[test]
    fn adaptive_respects_floor() {
        let mut s = OperatorStats::new(OperatorSchedule::adaptive(), 0.5);
        for i in 0..100 {
            let op = if i % 2 == 0 {
                OperatorKind::Mutation
            } else {
                OperatorKind::Crossover
            };
            s.record(op, op == OperatorKind::Crossover);
        }
        assert!((0.2..0.5).contains(&s.mutation_rate()));
    }

    #[test]
    fn no_successes_keeps_rate() {
        let mut s = OperatorStats::new(OperatorSchedule::adaptive(), 0.6);
        for _ in 0..100 {
            s.record(OperatorKind::Mutation, false);
        }
        assert_eq!(s.mutation_rate(), 0.6);
    }
}
