//! Algorithm 1 of the paper: the evolutionary loop.

use cdp_dataset::SubTable;
use cdp_metrics::{EvalState, Evaluator, Patch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::adaptive::OperatorStats;
use crate::archive::ParetoArchive;
use crate::config::EvoConfig;
use crate::individual::Individual;
use crate::operators::{crossover, mutate, OperatorKind};
use crate::parallel::{evaluate_all, evaluate_tasks, EvalTask, MIN_PARALLEL_EVAL_ROWS};
use crate::population::Population;
use crate::replacement::offspring_wins;
use crate::selection::select_leader;
use crate::telemetry::{EvalCounts, ScatterPoint, Trace};
use crate::{EvoError, Result};

/// Mutable per-run evaluation bookkeeping threaded through the generation
/// steps: the full/incremental call counters, the reusable scratch state of
/// the mutation path, and the cross-check counter.
struct StepCtx {
    evals: EvalCounts,
    scratch: Option<EvalState>,
    accepted_incremental: usize,
}

impl StepCtx {
    fn new() -> Self {
        StepCtx {
            evals: EvalCounts::default(),
            scratch: None,
            accepted_incremental: 0,
        }
    }

    /// Whether the verification policy demands a full-assessment
    /// cross-check now ([`EvoConfig::incremental_refresh`]).
    fn verify_due(&self, cfg: &EvoConfig) -> bool {
        cfg.incremental_refresh > 0 && self.accepted_incremental >= cfg.incremental_refresh
    }

    /// A cross-check ran: restart the interval.
    fn note_verified(&mut self) {
        self.accepted_incremental = 0;
    }
}

/// A configured evolutionary run.
///
/// Construction is a two-step builder: [`Evolution::new`] binds the fitness
/// evaluator and configuration, [`Evolution::with_named_population`] loads
/// and evaluates the initial protections, [`Evolution::run`] executes
/// Algorithm 1.
pub struct Evolution {
    evaluator: Evaluator,
    config: EvoConfig,
    population: Option<Population>,
    initial_evaluations: usize,
}

impl Evolution {
    /// Bind evaluator and configuration.
    pub fn new(evaluator: Evaluator, config: EvoConfig) -> Self {
        Evolution {
            evaluator,
            config,
            population: None,
            initial_evaluations: 0,
        }
    }

    /// Load the initial population of named protections; every individual
    /// is evaluated here (in parallel when configured).
    ///
    /// # Errors
    /// [`EvoError::EmptyPopulation`] or [`EvoError::IncompatibleIndividual`].
    pub fn with_named_population<I>(mut self, items: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<(String, SubTable)>,
    {
        self.config.validate()?;
        let items: Vec<(String, SubTable)> = items.into_iter().map(Into::into).collect();
        if items.is_empty() {
            return Err(EvoError::EmptyPopulation);
        }
        for (name, data) in &items {
            self.evaluator
                .prepared()
                .check_compatible(data)
                .map_err(|source| EvoError::IncompatibleIndividual {
                    name: name.clone(),
                    source,
                })?;
        }
        let states = evaluate_all(&self.evaluator, &items, self.config.parallel_init);
        self.initial_evaluations = items.len();
        let members = items
            .into_iter()
            .zip(states)
            .map(|((name, data), state)| Individual::new(name, data, state, self.config.aggregator))
            .collect();
        self.population = Some(Population::new(members));
        Ok(self)
    }

    /// Drop the best fraction of the (already loaded) initial population —
    /// the §3.3 robustness experiment.
    ///
    /// # Errors
    /// [`EvoError::EmptyPopulation`] when called before loading.
    pub fn drop_best_fraction(mut self, fraction: f64) -> Result<Self> {
        let pop = self.population.as_mut().ok_or(EvoError::EmptyPopulation)?;
        pop.drop_best_fraction(fraction);
        Ok(self)
    }

    /// Size of the loaded population (0 before loading).
    pub(crate) fn population_len(&self) -> usize {
        self.population.as_ref().map_or(0, Population::len)
    }

    /// Disassemble for the island scheduler: evaluator, config, the
    /// loaded population (if any), and the initial-evaluation count.
    pub(crate) fn into_parts(self) -> (Evaluator, EvoConfig, Option<Population>, usize) {
        (
            self.evaluator,
            self.config,
            self.population,
            self.initial_evaluations,
        )
    }

    /// Bind an already-evaluated population. The island scheduler
    /// evaluates the full initial population once, partitions the
    /// resulting members, and hands each island its share through here;
    /// `initial_evaluations` is the number of full assessments attributed
    /// to these members in the outcome's [`EvalCounts`].
    pub(crate) fn with_population(mut self, pop: Population, initial_evaluations: usize) -> Self {
        self.population = Some(pop);
        self.initial_evaluations = initial_evaluations;
        self
    }

    /// Run Algorithm 1 to completion.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run(self) -> EvolutionOutcome {
        self.run_with(|_| {})
    }

    /// Run with a per-iteration observer (receives the trace entry just
    /// recorded; useful for progress reporting in long experiments).
    pub fn run_with<F>(self, mut observer: F) -> EvolutionOutcome
    where
        F: FnMut(&crate::telemetry::GenerationStats),
    {
        let mut runner = EvolutionRunner::start(self);
        while runner.step(&mut observer) {}
        runner.finish()
    }

    /// One mutation generation: proportional selection, single-cell
    /// mutation, parent/offspring elitism. Returns whether the offspring
    /// survived.
    ///
    /// With [`EvoConfig::incremental_mutation`] the child is scored by
    /// patching the parent's cached state into the run's scratch buffer —
    /// rejected offspring pay no state-sized allocations (only the rank
    /// rebuild's O(c) scratch inside the evaluator), accepted ones pay one
    /// state clone. The patched assessment is bit-identical to a full one;
    /// [`EvoConfig::incremental_refresh`] optionally asserts exactly that,
    /// every K accepted offspring.
    fn mutation_step(
        &self,
        pop: &mut Population,
        archive: &mut ParetoArchive,
        rng: &mut StdRng,
        ctx: &mut StepCtx,
    ) -> bool {
        let i = self.config.selection.select(pop.scores(), rng);
        let parent = pop.get(i);
        let mut child_data = parent.data.clone();
        let Some(mu) = mutate(&mut child_data, rng) else {
            return false;
        };
        let agg = self.config.aggregator;
        if self.config.incremental_mutation {
            let patch = Patch::cell(mu.row, mu.attr, mu.old);
            let parent_score = parent.score();
            let name = parent.name.clone();
            let assessment = match ctx.scratch.as_mut() {
                Some(s) => {
                    self.evaluator
                        .reassess_into(parent.state(), &child_data, &patch, s);
                    s.assessment
                }
                None => {
                    ctx.scratch =
                        Some(self.evaluator.reassess(parent.state(), &child_data, &patch));
                    ctx.scratch.as_ref().expect("just set").assessment
                }
            };
            ctx.evals.incremental += 1;
            if ctx.verify_due(&self.config) {
                let full = self.evaluator.assess(&child_data);
                ctx.evals.full += 1;
                assert_eq!(
                    assessment, full.assessment,
                    "incremental mutation state diverged from the full assessment"
                );
                ctx.note_verified();
            }
            let score = assessment.score(agg);
            archive.offer(ScatterPoint::from_pair(
                name.clone(),
                assessment.il(),
                assessment.dr(),
                score,
            ));
            if offspring_wins(parent_score, score) {
                ctx.accepted_incremental += 1;
                let state = ctx.scratch.as_ref().expect("scratch just filled");
                let child = Individual::from_scratch(name, child_data, state, agg);
                pop.replace(i, child);
                true
            } else {
                false
            }
        } else {
            let child_state = self.evaluator.assess(&child_data);
            ctx.evals.full += 1;
            let child = Individual::new(parent.name.clone(), child_data, child_state, agg);
            archive.offer(ScatterPoint::of(&child));
            if offspring_wins(parent.score(), child.score()) {
                pop.replace(i, child);
                true
            } else {
                false
            }
        }
    }

    /// One crossover generation: leader + proportional selection, 2-point
    /// crossover, Deterministic Crowding duels. Returns whether any
    /// offspring survived.
    ///
    /// The two offspring evaluate concurrently on scoped threads when
    /// [`EvoConfig::parallel_offspring`] is on and the file is large enough
    /// to amortize the spawns; with [`EvoConfig::incremental_crossover`]
    /// each child is re-assessed from its frame parent's cached state via a
    /// flat-range [`Patch`] instead of a full O(n²) pass — bit-identical to
    /// the full pass ([`EvoConfig::incremental_refresh`] optionally asserts
    /// it). Unlike the mutation path, each child pays one O(n) state clone
    /// inside [`cdp_metrics::Evaluator::reassess`]: both children may enter
    /// the population, so owned states are required either way, and the
    /// clone is <1% of the segment-relink work it rides along with
    /// (measured in `BENCH_evaluator.json`).
    fn crossover_step(
        &self,
        pop: &mut Population,
        archive: &mut ParetoArchive,
        rng: &mut StdRng,
        ctx: &mut StepCtx,
    ) -> bool {
        let nb = self.config.leader_group(pop.len());
        let i1 = select_leader(pop.len(), nb, rng);
        let i2 = self.config.selection.select(pop.scores(), rng);

        let (z1_data, z2_data, (s, r)) = crossover(&pop.get(i1).data, &pop.get(i2).data, rng);
        let parallel = self.config.parallel_offspring && z1_data.n_rows() >= MIN_PARALLEL_EVAL_ROWS;
        let incremental = self.config.incremental_crossover;
        let (z1_state, z2_state) = if incremental {
            // each child shares its frame parent's file outside [s, r]:
            // patch the parent's cached state with the swapped-in segment
            let old1: Vec<_> = (s..=r).map(|p| pop.get(i1).data.get_flat(p)).collect();
            let old2: Vec<_> = (s..=r).map(|p| pop.get(i2).data.get_flat(p)).collect();
            let patch1 = Patch::flat_range(s, r, old1);
            let patch2 = Patch::flat_range(s, r, old2);
            let tasks = [
                EvalTask::Patch {
                    prev: pop.get(i1).state(),
                    masked: &z1_data,
                    patch: &patch1,
                },
                EvalTask::Patch {
                    prev: pop.get(i2).state(),
                    masked: &z2_data,
                    patch: &patch2,
                },
            ];
            let mut states = evaluate_tasks(&self.evaluator, &tasks, parallel);
            ctx.evals.incremental += 2;
            if ctx.verify_due(&self.config) {
                let full_tasks = [EvalTask::Full(&z1_data), EvalTask::Full(&z2_data)];
                let fulls = evaluate_tasks(&self.evaluator, &full_tasks, parallel);
                ctx.evals.full += 2;
                assert_eq!(
                    states[0].assessment, fulls[0].assessment,
                    "incremental crossover state diverged from the full assessment"
                );
                assert_eq!(
                    states[1].assessment, fulls[1].assessment,
                    "incremental crossover state diverged from the full assessment"
                );
                ctx.note_verified();
            }
            let z2_state = states.pop().expect("two states");
            (states.pop().expect("two states"), z2_state)
        } else {
            let tasks = [EvalTask::Full(&z1_data), EvalTask::Full(&z2_data)];
            let mut states = evaluate_tasks(&self.evaluator, &tasks, parallel);
            ctx.evals.full += 2;
            let z2_state = states.pop().expect("two states");
            (states.pop().expect("two states"), z2_state)
        };
        let z1 = Individual::new(
            pop.get(i1).name.clone(),
            z1_data,
            z1_state,
            self.config.aggregator,
        );
        let z2 = Individual::new(
            pop.get(i2).name.clone(),
            z2_data,
            z2_state,
            self.config.aggregator,
        );

        archive.offer(ScatterPoint::of(&z1));
        archive.offer(ScatterPoint::of(&z2));

        // Deterministic Crowding: pair offspring with parents, then elitist
        // duels within each pair.
        let straight = self.config.replacement.pair_straight(
            &pop.get(i1).data,
            &pop.get(i2).data,
            &z1.data,
            &z2.data,
        );
        let (c1, c2) = if straight { (z1, z2) } else { (z2, z1) };

        if i1 == i2 {
            // degenerate draw: both offspring duel the same parent; the
            // better offspring gets the single slot if it wins
            let best_child = if c1.score() <= c2.score() { c1 } else { c2 };
            if offspring_wins(pop.get(i1).score(), best_child.score()) {
                if incremental {
                    ctx.accepted_incremental += 1;
                }
                pop.replace(i1, best_child);
                return true;
            }
            return false;
        }

        let win1 = offspring_wins(pop.get(i1).score(), c1.score());
        let win2 = offspring_wins(pop.get(i2).score(), c2.score());
        if incremental {
            ctx.accepted_incremental += usize::from(win1) + usize::from(win2);
        }
        if win1 {
            pop.replace_unsorted(i1, c1);
        }
        if win2 {
            pop.replace_unsorted(i2, c2);
        }
        if win1 || win2 {
            pop.resort();
            true
        } else {
            false
        }
    }
}

/// The resumable state of a running Algorithm 1 loop: everything the
/// one-shot [`Evolution::run_with`] used to keep in local variables,
/// factored out so the island scheduler ([`crate::islands`]) can advance a
/// run in bounded chunks, exchange members at migration barriers, and
/// finish it later. `start` + `while step()` + `finish` replays the exact
/// RNG stream of the historical one-shot loop — the engine's bit-exactness
/// tests pin this.
pub(crate) struct EvolutionRunner {
    evolution: Evolution,
    pop: Population,
    rng: StdRng,
    trace: Trace,
    initial: Vec<ScatterPoint>,
    archive: ParetoArchive,
    best: f64,
    since_improvement: usize,
    t: usize,
    op_stats: OperatorStats,
    ctx: StepCtx,
}

impl EvolutionRunner {
    /// Snapshot the initial population and seed the loop state.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub(crate) fn start(mut evolution: Evolution) -> EvolutionRunner {
        let pop = evolution
            .population
            .take()
            .expect("population must be loaded before run()");
        let cfg = evolution.config;
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xE70_A160);
        let mut trace = Trace::default();
        let initial = pop.scatter();
        let mut archive = ParetoArchive::new();
        for point in &initial {
            archive.offer(point.clone());
        }
        trace.record(0, pop.scores(), None, false);
        let best = pop.best().score();
        let op_stats = OperatorStats::new(cfg.operator_schedule, cfg.mutation_rate);
        EvolutionRunner {
            evolution,
            pop,
            rng,
            trace,
            initial,
            archive,
            best,
            since_improvement: 0,
            t: 0,
            op_stats,
            ctx: StepCtx::new(),
        }
    }

    /// Whether the stop condition already holds.
    pub(crate) fn finished(&self) -> bool {
        self.evolution
            .config
            .stop
            .should_stop(self.t, self.since_improvement)
    }

    /// Execute one iteration unless the stop condition holds; returns
    /// whether an iteration ran.
    pub(crate) fn step<F>(&mut self, observer: &mut F) -> bool
    where
        F: FnMut(&crate::telemetry::GenerationStats),
    {
        if self.finished() {
            return false;
        }
        let (op, accepted) = if self.rng.gen::<f64>() < self.op_stats.mutation_rate() {
            (
                OperatorKind::Mutation,
                self.evolution.mutation_step(
                    &mut self.pop,
                    &mut self.archive,
                    &mut self.rng,
                    &mut self.ctx,
                ),
            )
        } else {
            (
                OperatorKind::Crossover,
                self.evolution.crossover_step(
                    &mut self.pop,
                    &mut self.archive,
                    &mut self.rng,
                    &mut self.ctx,
                ),
            )
        };
        self.op_stats.record(op, accepted);
        self.t += 1;
        let new_best = self.pop.best().score();
        if new_best + 1e-12 < self.best {
            self.best = new_best;
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
        self.trace
            .record(self.t, self.pop.scores(), Some(op), accepted);
        observer(self.trace.last().expect("just recorded"));
        true
    }

    /// Run at most `max` iterations; returns how many actually ran (fewer
    /// only when the stop condition interrupts the chunk).
    pub(crate) fn run_chunk<F>(&mut self, max: usize, observer: &mut F) -> usize
    where
        F: FnMut(&crate::telemetry::GenerationStats),
    {
        let mut ran = 0;
        while ran < max && self.step(observer) {
            ran += 1;
        }
        ran
    }

    /// Iterations executed so far.
    pub(crate) fn iterations_run(&self) -> usize {
        self.t
    }

    /// Clones of the `count` best members (the population is score-sorted,
    /// ties by insertion order — deterministic).
    pub(crate) fn export_best(&self, count: usize) -> Vec<Individual> {
        (0..count.min(self.pop.len()))
            .map(|i| self.pop.get(i).clone())
            .collect()
    }

    /// Replace the worst members with `immigrants` (at most `len - 1`, so
    /// at least one native always survives), then resort. An immigrant
    /// that beats the island's best resets the stagnation counter exactly
    /// like a native improvement would.
    pub(crate) fn migrate_in(&mut self, immigrants: Vec<Individual>) {
        let n = self.pop.len();
        let take = immigrants.len().min(n.saturating_sub(1));
        for (j, immigrant) in immigrants.into_iter().take(take).enumerate() {
            self.pop.replace_unsorted(n - 1 - j, immigrant);
        }
        self.pop.resort();
        let new_best = self.pop.best().score();
        if new_best + 1e-12 < self.best {
            self.best = new_best;
            self.since_improvement = 0;
        }
    }

    /// Assemble the outcome; identical to what the one-shot loop returned.
    pub(crate) fn finish(self) -> EvolutionOutcome {
        let mut eval_counts = self.ctx.evals;
        eval_counts.full += self.evolution.initial_evaluations;
        EvolutionOutcome {
            initial: self.initial,
            final_points: self.pop.scatter(),
            trace: self.trace,
            iterations_run: self.t,
            pareto_front: self.archive.front(),
            final_mutation_rate: self.op_stats.mutation_rate(),
            eval_counts,
            population: self.pop,
        }
    }
}

/// Summary of the score statistics the paper reports in §3.1/§3.2: initial
/// and final max/mean/min with percentage improvements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreSummary {
    /// Initial worst score.
    pub initial_max: f64,
    /// Final worst score.
    pub final_max: f64,
    /// Initial mean score.
    pub initial_mean: f64,
    /// Final mean score.
    pub final_mean: f64,
    /// Initial best score.
    pub initial_min: f64,
    /// Final best score.
    pub final_min: f64,
}

impl ScoreSummary {
    fn improvement(initial: f64, fin: f64) -> f64 {
        if initial.abs() < 1e-12 {
            0.0
        } else {
            100.0 * (initial - fin) / initial
        }
    }

    /// Percentage improvement of the max score.
    pub fn improvement_max(&self) -> f64 {
        Self::improvement(self.initial_max, self.final_max)
    }

    /// Percentage improvement of the mean score.
    pub fn improvement_mean(&self) -> f64 {
        Self::improvement(self.initial_mean, self.final_mean)
    }

    /// Percentage improvement of the min score.
    pub fn improvement_min(&self) -> f64 {
        Self::improvement(self.initial_min, self.final_min)
    }
}

/// Everything a run produces: the figure data and the final population.
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// Initial (IL, DR) snapshot (the paper's dispersion plots, "initial").
    pub initial: Vec<ScatterPoint>,
    /// Final (IL, DR) snapshot.
    pub final_points: Vec<ScatterPoint>,
    /// Max/mean/min score series (the paper's evolution plots).
    pub trace: Trace,
    /// Non-dominated (IL, DR) points over everything evaluated in the run
    /// (extension; sorted by IL ascending).
    pub pareto_front: Vec<ScatterPoint>,
    /// Mutation rate at the end of the run (differs from the configured
    /// rate only under the adaptive operator schedule).
    pub final_mutation_rate: f64,
    /// Fitness evaluations performed, split into full assessments (initial
    /// population included) and patch-based re-assessments.
    pub eval_counts: EvalCounts,
    /// Iterations actually executed.
    pub iterations_run: usize,
    /// Final population, sorted by score.
    pub population: Population,
}

impl EvolutionOutcome {
    /// Best initial point (minimum score).
    pub fn initial_best(&self) -> &ScatterPoint {
        self.initial
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("finite"))
            .expect("non-empty population")
    }

    /// Best final point.
    pub fn final_best(&self) -> &ScatterPoint {
        self.final_points
            .iter()
            .min_by(|a, b| a.score.partial_cmp(&b.score).expect("finite"))
            .expect("non-empty population")
    }

    /// The §3.1/§3.2 summary table row.
    pub fn summary(&self) -> ScoreSummary {
        let first = self.trace.initial().expect("trace has initial snapshot");
        let last = self.trace.last().expect("trace has final snapshot");
        ScoreSummary {
            initial_max: first.max,
            final_max: last.max,
            initial_mean: first.mean,
            final_mean: last.mean,
            initial_min: first.min,
            final_min: last.min,
        }
    }
}
