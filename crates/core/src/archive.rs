//! Pareto archive: the non-dominated (IL, DR) front seen during a run.
//!
//! The paper collapses the two objectives into one score (Eq. 1/Eq. 2) and
//! observes that the mean lets unbalanced protections slip through. A
//! natural extension is to also keep the *front*: every (IL, DR) pair not
//! dominated by another one encountered anywhere in the run. The archive
//! costs O(front) per offered point, is pure telemetry (it never feeds
//! back into selection), and gives the analyst the full trade-off curve
//! instead of a single scalar winner.

use crate::telemetry::ScatterPoint;

/// Does `a` dominate `b` (no worse in every objective, better in one)?
/// Compares the full objective vectors; for canonical runs these are
/// exactly the (IL, DR) pairs.
fn dominates(a: &ScatterPoint, b: &ScatterPoint) -> bool {
    a.objectives.dominates(&b.objectives)
}

/// A minimal Pareto archive over (IL, DR), minimizing both.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    points: Vec<ScatterPoint>,
}

impl ParetoArchive {
    /// Empty archive.
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Offer a point: inserted iff no archived point dominates it;
    /// archived points it dominates are evicted. Returns whether the point
    /// entered the archive.
    pub fn offer(&mut self, point: ScatterPoint) -> bool {
        if self
            .points
            .iter()
            .any(|p| dominates(p, &point) || p.objectives == point.objectives)
        {
            return false;
        }
        self.points.retain(|p| !dominates(&point, p));
        self.points.push(point);
        true
    }

    /// The current front, sorted by IL ascending (DR therefore descending).
    pub fn front(&self) -> Vec<ScatterPoint> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.il.partial_cmp(&b.il).expect("finite"));
        pts
    }

    /// Number of non-dominated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(il: f64, dr: f64) -> ScatterPoint {
        ScatterPoint::from_pair(format!("{il}/{dr}"), il, dr, il.max(dr))
    }

    #[test]
    fn dominated_points_are_rejected() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(pt(10.0, 10.0)));
        assert!(!a.offer(pt(20.0, 20.0)));
        assert!(!a.offer(pt(10.0, 11.0)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dominating_point_evicts() {
        let mut a = ParetoArchive::new();
        a.offer(pt(10.0, 30.0));
        a.offer(pt(30.0, 10.0));
        assert_eq!(a.len(), 2);
        assert!(a.offer(pt(5.0, 5.0)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.front()[0].il, 5.0);
    }

    #[test]
    fn incomparable_points_coexist() {
        let mut a = ParetoArchive::new();
        a.offer(pt(10.0, 30.0));
        a.offer(pt(20.0, 20.0));
        a.offer(pt(30.0, 10.0));
        assert_eq!(a.len(), 3);
        let front = a.front();
        // sorted by IL ascending, DR strictly descending along a front
        for w in front.windows(2) {
            assert!(w[0].il < w[1].il);
            assert!(w[0].dr > w[1].dr);
        }
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut a = ParetoArchive::new();
        assert!(a.offer(pt(10.0, 20.0)));
        assert!(!a.offer(pt(10.0, 20.0)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn front_never_contains_dominated_pairs() {
        let mut a = ParetoArchive::new();
        for i in 0..50 {
            let il = (i * 7 % 40) as f64;
            let dr = (i * 13 % 40) as f64;
            a.offer(pt(il, dr));
        }
        let front = a.front();
        for x in &front {
            for y in &front {
                assert!(!(dominates(x, y)), "front contains dominated point");
            }
        }
    }
}
