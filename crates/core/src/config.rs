//! Evolution configuration.

use cdp_metrics::ScoreAggregator;

use crate::adaptive::OperatorSchedule;
use crate::replacement::ReplacementPolicy;
use crate::selection::SelectionWeighting;
use crate::stop::StopCondition;
use crate::{EvoError, Result};

/// Migration topology of an island-model run (see [`crate::islands`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Directed ring: island `k` exports to island `(k + 1) mod K`.
    #[default]
    Ring,
}

/// Island-model knobs shared by both optimizers: how many islands a run
/// splits into and how they exchange members (see [`crate::islands`] for
/// the scheduler and its determinism contract). The default (`count` = 1)
/// is the legacy single-population run, bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IslandConfig {
    /// Number of islands `K`; `1` disables the island machinery entirely.
    pub count: usize,
    /// Generations between migration barriers `M`.
    pub migration_interval: usize,
    /// Members each island exports per migration; `0` disables migration
    /// (islands still run independently and merge at the end).
    pub migration_size: usize,
    /// Who sends to whom.
    pub topology: Topology,
}

impl Default for IslandConfig {
    fn default() -> Self {
        IslandConfig {
            count: 1,
            migration_interval: 10,
            migration_size: 2,
            topology: Topology::Ring,
        }
    }
}

impl IslandConfig {
    /// Validate ranges (at least one island, a positive migration
    /// interval).
    ///
    /// # Errors
    /// [`EvoError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if self.count == 0 {
            return Err(EvoError::InvalidConfig(
                "islands count must be at least 1".into(),
            ));
        }
        if self.migration_interval == 0 {
            return Err(EvoError::InvalidConfig(
                "migration_interval must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// All knobs of Algorithm 1 plus this implementation's extensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvoConfig {
    /// RNG seed; the whole run is deterministic given seed + population.
    pub seed: u64,
    /// Fitness aggregator (the paper's Eq. 1 `Mean` or Eq. 2 `Max`).
    pub aggregator: ScoreAggregator,
    /// Probability of a mutation generation (vs crossover); 0.5 in the
    /// paper. The starting rate when `operator_schedule` is adaptive.
    pub mutation_rate: f64,
    /// Fixed rate (paper) or adaptive pursuit (extension).
    pub operator_schedule: OperatorSchedule,
    /// Leader-group size `Nb` as a fraction of the population (`Nb =
    /// max(2, ⌈N·f⌉)`); the paper leaves `Nb` unspecified.
    pub leader_fraction: f64,
    /// Resolution of the Eq. 3 ambiguity.
    pub selection: SelectionWeighting,
    /// Crossover offspring/parent pairing.
    pub replacement: ReplacementPolicy,
    /// Termination.
    pub stop: StopCondition,
    /// Use the incremental evaluator for mutation offspring (on by
    /// default): the child is scored by patching the parent's cached
    /// state, which is bit-identical to a full assessment — every measure
    /// derives from exactly-updated integer sufficient statistics (see
    /// `cdp-metrics`). Turning it off changes nothing but wall time.
    pub incremental_mutation: bool,
    /// Use the patch-based incremental evaluator for crossover offspring
    /// (on by default): each child is re-assessed from its frame parent's
    /// cached state via a flat-range patch instead of a full O(n²) pass,
    /// with the same bit-exactness guarantee as
    /// [`EvoConfig::incremental_mutation`].
    pub incremental_crossover: bool,
    /// Debug-verification knob for the incremental paths: after this many
    /// *accepted* incrementally-evaluated offspring, the next offspring is
    /// additionally scored with a full assessment and the two results are
    /// asserted identical (a cross-check of the exact delta engine, not a
    /// drift bound — there is no drift). `0` (the default) disables the
    /// cross-check. Ignored while both incremental knobs are off.
    pub incremental_refresh: usize,
    /// Evaluate the initial population on all cores.
    pub parallel_init: bool,
    /// Evaluate the two crossover offspring concurrently on scoped threads
    /// (kicks in above [`crate::parallel::MIN_PARALLEL_EVAL_ROWS`] rows;
    /// evaluation draws no RNG, so results are bit-identical either way).
    pub parallel_offspring: bool,
    /// Island-model split (see [`crate::islands`]); the default single
    /// island runs the legacy loop untouched.
    pub islands: IslandConfig,
}

impl Default for EvoConfig {
    fn default() -> Self {
        EvoConfig {
            seed: 0,
            aggregator: ScoreAggregator::Max,
            mutation_rate: 0.5,
            operator_schedule: OperatorSchedule::Fixed,
            leader_fraction: 0.1,
            selection: SelectionWeighting::InverseScore,
            replacement: ReplacementPolicy::IndexPairedCrowding,
            stop: StopCondition::default(),
            incremental_mutation: true,
            incremental_crossover: true,
            incremental_refresh: 0,
            parallel_init: true,
            parallel_offspring: true,
            islands: IslandConfig::default(),
        }
    }
}

impl EvoConfig {
    /// Start a builder from the defaults.
    pub fn builder() -> EvoConfigBuilder {
        EvoConfigBuilder {
            cfg: EvoConfig::default(),
        }
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(EvoError::InvalidConfig(format!(
                "mutation_rate must lie in [0,1], got {}",
                self.mutation_rate
            )));
        }
        if !(self.leader_fraction > 0.0 && self.leader_fraction <= 1.0) {
            return Err(EvoError::InvalidConfig(format!(
                "leader_fraction must lie in (0,1], got {}",
                self.leader_fraction
            )));
        }
        if self.stop.max_iterations == 0 {
            return Err(EvoError::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        self.islands.validate()?;
        Ok(())
    }

    /// Leader-group size for a population of `n`.
    pub fn leader_group(&self, n: usize) -> usize {
        ((n as f64 * self.leader_fraction).ceil() as usize).clamp(2.min(n), n.max(1))
    }
}

/// Fluent builder for [`EvoConfig`].
#[derive(Debug, Clone)]
pub struct EvoConfigBuilder {
    cfg: EvoConfig,
}

impl EvoConfigBuilder {
    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Fitness aggregator.
    pub fn aggregator(mut self, agg: ScoreAggregator) -> Self {
        self.cfg.aggregator = agg;
        self
    }

    /// Iteration budget.
    pub fn iterations(mut self, n: usize) -> Self {
        self.cfg.stop.max_iterations = n;
        self
    }

    /// Early-stop stagnation window.
    pub fn stagnation(mut self, window: usize) -> Self {
        self.cfg.stop.stagnation = Some(window);
        self
    }

    /// Probability of a mutation generation.
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.cfg.mutation_rate = rate;
        self
    }

    /// Operator schedule (fixed by default, adaptive as an extension).
    pub fn operator_schedule(mut self, schedule: OperatorSchedule) -> Self {
        self.cfg.operator_schedule = schedule;
        self
    }

    /// Leader-group fraction.
    pub fn leader_fraction(mut self, f: f64) -> Self {
        self.cfg.leader_fraction = f;
        self
    }

    /// Selection weighting.
    pub fn selection(mut self, s: SelectionWeighting) -> Self {
        self.cfg.selection = s;
        self
    }

    /// Crossover replacement pairing.
    pub fn replacement(mut self, r: ReplacementPolicy) -> Self {
        self.cfg.replacement = r;
        self
    }

    /// Toggle incremental mutation evaluation.
    pub fn incremental_mutation(mut self, on: bool) -> Self {
        self.cfg.incremental_mutation = on;
        self
    }

    /// Toggle incremental (patch-based) crossover evaluation.
    pub fn incremental_crossover(mut self, on: bool) -> Self {
        self.cfg.incremental_crossover = on;
        self
    }

    /// Accepted-offspring interval between full-assessment cross-checks of
    /// the incremental paths (`0`, the default, = never verify).
    pub fn incremental_refresh(mut self, every: usize) -> Self {
        self.cfg.incremental_refresh = every;
        self
    }

    /// Toggle parallel initial evaluation.
    pub fn parallel_init(mut self, on: bool) -> Self {
        self.cfg.parallel_init = on;
        self
    }

    /// Toggle concurrent evaluation of the two crossover offspring.
    pub fn parallel_offspring(mut self, on: bool) -> Self {
        self.cfg.parallel_offspring = on;
        self
    }

    /// Number of islands (`1`, the default, = the legacy single loop).
    pub fn islands(mut self, k: usize) -> Self {
        self.cfg.islands.count = k;
        self
    }

    /// Generations between migration barriers.
    pub fn migration_interval(mut self, m: usize) -> Self {
        self.cfg.islands.migration_interval = m;
        self
    }

    /// Members each island exports per migration (`0` = no migration).
    pub fn migration_size(mut self, s: usize) -> Self {
        self.cfg.islands.migration_size = s;
        self
    }

    /// Finish. Panics on invalid ranges (builder misuse is a programming
    /// error); use [`EvoConfig::validate`] for data-driven configs.
    pub fn build(self) -> EvoConfig {
        self.cfg
            .validate()
            .unwrap_or_else(|e| panic!("invalid EvoConfig: {e}"));
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        assert!(EvoConfig::default().incremental_mutation);
        assert!(EvoConfig::default().incremental_crossover);
        assert_eq!(EvoConfig::default().incremental_refresh, 0);
        assert_eq!(EvoConfig::default().islands, IslandConfig::default());
        assert_eq!(IslandConfig::default().count, 1);
        let cfg = EvoConfig::builder()
            .seed(42)
            .aggregator(ScoreAggregator::Mean)
            .iterations(123)
            .stagnation(17)
            .mutation_rate(0.7)
            .leader_fraction(0.2)
            .selection(SelectionWeighting::Rank)
            .replacement(ReplacementPolicy::DistancePairedCrowding)
            .incremental_mutation(false)
            .incremental_crossover(false)
            .incremental_refresh(9)
            .parallel_init(false)
            .parallel_offspring(false)
            .islands(4)
            .migration_interval(25)
            .migration_size(3)
            .build();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.stop.max_iterations, 123);
        assert_eq!(cfg.stop.stagnation, Some(17));
        assert!(!cfg.incremental_mutation);
        assert!(!cfg.incremental_crossover);
        assert_eq!(cfg.incremental_refresh, 9);
        assert!(!cfg.parallel_init);
        assert!(!cfg.parallel_offspring);
        assert_eq!(cfg.islands.count, 4);
        assert_eq!(cfg.islands.migration_interval, 25);
        assert_eq!(cfg.islands.migration_size, 3);
    }

    #[test]
    fn validate_rejects_bad_island_configs() {
        let mut cfg = EvoConfig::default();
        cfg.islands.count = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = EvoConfig::default();
        cfg.islands.migration_interval = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn leader_group_bounds() {
        let cfg = EvoConfig::default(); // fraction 0.1
        assert_eq!(cfg.leader_group(110), 11);
        assert_eq!(cfg.leader_group(10), 2); // at least 2 when possible
        assert_eq!(cfg.leader_group(1), 1);
    }

    #[test]
    #[should_panic(expected = "invalid EvoConfig")]
    fn builder_panics_on_bad_rate() {
        let _ = EvoConfig::builder().mutation_rate(1.5).build();
    }

    #[test]
    fn validate_rejects_zero_iterations() {
        let mut cfg = EvoConfig::default();
        cfg.stop.max_iterations = 0;
        assert!(cfg.validate().is_err());
    }
}
