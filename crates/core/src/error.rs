//! Error type of the evolutionary core.

use std::fmt;

use cdp_metrics::MetricError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvoError>;

/// Errors raised while assembling or running an evolution.
#[derive(Debug)]
pub enum EvoError {
    /// No individuals were supplied.
    EmptyPopulation,
    /// A supplied protected file does not match the original's shape.
    IncompatibleIndividual {
        /// Name of the offending protection.
        name: String,
        /// Underlying mismatch.
        source: MetricError,
    },
    /// Configuration outside admissible ranges.
    InvalidConfig(String),
}

impl fmt::Display for EvoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvoError::EmptyPopulation => write!(f, "initial population is empty"),
            EvoError::IncompatibleIndividual { name, source } => {
                write!(f, "individual `{name}` is incompatible: {source}")
            }
            EvoError::InvalidConfig(msg) => write!(f, "invalid evolution config: {msg}"),
        }
    }
}

impl std::error::Error for EvoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvoError::IncompatibleIndividual { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EvoError::EmptyPopulation.to_string().contains("empty"));
        let e = EvoError::IncompatibleIndividual {
            name: "pram".into(),
            source: MetricError::ShapeMismatch("rows".into()),
        };
        assert!(e.to_string().contains("pram"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
