//! Individuals: one protected file plus its cached assessment.

use cdp_dataset::SubTable;
use cdp_metrics::{Assessment, EvalState, ObjectiveVector, ScoreAggregator};

/// A member of the evolutionary population.
///
/// The genotype is the protected file itself (no encoding, §2.1 of the
/// paper); the cached [`EvalState`] carries the sufficient statistics that
/// make incremental mutation re-assessment possible.
#[derive(Debug, Clone)]
pub struct Individual {
    /// Provenance label (initial protections keep their method name;
    /// offspring get derived labels).
    pub name: String,
    /// The protected columns.
    pub data: SubTable,
    state: EvalState,
    score: f64,
    objectives: ObjectiveVector,
}

impl Individual {
    /// Wrap an evaluated protection. The cached objective vector starts as
    /// the canonical `(IL, DR)` pair; optimizers running an extended set
    /// overwrite it via [`Individual::set_objectives`].
    pub fn new(name: String, data: SubTable, state: EvalState, agg: ScoreAggregator) -> Self {
        let score = state.assessment.score(agg);
        let objectives = ObjectiveVector::pair(state.assessment.il(), state.assessment.dr());
        Individual {
            name,
            data,
            state,
            score,
            objectives,
        }
    }

    /// Wrap a protection whose state lives in a borrowed scratch buffer
    /// (the state is cloned *here*, which is the only copy the scratch
    /// evaluation path pays — and only for offspring that actually win
    /// their duel).
    pub fn from_scratch(
        name: String,
        data: SubTable,
        state: &EvalState,
        agg: ScoreAggregator,
    ) -> Self {
        Individual::new(name, data, state.clone(), agg)
    }

    /// Cached fitness score (smaller is better).
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Full (IL, DR) assessment.
    pub fn assessment(&self) -> &Assessment {
        &self.state.assessment
    }

    /// Aggregated information loss.
    pub fn il(&self) -> f64 {
        self.state.assessment.il()
    }

    /// Aggregated disclosure risk.
    pub fn dr(&self) -> f64 {
        self.state.assessment.dr()
    }

    /// The cached objective vector — the coordinates Pareto selection
    /// compares. Defaults to the canonical `(IL, DR)` pair.
    pub fn objectives(&self) -> ObjectiveVector {
        self.objectives
    }

    /// Cache the objective vector computed under an extended objective set.
    pub fn set_objectives(&mut self, objectives: ObjectiveVector) {
        self.objectives = objectives;
    }

    /// The cached evaluation state (for incremental re-assessment).
    pub fn state(&self) -> &EvalState {
        &self.state
    }

    /// Replace the cached state and re-derive the score (resetting the
    /// objective vector to the canonical pair of the new assessment).
    pub fn replace_state(&mut self, state: EvalState, agg: ScoreAggregator) {
        self.score = state.assessment.score(agg);
        self.objectives = ObjectiveVector::pair(state.assessment.il(), state.assessment.dr());
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::{Evaluator, MetricConfig};

    #[test]
    fn score_matches_assessment() {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(1).with_records(60))
            .protected_subtable();
        let ev = Evaluator::new(&s, MetricConfig::default()).unwrap();
        let state = ev.assess(&s);
        let ind = Individual::new("id".into(), s, state, ScoreAggregator::Max);
        assert!((ind.score() - ind.assessment().score(ScoreAggregator::Max)).abs() < 1e-12);
        assert!(ind.il() < 1e-9);
        assert!(ind.dr() > 0.0);
    }
}
