//! Island-model parallel evolution: K independent optimizer instances on
//! scoped threads, synchronized only at migration barriers.
//!
//! An [`IslandModel`] splits the evaluated initial population round-robin
//! across `K` islands ([`IslandConfig::count`]). Each island is a full
//! [`Evolution`] (scalar mode) or [`Nsga2`] (nsga mode) with its own RNG
//! stream derived as `seed ⊕ island_hash(k)`, where `island_hash(0) = 0`
//! — so island 0 of any run, and the single island of a `K = 1` run,
//! replays the legacy single-population stream bit for bit. Every
//! [`IslandConfig::migration_interval`] generations the islands stop at a
//! barrier and exchange members along the configured [`Topology`] (ring
//! by default: island `k` exports its [`IslandConfig::migration_size`]
//! best/elite members to island `(k + 1) mod K`, which replaces its worst
//! members, all tie-breaks deterministic). When every island exhausts its
//! budget the results merge deterministically, in island-index order:
//! scalar mode concatenates the final populations (the global best is the
//! merged population's minimum, ties kept in island order) and unions the
//! per-island Pareto archives; nsga mode filters the union of island
//! fronts down to its non-dominated subset
//! ([`crate::nsga::non_dominated_points`] is the same rule) and
//! recomputes the hypervolume on the merged front.
//!
//! # Determinism contract
//!
//! * Islands run on scoped threads but synchronize **only** at migration
//!   barriers; all cross-island effects (migration, event replay, final
//!   merge) happen on the calling thread in island-index order. The
//!   outcome for a given `(seed, K, M)` is therefore identical across
//!   runs regardless of thread scheduling or core count.
//! * `K = 1` is exactly the legacy single-population run: same RNG
//!   stream, same outcome, bit for bit (the engine's reproduction tests
//!   pin this).
//! * Observers see island events in a deterministic order: each epoch's
//!   generation stats replay island by island, then migrations fire in
//!   source-island order. Only [`IslandTiming`] (wall-clock and
//!   critical-path measurements) varies between runs.

use std::time::{Duration, Instant};

use cdp_dataset::SubTable;
use cdp_metrics::Evaluator;

use crate::algorithm::{Evolution, EvolutionOutcome, EvolutionRunner};
use crate::archive::ParetoArchive;
use crate::config::{EvoConfig, IslandConfig, Topology};
use crate::individual::Individual;
use cdp_metrics::{ObjectiveSet, ObjectiveVector};

use crate::nsga::{
    hypervolume_vec, non_dominated_sort_vec, pareto_front_of, FrontStats, Nsga2, NsgaConfig,
    NsgaOutcome, NsgaRunner,
};
use crate::population::Population;
use crate::telemetry::{EvalCounts, GenerationStats, ScatterPoint, Trace};
use crate::{EvoError, Result};

/// Deterministic per-island seed perturbation (`seed ⊕ island_hash(k)`).
/// Weyl-sequence constant (the golden-ratio multiplier) spreads island
/// streams apart; `island_hash(0) = 0` keeps island 0 on the legacy
/// stream.
pub fn island_hash(k: usize) -> u64 {
    (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One observer event of an island-model run. Delivery order is
/// deterministic (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum IslandEvent {
    /// A scalar island finished one iteration.
    Generation {
        /// Island index.
        island: usize,
        /// The iteration's trace entry (per-island population statistics).
        stats: GenerationStats,
    },
    /// An nsga island finished one generation.
    Front {
        /// Island index.
        island: usize,
        /// The generation's front statistics (per-island).
        stats: FrontStats,
    },
    /// An island exported members to its ring neighbour at a barrier.
    Migration {
        /// Generations the source island had completed at the barrier.
        generation: usize,
        /// Source island index.
        island: usize,
        /// Members exported (≤ [`IslandConfig::migration_size`]).
        emigrants: usize,
    },
}

/// Timing measurements of an island run. `critical_path` sums, over the
/// migration epochs, the busiest island's *CPU* time in each epoch — the
/// wall time a machine with ≥ K free cores would see. Per-island busy
/// times are taken from the thread CPU clock (where available), so the
/// projection stays faithful even when the K scoped threads time-slice
/// on fewer than K cores; `wall` is what this machine actually observed.
///
/// Caveat: the thread clock only sees the island thread itself. With
/// [`crate::EvoConfig::parallel_offspring`] on, offspring evaluations run
/// on nested scoped threads whose CPU the island's clock cannot observe,
/// deflating `critical_path`. For meaningful critical-path readings run
/// islands with `parallel_offspring(false)` — the island threads are the
/// parallel grain already, and nesting oversubscribes anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct IslandTiming {
    /// Elapsed wall-clock time of the whole run.
    pub wall: Duration,
    /// Sum over epochs of the maximum per-island busy time.
    pub critical_path: Duration,
}

/// CPU time consumed by the calling thread (`CLOCK_THREAD_CPUTIME_ID`).
/// Unlike wall elapsed, this excludes time the thread spent descheduled,
/// so when K island threads share fewer than K cores each island's busy
/// time still reflects only its own compute and the per-epoch maximum
/// remains a faithful critical-path sample. `None` where the clock is
/// unavailable — callers fall back to wall elapsed.
#[cfg(target_os = "linux")]
fn thread_cpu_now() -> Option<Duration> {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        // libc is already linked by std; no crate dependency involved
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable `timespec`-layout struct and the
    // clock id is a compile-time constant the kernel accepts.
    (unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } == 0)
        .then(|| Duration::new(ts.tv_sec.max(0) as u64, ts.tv_nsec as u32))
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_now() -> Option<Duration> {
    None
}

/// One island's busy time for an epoch: thread CPU time when measurable,
/// wall elapsed otherwise.
fn busy_time(wall_started: Instant, cpu_started: Option<Duration>) -> Duration {
    match (cpu_started, thread_cpu_now()) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => wall_started.elapsed(),
    }
}

/// Entry points of the island scheduler: bind an evaluator and a config,
/// then load the population and run, exactly like the underlying
/// optimizers.
pub struct IslandModel;

impl IslandModel {
    /// An island-model run of the scalar evolutionary algorithm
    /// (Algorithm 1). With `config.islands.count == 1` this is the legacy
    /// [`Evolution`] run, bit for bit.
    pub fn scalar(evaluator: Evaluator, config: EvoConfig) -> ScalarIslands {
        ScalarIslands {
            islands: config.islands,
            evolution: Evolution::new(evaluator, config),
        }
    }

    /// An island-model NSGA-II run. With `config.islands.count == 1` this
    /// is the legacy [`Nsga2`] run, bit for bit.
    pub fn nsga(evaluator: Evaluator, config: NsgaConfig) -> NsgaIslands {
        NsgaIslands {
            islands: config.islands,
            nsga: Nsga2::new(evaluator, config),
        }
    }
}

/// A configured scalar island run (see [`IslandModel::scalar`]).
pub struct ScalarIslands {
    evolution: Evolution,
    islands: IslandConfig,
}

impl ScalarIslands {
    /// Load and evaluate the initial population (once, for all islands).
    ///
    /// # Errors
    /// Everything [`Evolution::with_named_population`] rejects, plus an
    /// [`EvoError::InvalidConfig`] when there are fewer members than
    /// islands.
    pub fn with_named_population<I>(mut self, items: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<(String, SubTable)>,
    {
        self.evolution = self.evolution.with_named_population(items)?;
        let len = self.evolution.population_len();
        if self.islands.count > len {
            return Err(EvoError::InvalidConfig(format!(
                "islands count {} exceeds population size {len}",
                self.islands.count
            )));
        }
        Ok(self)
    }

    /// Drop the best fraction of the full (pre-split) population — the
    /// §3.3 robustness experiment.
    ///
    /// # Errors
    /// [`EvoError::EmptyPopulation`] when called before loading.
    pub fn drop_best_fraction(mut self, fraction: f64) -> Result<Self> {
        self.evolution = self.evolution.drop_best_fraction(fraction)?;
        Ok(self)
    }

    /// Run to completion.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run(self) -> EvolutionOutcome {
        self.run_with(|_| {})
    }

    /// Run to completion, streaming [`IslandEvent`]s to `observer` (which
    /// draws nothing from any RNG stream).
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run_with<F: FnMut(&IslandEvent)>(self, observer: F) -> EvolutionOutcome {
        self.run_with_timing(observer).0
    }

    /// [`ScalarIslands::run_with`], also measuring [`IslandTiming`].
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run_with_timing<F: FnMut(&IslandEvent)>(
        self,
        mut observer: F,
    ) -> (EvolutionOutcome, IslandTiming) {
        let wall_start = Instant::now();
        let (evaluator, config, population, initial_evaluations) = self.evolution.into_parts();
        let pop = population.expect("population must be loaded before run()");
        // dropping leaders may have shrunk the population below K
        let k = config.islands.count.min(pop.len()).max(1);
        if k <= 1 {
            // single island ≡ the legacy loop: reuse the runner untouched
            let mut runner = EvolutionRunner::start(
                Evolution::new(evaluator, config).with_population(pop, initial_evaluations),
            );
            let mut obs = |g: &GenerationStats| {
                observer(&IslandEvent::Generation {
                    island: 0,
                    stats: *g,
                })
            };
            while runner.step(&mut obs) {}
            let outcome = runner.finish();
            let wall = wall_start.elapsed();
            return (
                outcome,
                IslandTiming {
                    wall,
                    critical_path: wall,
                },
            );
        }

        let initial = pop.scatter();
        let initial_scores = pop.scores().to_vec();
        let n = pop.len();
        let members = pop.into_members();
        // round-robin by sorted index: island j gets members j, j+K, … —
        // every island starts with a stratified slice of the quality range
        let mut parts: Vec<Vec<Individual>> = (0..k).map(|_| Vec::new()).collect();
        for (i, m) in members.into_iter().enumerate() {
            parts[i % k].push(m);
        }
        // equal total budget: the configured iteration count splits across
        // islands (remainder to the low indices)
        let total_iters = config.stop.max_iterations;
        let shares: Vec<usize> = parts.iter().map(Vec::len).collect();
        let mut runners: Vec<EvolutionRunner> = parts
            .into_iter()
            .enumerate()
            .map(|(j, part)| {
                let mut island_cfg = config;
                island_cfg.seed = config.seed ^ island_hash(j);
                island_cfg.stop.max_iterations =
                    (total_iters / k + usize::from(j < total_iters % k)).max(1);
                island_cfg.islands.count = 1;
                // island 0 absorbs the evaluations of members dropped
                // before the split so the aggregate matches the legacy
                // accounting exactly
                let share = if j == 0 {
                    initial_evaluations - (shares.iter().sum::<usize>() - shares[0])
                } else {
                    shares[j]
                };
                EvolutionRunner::start(
                    Evolution::new(evaluator.clone(), island_cfg)
                        .with_population(Population::new(part), share),
                )
            })
            .collect();

        let interval = config.islands.migration_interval;
        let size = config.islands.migration_size;
        let mut critical_path = Duration::ZERO;
        while runners.iter().any(|r| !r.finished()) {
            let mut chunks: Vec<(Vec<GenerationStats>, Duration)> = Vec::with_capacity(k);
            std::thread::scope(|scope| {
                let handles: Vec<_> = runners
                    .iter_mut()
                    .map(|runner| {
                        scope.spawn(move || {
                            let wall_started = Instant::now();
                            let cpu_started = thread_cpu_now();
                            let mut events = Vec::new();
                            runner.run_chunk(interval, &mut |g: &GenerationStats| events.push(*g));
                            (events, busy_time(wall_started, cpu_started))
                        })
                    })
                    .collect();
                for handle in handles {
                    chunks.push(handle.join().expect("island thread panicked"));
                }
            });
            critical_path += chunks.iter().map(|(_, d)| *d).max().unwrap_or_default();
            for (island, (events, _)) in chunks.iter().enumerate() {
                for stats in events {
                    observer(&IslandEvent::Generation {
                        island,
                        stats: *stats,
                    });
                }
            }
            if size > 0 && runners.iter().any(|r| !r.finished()) {
                // snapshot every export before any import: migration is a
                // simultaneous exchange, not a chain
                let exports: Vec<Vec<Individual>> =
                    runners.iter().map(|r| r.export_best(size)).collect();
                for (src, exported) in exports.into_iter().enumerate() {
                    let dst = match config.islands.topology {
                        Topology::Ring => (src + 1) % k,
                    };
                    let emigrants = exported.len();
                    runners[dst].migrate_in(exported);
                    observer(&IslandEvent::Migration {
                        generation: runners[src].iterations_run(),
                        island: src,
                        emigrants,
                    });
                }
            }
        }

        // merge, in island-index order
        let outcomes: Vec<EvolutionOutcome> =
            runners.into_iter().map(EvolutionRunner::finish).collect();
        let final_mutation_rate = outcomes[0].final_mutation_rate;
        let mut eval_counts = EvalCounts::default();
        let mut iterations_run = 0usize;
        let mut archive = ParetoArchive::new();
        let mut members: Vec<Individual> = Vec::with_capacity(n);
        for o in outcomes {
            eval_counts.full += o.eval_counts.full;
            eval_counts.incremental += o.eval_counts.incremental;
            iterations_run += o.iterations_run;
            for point in o.pareto_front {
                archive.offer(point);
            }
            members.extend(o.population.into_members());
        }
        let merged = Population::new(members);
        // the merged trace keeps the endpoints only: the initial full
        // population and the merged final one (per-island series stream to
        // the observer as IslandEvent::Generation)
        let mut trace = Trace::default();
        trace.record(0, &initial_scores, None, false);
        trace.record(iterations_run, merged.scores(), None, false);
        let outcome = EvolutionOutcome {
            initial,
            final_points: merged.scatter(),
            trace,
            iterations_run,
            pareto_front: archive.front(),
            final_mutation_rate,
            eval_counts,
            population: merged,
        };
        let wall = wall_start.elapsed();
        (
            outcome,
            IslandTiming {
                wall,
                critical_path,
            },
        )
    }
}

/// A configured NSGA-II island run (see [`IslandModel::nsga`]).
pub struct NsgaIslands {
    nsga: Nsga2,
    islands: IslandConfig,
}

impl NsgaIslands {
    /// Replace the objective set every island minimizes (defaults to the
    /// canonical `il, dr` pair). Forwarded to [`Nsga2::with_objectives`];
    /// the merge rule is unchanged — island fronts union under dominance
    /// over whatever vector the set produces.
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.nsga = self.nsga.with_objectives(objectives);
        self
    }

    /// Load and evaluate the initial population (once, for all islands).
    ///
    /// # Errors
    /// Everything [`Nsga2::with_named_population`] rejects, plus an
    /// [`EvoError::InvalidConfig`] when there are fewer members than
    /// islands.
    pub fn with_named_population<I>(mut self, items: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<(String, SubTable)>,
    {
        self.nsga = self.nsga.with_named_population(items)?;
        let len = self.nsga.population_len();
        if self.islands.count > len {
            return Err(EvoError::InvalidConfig(format!(
                "islands count {} exceeds population size {len}",
                self.islands.count
            )));
        }
        Ok(self)
    }

    /// Run to completion.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run(self) -> NsgaOutcome {
        self.run_with(|_| {})
    }

    /// Run to completion, streaming [`IslandEvent`]s to `observer`.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run_with<F: FnMut(&IslandEvent)>(self, observer: F) -> NsgaOutcome {
        self.run_with_timing(observer).0
    }

    /// [`NsgaIslands::run_with`], also measuring [`IslandTiming`].
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run_with_timing<F: FnMut(&IslandEvent)>(
        self,
        mut observer: F,
    ) -> (NsgaOutcome, IslandTiming) {
        let wall_start = Instant::now();
        let (evaluator, config, objectives, population) = self.nsga.into_parts();
        let members = population.expect("population must be loaded before run()");
        let k = config.islands.count.min(members.len()).max(1);
        if k <= 1 {
            let mut runner = NsgaRunner::start(
                Nsga2::new(evaluator, config)
                    .with_objectives(objectives)
                    .with_population(members),
            );
            let mut obs = |s: &FrontStats| {
                observer(&IslandEvent::Front {
                    island: 0,
                    stats: *s,
                })
            };
            while runner.step(&mut obs) {}
            let outcome = runner.finish();
            let wall = wall_start.elapsed();
            return (
                outcome,
                IslandTiming {
                    wall,
                    critical_path: wall,
                },
            );
        }

        let reference = objectives.reference();
        let initial_front = pareto_front_of(&members);
        let initial_pts: Vec<ObjectiveVector> =
            initial_front.iter().map(|p| p.objectives).collect();
        let initial_hv = hypervolume_vec(&initial_pts, &reference);
        // round-robin by insertion order
        let mut parts: Vec<Vec<Individual>> = (0..k).map(|_| Vec::new()).collect();
        for (i, m) in members.into_iter().enumerate() {
            parts[i % k].push(m);
        }
        // equal total budget: every island runs the full generation count
        // on its 1/K-sized subpopulation, so the per-generation offspring
        // batch (λ = subpopulation size when `offspring` is 0) shrinks by
        // K and the total evaluation count matches the K = 1 run
        let mut runners: Vec<NsgaRunner> = parts
            .into_iter()
            .enumerate()
            .map(|(j, part)| {
                let mut island_cfg = config;
                island_cfg.seed = config.seed ^ island_hash(j);
                island_cfg.islands.count = 1;
                if config.offspring > 0 {
                    island_cfg.offspring =
                        (config.offspring / k + usize::from(j < config.offspring % k)).max(1);
                }
                NsgaRunner::start(
                    Nsga2::new(evaluator.clone(), island_cfg)
                        .with_objectives(objectives.clone())
                        .with_population(part),
                )
            })
            .collect();

        let interval = config.islands.migration_interval;
        let size = config.islands.migration_size;
        let mut critical_path = Duration::ZERO;
        while runners.iter().any(|r| !r.finished()) {
            let mut chunks: Vec<(Vec<FrontStats>, Duration)> = Vec::with_capacity(k);
            std::thread::scope(|scope| {
                let handles: Vec<_> = runners
                    .iter_mut()
                    .map(|runner| {
                        scope.spawn(move || {
                            let wall_started = Instant::now();
                            let cpu_started = thread_cpu_now();
                            let mut events = Vec::new();
                            runner.run_chunk(interval, &mut |s: &FrontStats| events.push(*s));
                            (events, busy_time(wall_started, cpu_started))
                        })
                    })
                    .collect();
                for handle in handles {
                    chunks.push(handle.join().expect("island thread panicked"));
                }
            });
            critical_path += chunks.iter().map(|(_, d)| *d).max().unwrap_or_default();
            for (island, (events, _)) in chunks.iter().enumerate() {
                for stats in events {
                    observer(&IslandEvent::Front {
                        island,
                        stats: *stats,
                    });
                }
            }
            if size > 0 && runners.iter().any(|r| !r.finished()) {
                let exports: Vec<Vec<Individual>> =
                    runners.iter().map(|r| r.export_elite(size)).collect();
                for (src, exported) in exports.into_iter().enumerate() {
                    let dst = match config.islands.topology {
                        Topology::Ring => (src + 1) % k,
                    };
                    let emigrants = exported.len();
                    runners[dst].migrate_in(exported);
                    observer(&IslandEvent::Migration {
                        generation: runners[src].generations_run(),
                        island: src,
                        emigrants,
                    });
                }
            }
        }

        // merge, in island-index order
        let outcomes: Vec<NsgaOutcome> = runners.into_iter().map(NsgaRunner::finish).collect();
        let mut eval_counts = EvalCounts::default();
        let mut archive = ParetoArchive::new();
        let mut union: Vec<Individual> = Vec::new();
        let mut series: Vec<Vec<f64>> = Vec::new();
        for o in outcomes {
            eval_counts.full += o.eval_counts.full;
            eval_counts.incremental += o.eval_counts.incremental;
            for point in o.archive_front {
                archive.offer(point);
            }
            union.extend(o.front_members);
            series.push(o.hypervolume_series);
        }
        // the merged front is the non-dominated filter of the union of
        // island fronts, IL-ascending (ties keep island order)
        let objs: Vec<ObjectiveVector> = union.iter().map(Individual::objectives).collect();
        let mut idx = non_dominated_sort_vec(&objs)
            .into_iter()
            .next()
            .unwrap_or_default();
        idx.sort_by(|&a, &b| {
            objs[a]
                .first()
                .partial_cmp(&objs[b].first())
                .expect("finite")
        });
        let front: Vec<ScatterPoint> = idx.iter().map(|&i| ScatterPoint::of(&union[i])).collect();
        let front_members: Vec<Individual> = idx.into_iter().map(|i| union[i].clone()).collect();
        // merged hypervolume series: the initial full-population front,
        // then the per-generation maximum across islands, with the final
        // entry recomputed on the merged front
        let max_len = series.iter().map(Vec::len).max().unwrap_or(1);
        let mut hv_series = Vec::with_capacity(max_len);
        hv_series.push(initial_hv);
        for g in 1..max_len {
            let best = series
                .iter()
                .filter_map(|s| s.get(g))
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            hv_series.push(best);
        }
        let merged_pts: Vec<ObjectiveVector> = front.iter().map(|p| p.objectives).collect();
        let merged_hv = hypervolume_vec(&merged_pts, &reference);
        if hv_series.len() > 1 {
            *hv_series.last_mut().expect("non-empty") = merged_hv;
        }
        let mut archive_front = archive.front();
        archive_front.sort_by(|a, b| a.il.partial_cmp(&b.il).expect("finite"));
        let outcome = NsgaOutcome {
            front,
            front_members,
            initial_front,
            archive_front,
            hypervolume_series: hv_series,
            evaluations: eval_counts.total(),
            eval_counts,
            objectives,
        };
        let wall = wall_start.elapsed();
        (
            outcome,
            IslandTiming {
                wall,
                critical_path,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsga::{hypervolume, non_dominated_points, HV_REFERENCE};
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::MetricConfig;
    use cdp_sdc::{build_population, SuiteConfig};

    fn setup(seed: u64, records: usize) -> (Vec<(String, SubTable)>, Evaluator) {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(seed).with_records(records));
        let pop = build_population(&ds, &SuiteConfig::small(), seed).unwrap();
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        (pop.into_iter().map(Into::into).collect(), ev)
    }

    fn scalar_cfg(seed: u64, iters: usize, islands: IslandConfig) -> EvoConfig {
        let mut cfg = EvoConfig::builder().seed(seed).iterations(iters).build();
        cfg.islands = islands;
        cfg
    }

    #[test]
    fn island_hash_spreads_streams_and_pins_island_zero() {
        assert_eq!(island_hash(0), 0);
        let hashes: Vec<u64> = (0..8).map(island_hash).collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn k1_matches_the_legacy_scalar_run_bit_for_bit() {
        let (pop, ev) = setup(21, 40);
        let cfg = scalar_cfg(21, 25, IslandConfig::default());
        let legacy = Evolution::new(ev.clone(), cfg)
            .with_named_population(pop.clone())
            .unwrap()
            .run();
        let islands = IslandModel::scalar(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run();
        assert_eq!(legacy.final_points, islands.final_points);
        assert_eq!(legacy.trace.generations, islands.trace.generations);
        assert_eq!(legacy.pareto_front, islands.pareto_front);
        assert_eq!(legacy.eval_counts, islands.eval_counts);
        assert_eq!(legacy.iterations_run, islands.iterations_run);
        assert_eq!(legacy.final_mutation_rate, islands.final_mutation_rate);
    }

    #[test]
    fn k1_matches_the_legacy_nsga_run_bit_for_bit() {
        let (pop, ev) = setup(22, 40);
        let cfg = NsgaConfig {
            generations: 6,
            seed: 22,
            ..NsgaConfig::default()
        };
        let legacy = Nsga2::new(ev.clone(), cfg)
            .with_named_population(pop.clone())
            .unwrap()
            .run();
        let islands = IslandModel::nsga(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run();
        assert_eq!(legacy.front, islands.front);
        assert_eq!(legacy.initial_front, islands.initial_front);
        assert_eq!(legacy.archive_front, islands.archive_front);
        assert_eq!(legacy.hypervolume_series, islands.hypervolume_series);
        assert_eq!(legacy.eval_counts, islands.eval_counts);
        for (a, b) in legacy.front_members.iter().zip(&islands.front_members) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn same_seed_k4_scalar_runs_are_bit_identical() {
        let run = || {
            let (pop, ev) = setup(23, 40);
            let islands = IslandConfig {
                count: 4,
                migration_interval: 5,
                ..IslandConfig::default()
            };
            let cfg = scalar_cfg(23, 40, islands);
            let mut events = Vec::new();
            let outcome = IslandModel::scalar(ev, cfg)
                .with_named_population(pop)
                .unwrap()
                .run_with(|e| events.push(e.clone()));
            (outcome, events)
        };
        let (a, ae) = run();
        let (b, be) = run();
        assert_eq!(a.final_points, b.final_points);
        assert_eq!(a.trace.generations, b.trace.generations);
        assert_eq!(a.pareto_front, b.pareto_front);
        assert_eq!(a.eval_counts, b.eval_counts);
        assert_eq!(ae, be, "event streams must be deterministic");
        assert!(ae
            .iter()
            .any(|e| matches!(e, IslandEvent::Migration { .. })));
    }

    #[test]
    fn same_seed_k3_nsga_runs_are_bit_identical() {
        let run = || {
            let (pop, ev) = setup(24, 40);
            let mut cfg = NsgaConfig {
                generations: 6,
                seed: 24,
                ..NsgaConfig::default()
            };
            cfg.islands.count = 3;
            cfg.islands.migration_interval = 2;
            let mut events = Vec::new();
            let outcome = IslandModel::nsga(ev, cfg)
                .with_named_population(pop)
                .unwrap()
                .run_with(|e| events.push(e.clone()));
            (outcome, events)
        };
        let (a, ae) = run();
        let (b, be) = run();
        assert_eq!(a.front, b.front);
        assert_eq!(a.archive_front, b.archive_front);
        assert_eq!(a.hypervolume_series, b.hypervolume_series);
        assert_eq!(a.eval_counts, b.eval_counts);
        assert_eq!(ae, be, "event streams must be deterministic");
    }

    #[test]
    fn k4_scalar_budget_matches_k1_and_preserves_population() {
        let (pop, ev) = setup(25, 40);
        let n = pop.len();
        let iters = 30;
        let k1 = IslandModel::scalar(ev.clone(), scalar_cfg(25, iters, IslandConfig::default()))
            .with_named_population(pop.clone())
            .unwrap()
            .run();
        let islands = IslandConfig {
            count: 4,
            migration_interval: 4,
            ..IslandConfig::default()
        };
        let k4 = IslandModel::scalar(ev, scalar_cfg(25, iters, islands))
            .with_named_population(pop)
            .unwrap()
            .run();
        assert_eq!(
            k4.population.len(),
            n,
            "merge must preserve the population size"
        );
        assert_eq!(
            k4.iterations_run, k1.iterations_run,
            "equal iteration budget"
        );
        assert_eq!(k4.initial.len(), n);
        for p in k4.final_points.iter() {
            assert!(p.score.is_finite());
            assert!((0.0..=100.0).contains(&p.il));
            assert!((0.0..=100.0).contains(&p.dr));
        }
    }

    #[test]
    fn nsga_merged_front_is_the_nondominated_filter_of_island_fronts() {
        let (pop, ev) = setup(26, 40);
        let mut cfg = NsgaConfig {
            generations: 5,
            seed: 26,
            ..NsgaConfig::default()
        };
        cfg.islands.count = 2;
        cfg.islands.migration_interval = 2;
        let out = IslandModel::nsga(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run();
        // the merged front must be mutually non-dominated …
        for a in &out.front {
            for b in &out.front {
                let dominates = a.il <= b.il && a.dr <= b.dr && (a.il < b.il || a.dr < b.dr);
                assert!(!dominates, "merged front contains a dominated point");
            }
        }
        // … aligned with its members, IL-ascending, and idempotent under
        // the published merge rule
        assert_eq!(out.front.len(), out.front_members.len());
        for w in out.front.windows(2) {
            assert!(w[0].il <= w[1].il);
        }
        assert_eq!(non_dominated_points(&out.front), out.front);
        // the final hypervolume entry is the merged front's
        let pts: Vec<(f64, f64)> = out.front.iter().map(|p| (p.il, p.dr)).collect();
        let expect = hypervolume(&pts, HV_REFERENCE);
        assert_eq!(*out.hypervolume_series.last().unwrap(), expect);
    }

    #[test]
    fn more_islands_than_members_is_rejected() {
        let (pop, ev) = setup(27, 40);
        let n = pop.len();
        let islands = IslandConfig {
            count: n + 1,
            ..IslandConfig::default()
        };
        let err = IslandModel::scalar(ev.clone(), scalar_cfg(27, 10, islands))
            .with_named_population(pop.clone())
            .err();
        assert!(matches!(err, Some(EvoError::InvalidConfig(_))));
        let mut cfg = NsgaConfig::default();
        cfg.islands.count = n + 1;
        assert!(IslandModel::nsga(ev, cfg)
            .with_named_population(pop)
            .is_err());
    }

    #[test]
    fn migration_size_zero_runs_isolated_islands() {
        let (pop, ev) = setup(28, 40);
        let islands = IslandConfig {
            count: 2,
            migration_size: 0,
            ..IslandConfig::default()
        };
        let mut events = Vec::new();
        let out = IslandModel::scalar(ev, scalar_cfg(28, 16, islands))
            .with_named_population(pop)
            .unwrap()
            .run_with(|e| events.push(e.clone()));
        assert!(events
            .iter()
            .all(|e| !matches!(e, IslandEvent::Migration { .. })));
        assert_eq!(out.iterations_run, 16);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Migration invariants over random island configurations: the
        /// merged population keeps its size, every member stays a valid
        /// evaluated protection, and the budget split is exact.
        #[test]
        fn migration_preserves_population_over_random_configs(
            k in 1usize..=4,
            interval in 1usize..=3,
            size in 0usize..=2,
            seed in 0u64..1000,
        ) {
            let (pop, ev) = setup(29, 30);
            let n = pop.len();
            let islands = IslandConfig {
                count: k,
                migration_interval: interval,
                migration_size: size,
                ..IslandConfig::default()
            };
            let iters = 12;
            let out = IslandModel::scalar(ev, scalar_cfg(seed, iters, islands))
                .with_named_population(pop)
                .unwrap()
                .run();
            proptest::prop_assert_eq!(out.population.len(), n);
            proptest::prop_assert_eq!(out.iterations_run, iters);
            for p in &out.final_points {
                proptest::prop_assert!(p.score.is_finite());
            }
        }

        /// The merge rule: `non_dominated_points` of a union of fronts
        /// returns exactly the union members not dominated by any other
        /// union member, IL-ascending.
        #[test]
        fn merged_front_equals_nondominated_filter_of_union(
            points in proptest::collection::vec((0u32..100, 0u32..100), 1..40),
        ) {
            let union: Vec<ScatterPoint> = points
                .iter()
                .enumerate()
                .map(|(i, &(il, dr))| ScatterPoint::from_pair(
                    format!("p{i}"),
                    f64::from(il),
                    f64::from(dr),
                    f64::from(il.max(dr)),
                ))
                .collect();
            let merged = non_dominated_points(&union);
            let dominated = |p: &ScatterPoint| {
                union.iter().any(|q| {
                    q.il <= p.il && q.dr <= p.dr && (q.il < p.il || q.dr < p.dr)
                })
            };
            for p in &union {
                let in_merged = merged.iter().any(|m| m.name == p.name);
                proptest::prop_assert_eq!(
                    in_merged, !dominated(p),
                    "{} must be kept iff non-dominated", p.name.clone()
                );
            }
            for w in merged.windows(2) {
                proptest::prop_assert!(w[0].il <= w[1].il);
            }
        }
    }
}
