#![warn(missing_docs)]

//! # cdp-core
//!
//! The paper's contribution: a post-masking **evolutionary algorithm** that
//! optimizes populations of protected categorical files against a fitness
//! combining information loss and disclosure risk (Marés & Torra,
//! PAIS/EDBT 2012, Algorithm 1).
//!
//! * **Genotype** — a whole protected file; no encoding. We store the
//!   protected columns only ([`cdp_dataset::SubTable`]), since operators and
//!   measures never touch the rest (DESIGN.md §4.7).
//! * **Mutation** — pick one cell at random, replace it with a random
//!   *valid* category of its attribute ([`operators::mutate`]).
//! * **Crossover** — 2-point crossover on the flattened value sequence
//!   ([`operators::crossover`]).
//! * **Selection** — score-proportional for mutation; for crossover one
//!   parent comes uniformly from the `Nb`-best leader group and the other
//!   proportionally from the whole population ([`SelectionWeighting`]
//!   resolves the paper's Eq. 3 ambiguity, see DESIGN.md §4.1).
//! * **Replacement** — parent/offspring elitism for mutation and
//!   Deterministic Crowding for crossover ([`ReplacementPolicy`]).
//!
//! ```
//! use cdp_core::{EvoConfig, Evolution};
//! use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
//! use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
//! use cdp_sdc::{build_population, SuiteConfig};
//!
//! let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(3).with_records(80));
//! let pop = build_population(&ds, &SuiteConfig::small(), 3).unwrap();
//! let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
//! let cfg = EvoConfig::builder()
//!     .iterations(30)
//!     .aggregator(ScoreAggregator::Max)
//!     .seed(3)
//!     .build();
//! let outcome = Evolution::new(ev, cfg).with_named_population(pop).unwrap().run();
//! assert!(outcome.summary().final_mean <= outcome.summary().initial_mean);
//! ```

mod adaptive;
mod algorithm;
mod archive;
mod config;
mod error;
mod individual;
mod population;
mod replacement;
mod selection;
mod stop;
mod telemetry;

pub mod islands;
pub mod nsga;
pub mod operators;
pub mod parallel;

pub use adaptive::{OperatorSchedule, OperatorStats};
pub use algorithm::{Evolution, EvolutionOutcome, ScoreSummary};
pub use archive::ParetoArchive;
pub use cdp_metrics::{ObjectiveSet, ObjectiveVector};
pub use config::{EvoConfig, EvoConfigBuilder, IslandConfig, Topology};
pub use error::{EvoError, Result};
pub use individual::Individual;
pub use islands::{IslandEvent, IslandModel, IslandTiming};
pub use nsga::{FrontStats, Nsga2, NsgaConfig, NsgaOutcome};
pub use operators::OperatorKind;
pub use parallel::{evaluate_all, evaluate_tasks, EvalTask};
pub use population::Population;
pub use replacement::ReplacementPolicy;
pub use selection::SelectionWeighting;
pub use stop::StopCondition;
pub use telemetry::{EvalCounts, GenerationStats, ScatterPoint, Trace};
