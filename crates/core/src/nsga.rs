//! NSGA-II: true multi-objective optimization over (IL, DR).
//!
//! The paper collapses information loss and disclosure risk into one scalar
//! (Eq. 1/Eq. 2) and §4 notes the approach "can be adapted to other fitness
//! functions" — this module is that adaptation taken to its logical end:
//! instead of a scalar, selection works directly on Pareto dominance
//! (non-dominated sorting) with crowding-distance tie-breaking, as in
//! Deb et al.'s NSGA-II. The outcome is a *front* of protections covering
//! the whole IL/DR trade-off curve in one run, rather than one winner per
//! aggregator choice.
//!
//! The genetic operators are exactly the paper's (§2.2): single-cell
//! mutation and 2-point crossover at the value level, chosen per offspring
//! with the same 0.5 rate. Only the selection/replacement scheme differs,
//! which makes the scalar-vs-Pareto comparison in the `multi_objective`
//! example and the extension bench a clean ablation.
//!
//! Since the objective-vector refactor, selection is generic over an
//! [`ObjectiveSet`]: dominance, crowding, and hypervolume all run over
//! N-dimensional [`ObjectiveVector`]s ([`non_dominated_sort_vec`],
//! [`crowding_distance_vec`], [`hypervolume_vec`]). The historical
//! 2-objective tuple entry points remain as thin wrappers, and the
//! canonical `il,dr` set reproduces the hard-wired pair bit for bit —
//! same comparisons, same RNG stream, same front.

use cdp_dataset::SubTable;
use cdp_metrics::{
    Evaluator, ObjectiveContext, ObjectiveSet, ObjectiveVector, Patch, ScoreAggregator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::archive::ParetoArchive;
use crate::individual::Individual;
use crate::operators::{crossover, mutate};
use crate::parallel::{evaluate_all, evaluate_tasks, EvalTask};
use crate::telemetry::{EvalCounts, ScatterPoint};
use crate::{EvoError, Result};

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NsgaConfig {
    /// Number of generations.
    pub generations: usize,
    /// Offspring produced per generation; `0` means "population size".
    pub offspring: usize,
    /// Probability an offspring pair comes from crossover rather than
    /// mutation (the paper's operator coin, 0.5).
    pub crossover_prob: f64,
    /// RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Evaluate the initial population (and each generation's offspring
    /// batch) on all cores.
    pub parallel_init: bool,
    /// Score offspring by patching their primary parent's cached state
    /// (mutation: one cell; crossover: the swapped flat segment) instead of
    /// a full O(n²) assessment — on by default, and bit-identical to the
    /// full pass: every measure derives from exactly-updated integer
    /// sufficient statistics (the same guarantee as
    /// `EvoConfig::incremental_mutation`).
    pub incremental: bool,
    /// Debug-verification interval for [`NsgaConfig::incremental`]: every
    /// this many generations the *whole surviving population* is fully
    /// re-assessed and each cached patched state asserted identical to the
    /// recompute — a cross-check of the exact delta engine, not a drift
    /// bound. `0` (the default) disables the cross-check.
    pub incremental_refresh: usize,
    /// Island-model split (see [`crate::islands`]); the default single
    /// island runs the legacy loop untouched.
    pub islands: crate::config::IslandConfig,
}

impl Default for NsgaConfig {
    fn default() -> Self {
        NsgaConfig {
            generations: 100,
            offspring: 0,
            crossover_prob: 0.5,
            seed: 0,
            parallel_init: true,
            incremental: true,
            incremental_refresh: 0,
            islands: crate::config::IslandConfig::default(),
        }
    }
}

impl NsgaConfig {
    /// Validate ranges (at least one generation, crossover probability in
    /// `[0,1]`).
    ///
    /// # Errors
    /// [`EvoError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if self.generations == 0 {
            return Err(EvoError::InvalidConfig(
                "NSGA-II needs at least one generation".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.crossover_prob) {
            return Err(EvoError::InvalidConfig(format!(
                "crossover_prob must lie in [0,1], got {}",
                self.crossover_prob
            )));
        }
        self.islands.validate()?;
        Ok(())
    }
}

/// Fast non-dominated sort (Deb et al. 2002) over N-dim objective vectors:
/// partition points into fronts `F0, F1, …` where `F0` is the non-dominated
/// set, `F1` the non-dominated set after removing `F0`, and so on. All
/// objectives are minimized.
pub fn non_dominated_sort_vec(objs: &[ObjectiveVector]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if objs[i].dominates(&objs[j]) {
                dominated_by[i].push(j);
                domination_count[j] += 1;
            } else if objs[j].dominates(&objs[i]) {
                dominated_by[j].push(i);
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// The historical 2-objective entry point of [`non_dominated_sort_vec`].
pub fn non_dominated_sort(objs: &[(f64, f64)]) -> Vec<Vec<usize>> {
    let objs: Vec<ObjectiveVector> = objs
        .iter()
        .map(|&(il, dr)| ObjectiveVector::pair(il, dr))
        .collect();
    non_dominated_sort_vec(&objs)
}

/// Crowding distance of each member of one front (aligned with `front`'s
/// order), over N-dim objective vectors. Boundary points get
/// `f64::INFINITY`; interior points the sum of normalized neighbour gaps
/// per objective.
pub fn crowding_distance_vec(objs: &[ObjectiveVector], front: &[usize]) -> Vec<f64> {
    let m = front.len();
    let mut dist = vec![0f64; m];
    if m <= 2 {
        dist.iter_mut().for_each(|d| *d = f64::INFINITY);
        return dist;
    }
    let dims = objs.first().map_or(0, ObjectiveVector::len);
    // `obj` is a dimension index into each inner vector, not an index
    // into `objs` — the iterator rewrite the lint wants doesn't apply
    #[allow(clippy::needless_range_loop)]
    for obj in 0..dims {
        let value = |i: usize| objs[i][obj];
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            value(front[a])
                .partial_cmp(&value(front[b]))
                .expect("objectives are finite")
        });
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        let span = value(front[order[m - 1]]) - value(front[order[0]]);
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            let gap = value(front[order[w + 1]]) - value(front[order[w - 1]]);
            dist[order[w]] += gap / span;
        }
    }
    dist
}

/// The historical 2-objective entry point of [`crowding_distance_vec`].
pub fn crowding_distance(objs: &[(f64, f64)], front: &[usize]) -> Vec<f64> {
    let objs: Vec<ObjectiveVector> = objs
        .iter()
        .map(|&(il, dr)| ObjectiveVector::pair(il, dr))
        .collect();
    crowding_distance_vec(&objs, front)
}

/// 2-D hypervolume (area dominated between the front and a reference point,
/// minimization): the standard quality indicator for comparing fronts.
/// Points at or beyond the reference contribute nothing. This sweep is the
/// exact N=2 kernel of [`hypervolume_vec`] — the vector path delegates
/// here, so 2-objective hypervolumes are bit-identical either way.
pub fn hypervolume(points: &[(f64, f64)], reference: (f64, f64)) -> f64 {
    let mut front: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, y)| x < reference.0 && y < reference.1)
        .collect();
    if front.is_empty() {
        return 0.0;
    }
    front.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
    let mut hv = 0.0;
    let mut prev_y = reference.1;
    for (x, y) in front {
        if y < prev_y {
            hv += (reference.0 - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv
}

/// N-D hypervolume via recursive slicing: sweep the first objective
/// ascending and integrate the (N−1)-D hypervolume of the points active in
/// each slab. N=2 delegates to the exact [`hypervolume`] sweep (same
/// floats, same additions); N=1 is the span to the reference.
pub fn hypervolume_vec(points: &[ObjectiveVector], reference: &ObjectiveVector) -> f64 {
    let d = reference.len();
    let inside: Vec<Vec<f64>> = points
        .iter()
        .filter(|p| {
            assert_eq!(p.len(), d, "point/reference dimensions differ");
            (0..d).all(|k| p[k] < reference[k])
        })
        .map(|p| p.as_slice().to_vec())
        .collect();
    if inside.is_empty() {
        return 0.0;
    }
    hv_slices(&inside, reference.as_slice())
}

/// Recursive kernel of [`hypervolume_vec`]; `points` are strictly inside
/// `reference` on every dimension.
fn hv_slices(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    match reference.len() {
        0 => 0.0,
        1 => {
            let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference[0] - best
        }
        2 => {
            let pts: Vec<(f64, f64)> = points.iter().map(|p| (p[0], p[1])).collect();
            hypervolume(&pts, (reference[0], reference[1]))
        }
        _ => {
            let mut order: Vec<usize> = (0..points.len()).collect();
            order.sort_by(|&a, &b| points[a][0].partial_cmp(&points[b][0]).expect("finite"));
            let mut hv = 0.0;
            let mut active: Vec<Vec<f64>> = Vec::with_capacity(points.len());
            let mut k = 0;
            while k < order.len() {
                let x = points[order[k]][0];
                while k < order.len() && points[order[k]][0] == x {
                    active.push(points[order[k]][1..].to_vec());
                    k += 1;
                }
                let next_x = if k < order.len() {
                    points[order[k]][0]
                } else {
                    reference[0]
                };
                if next_x > x {
                    hv += (next_x - x) * hv_slices(&active, &reference[1..]);
                }
            }
            hv
        }
    }
}

/// Indices of a population's non-dominated members, first-objective
/// (IL) ascending.
fn front_indices(pop: &[Individual]) -> Vec<usize> {
    let objs: Vec<ObjectiveVector> = pop.iter().map(Individual::objectives).collect();
    let fronts = non_dominated_sort_vec(&objs);
    let mut idx = fronts.into_iter().next().unwrap_or_default();
    idx.sort_by(|&a, &b| {
        objs[a]
            .first()
            .partial_cmp(&objs[b].first())
            .expect("finite")
    });
    idx
}

/// The non-dominated members of a population, as scatter points sorted by
/// IL ascending.
pub fn pareto_front_of(pop: &[Individual]) -> Vec<ScatterPoint> {
    front_indices(pop)
        .into_iter()
        .map(|i| ScatterPoint::of(&pop[i]))
        .collect()
}

/// Non-dominated filter of arbitrary objective points, first-objective
/// (IL) ascending with ties kept in input order (stable) — the rule the
/// island scheduler applies when merging per-island fronts into one global
/// front.
pub fn non_dominated_points(points: &[ScatterPoint]) -> Vec<ScatterPoint> {
    let objs: Vec<ObjectiveVector> = points.iter().map(|p| p.objectives).collect();
    let mut idx = non_dominated_sort_vec(&objs)
        .into_iter()
        .next()
        .unwrap_or_default();
    idx.sort_by(|&a, &b| {
        objs[a]
            .first()
            .partial_cmp(&objs[b].first())
            .expect("finite")
    });
    idx.into_iter().map(|i| points[i].clone()).collect()
}

/// Per-generation front progress, streamed to [`Nsga2::run_with`]
/// observers (the multi-objective counterpart of
/// [`crate::GenerationStats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontStats {
    /// Generation index, 1-based (aligned with
    /// [`NsgaOutcome::hypervolume_series`], whose index 0 is the initial
    /// population).
    pub generation: usize,
    /// Size of the population's non-dominated front after the generation.
    pub front_size: usize,
    /// Hypervolume of that front w.r.t. the objective set's reference
    /// point ([`HV_REFERENCE`] for the canonical pair).
    pub hypervolume: f64,
    /// The front's ideal point: the per-objective minimum over the front
    /// — the vector observers stream alongside the scalar summary.
    pub ideal: ObjectiveVector,
}

/// Result of an NSGA-II run.
#[derive(Debug, Clone)]
pub struct NsgaOutcome {
    /// Non-dominated front of the *final population*, IL-ascending.
    pub front: Vec<ScatterPoint>,
    /// The front's members with their protected files, aligned with
    /// [`NsgaOutcome::front`] (what a consumer publishes after picking a
    /// trade-off point).
    pub front_members: Vec<Individual>,
    /// Non-dominated front of the *initial population*.
    pub initial_front: Vec<ScatterPoint>,
    /// All-time front across every individual ever evaluated (monotone in
    /// hypervolume by construction).
    pub archive_front: Vec<ScatterPoint>,
    /// Hypervolume of the population front after each generation
    /// (index 0 = initial population), reference point (100, 100).
    pub hypervolume_series: Vec<f64>,
    /// Total fitness evaluations performed (initial population included);
    /// always `eval_counts.total()` — derived at construction, never
    /// counted separately.
    pub evaluations: usize,
    /// The same evaluations split into full assessments and patch-based
    /// re-assessments.
    pub eval_counts: EvalCounts,
    /// The objective set the run minimized (canonical `il,dr` unless
    /// extended via [`Nsga2::with_objectives`]).
    pub objectives: ObjectiveSet,
}

/// The hypervolume reference point: measures live in `[0, 100]²`.
pub const HV_REFERENCE: (f64, f64) = (100.0, 100.0);

/// A configured NSGA-II run over protections of one file.
pub struct Nsga2 {
    evaluator: Evaluator,
    config: NsgaConfig,
    objectives: ObjectiveSet,
    population: Option<Vec<Individual>>,
}

impl Nsga2 {
    /// Bind evaluator and configuration (canonical `il,dr` objectives).
    pub fn new(evaluator: Evaluator, config: NsgaConfig) -> Self {
        Nsga2 {
            evaluator,
            config,
            objectives: ObjectiveSet::canonical(),
            population: None,
        }
    }

    /// Replace the objective set. With the canonical `il,dr` set (the
    /// default) every selection decision — and therefore every RNG draw —
    /// is bit-identical to the historical hard-wired pair; extended sets
    /// append measures that selection then minimizes jointly. Call before
    /// loading the population so member vectors are computed once.
    #[must_use]
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        if let Some(pop) = &mut self.population {
            for ind in pop.iter_mut() {
                assign_objectives(&self.objectives, &self.evaluator, ind);
            }
        }
        self
    }

    /// The objective set of this run.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// Load and evaluate the initial population of named protections.
    ///
    /// # Errors
    /// [`EvoError::EmptyPopulation`], [`EvoError::IncompatibleIndividual`],
    /// or [`EvoError::InvalidConfig`].
    pub fn with_named_population<I>(mut self, items: I) -> Result<Self>
    where
        I: IntoIterator,
        I::Item: Into<(String, SubTable)>,
    {
        self.config.validate()?;
        let items: Vec<(String, SubTable)> = items.into_iter().map(Into::into).collect();
        if items.is_empty() {
            return Err(EvoError::EmptyPopulation);
        }
        for (name, data) in &items {
            self.evaluator
                .prepared()
                .check_compatible(data)
                .map_err(|source| EvoError::IncompatibleIndividual {
                    name: name.clone(),
                    source,
                })?;
        }
        let states = evaluate_all(&self.evaluator, &items, self.config.parallel_init);
        // the scalar score is unused by NSGA selection; Max is stored so
        // ScatterPoint labels remain meaningful in mixed reports
        let members = items
            .into_iter()
            .zip(states)
            .map(|((name, data), state)| {
                let mut ind = Individual::new(name, data, state, ScoreAggregator::Max);
                assign_objectives(&self.objectives, &self.evaluator, &mut ind);
                ind
            })
            .collect();
        self.population = Some(members);
        Ok(self)
    }

    /// Run to completion.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run(self) -> NsgaOutcome {
        self.run_with(|_| {})
    }

    /// Run to completion, streaming per-generation [`FrontStats`] to
    /// `observer`. The observer draws nothing from the RNG stream: a run
    /// with an observer is bit-identical to one without.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub fn run_with<F: FnMut(&FrontStats)>(self, mut observer: F) -> NsgaOutcome {
        let mut runner = NsgaRunner::start(self);
        while runner.step(&mut observer) {}
        runner.finish()
    }

    /// Bind an already-evaluated population (see
    /// [`crate::algorithm::Evolution::with_population`]): the island
    /// scheduler evaluates once and partitions the members.
    pub(crate) fn with_population(mut self, members: Vec<Individual>) -> Self {
        self.population = Some(members);
        self
    }

    /// Size of the loaded population (0 before loading).
    pub(crate) fn population_len(&self) -> usize {
        self.population.as_ref().map_or(0, Vec::len)
    }

    /// Disassemble for the island scheduler.
    pub(crate) fn into_parts(
        self,
    ) -> (Evaluator, NsgaConfig, ObjectiveSet, Option<Vec<Individual>>) {
        (
            self.evaluator,
            self.config,
            self.objectives,
            self.population,
        )
    }
}

/// Cache an individual's objective vector under `set`. The canonical set
/// short-circuits: [`Individual::new`] already cached the exact
/// `(il, dr)` pair, so the default path computes nothing extra.
fn assign_objectives(set: &ObjectiveSet, evaluator: &Evaluator, ind: &mut Individual) {
    if set.is_canonical() {
        return;
    }
    let vector = set.vector_of(&ObjectiveContext {
        state: ind.state(),
        prepared: evaluator.prepared(),
    });
    ind.set_objectives(vector);
}

/// The resumable state of a running NSGA-II loop, factored out of the
/// one-shot [`Nsga2::run_with`] so the island scheduler
/// ([`crate::islands`]) can advance a run in bounded generation chunks,
/// exchange elites at migration barriers, and finish it later. `start` +
/// `while step()` + `finish` replays the exact RNG stream of the
/// historical one-shot loop.
pub(crate) struct NsgaRunner {
    nsga: Nsga2,
    pop: Vec<Individual>,
    n: usize,
    lambda: usize,
    rng: StdRng,
    eval_counts: EvalCounts,
    archive: ParetoArchive,
    initial_front: Vec<ScatterPoint>,
    hv_series: Vec<f64>,
    gen: usize,
    halted: bool,
}

impl NsgaRunner {
    /// Snapshot the initial population and seed the loop state.
    ///
    /// # Panics
    /// Panics when no population was loaded (builder misuse).
    pub(crate) fn start(mut nsga: Nsga2) -> NsgaRunner {
        let pop = nsga
            .population
            .take()
            .expect("population must be loaded before run()");
        let cfg = nsga.config;
        let n = pop.len();
        let lambda = if cfg.offspring == 0 { n } else { cfg.offspring };
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x0045_A6A2);
        let eval_counts = EvalCounts {
            full: n,
            incremental: 0,
        };
        let mut archive = ParetoArchive::new();
        for ind in &pop {
            archive.offer(ScatterPoint::of(ind));
        }
        let initial_front = pareto_front_of(&pop);
        let hv_series = vec![front_metrics(&pop, &nsga.objectives.reference()).1];
        NsgaRunner {
            nsga,
            pop,
            n,
            lambda,
            rng,
            eval_counts,
            archive,
            initial_front,
            hv_series,
            gen: 0,
            halted: false,
        }
    }

    /// Whether every generation ran (or the schema degenerated).
    pub(crate) fn finished(&self) -> bool {
        self.halted || self.gen >= self.nsga.config.generations
    }

    /// Execute one generation unless the run is finished; returns whether
    /// a generation ran.
    pub(crate) fn step<F: FnMut(&FrontStats)>(&mut self, observer: &mut F) -> bool {
        if self.finished() {
            return false;
        }
        let cfg = self.nsga.config;
        let gen = self.gen;
        let pop = &mut self.pop;
        // debug verification: periodically recompute every survivor's
        // state from scratch and assert the cached patched state is
        // identical — patches-of-patches must reproduce the full
        // assessment bit for bit
        if cfg.incremental
            && cfg.incremental_refresh > 0
            && gen > 0
            && gen.is_multiple_of(cfg.incremental_refresh)
        {
            let tasks: Vec<EvalTask<'_>> =
                pop.iter().map(|ind| EvalTask::Full(&ind.data)).collect();
            let states = evaluate_tasks(&self.nsga.evaluator, &tasks, cfg.parallel_init);
            drop(tasks);
            self.eval_counts.full += pop.len();
            for (ind, state) in pop.iter().zip(states) {
                assert_eq!(
                    *ind.assessment(),
                    state.assessment,
                    "incremental nsga state diverged from the full assessment"
                );
            }
        }
        let (rank_of, crowd_of) = rank_and_crowd(pop);
        let rng = &mut self.rng;
        let tournament = |rng: &mut StdRng, pop: &[Individual]| -> usize {
            let a = rng.gen_range(0..pop.len());
            let b = rng.gen_range(0..pop.len());
            pick(a, b, &rank_of, &crowd_of, rng)
        };

        // each pending child remembers its primary parent and, when the
        // incremental path is on, the patch relating it to that parent
        let mut children: Vec<(String, SubTable, Option<Patch>, usize)> =
            Vec::with_capacity(self.lambda + 1);
        while children.len() < self.lambda {
            let use_crossover = pop.len() >= 2 && rng.gen::<f64>() < cfg.crossover_prob;
            if use_crossover {
                let p1 = tournament(rng, pop);
                let mut p2 = tournament(rng, pop);
                if p2 == p1 {
                    p2 = (p1 + 1) % pop.len();
                }
                let (z1, z2, (s, r)) = crossover(&pop[p1].data, &pop[p2].data, rng);
                let (patch1, patch2) = if cfg.incremental {
                    let old1: Vec<_> = (s..=r).map(|p| pop[p1].data.get_flat(p)).collect();
                    let old2: Vec<_> = (s..=r).map(|p| pop[p2].data.get_flat(p)).collect();
                    (
                        Some(Patch::flat_range(s, r, old1)),
                        Some(Patch::flat_range(s, r, old2)),
                    )
                } else {
                    (None, None)
                };
                children.push((format!("nsga-x{gen}"), z1, patch1, p1));
                children.push((format!("nsga-x{gen}"), z2, patch2, p2));
            } else {
                let p = tournament(rng, pop);
                let mut data = pop[p].data.clone();
                if let Some(mu) = mutate(&mut data, rng) {
                    let patch = cfg
                        .incremental
                        .then(|| Patch::cell(mu.row, mu.attr, mu.old));
                    children.push((format!("nsga-m{gen}"), data, patch, p));
                } else {
                    // degenerate schema (all attributes single-category):
                    // crossover cannot help either; stop producing
                    break;
                }
            }
        }
        children.truncate(self.lambda);
        if children.is_empty() {
            self.halted = true;
            return false;
        }

        let tasks: Vec<EvalTask<'_>> = children
            .iter()
            .map(|(_, data, patch, parent)| match patch {
                Some(patch) => EvalTask::Patch {
                    prev: pop[*parent].state(),
                    masked: data,
                    patch,
                },
                None => EvalTask::Full(data),
            })
            .collect();
        let states = evaluate_tasks(&self.nsga.evaluator, &tasks, cfg.parallel_init);
        drop(tasks);
        for (_, _, patch, _) in &children {
            match patch {
                Some(_) => self.eval_counts.incremental += 1,
                None => self.eval_counts.full += 1,
            }
        }
        for ((name, data, _, _), state) in children.into_iter().zip(states) {
            let mut ind = Individual::new(name, data, state, ScoreAggregator::Max);
            assign_objectives(&self.nsga.objectives, &self.nsga.evaluator, &mut ind);
            self.archive.offer(ScatterPoint::of(&ind));
            pop.push(ind);
        }
        self.pop = environmental_selection(std::mem::take(&mut self.pop), self.n);
        self.gen += 1;
        let (front_size, hv, ideal) = front_stats(&self.pop, &self.nsga.objectives.reference());
        self.hv_series.push(hv);
        observer(&FrontStats {
            generation: self.gen,
            front_size,
            hypervolume: hv,
            ideal,
        });
        true
    }

    /// Run at most `max` generations; returns how many actually ran.
    pub(crate) fn run_chunk<F: FnMut(&FrontStats)>(
        &mut self,
        max: usize,
        observer: &mut F,
    ) -> usize {
        let mut ran = 0;
        while ran < max && self.step(observer) {
            ran += 1;
        }
        ran
    }

    /// Generations executed so far.
    pub(crate) fn generations_run(&self) -> usize {
        self.gen
    }

    /// Clones of the `count` best members by (rank ascending, crowding
    /// descending, index ascending) — the deterministic elite.
    pub(crate) fn export_elite(&self, count: usize) -> Vec<Individual> {
        let (rank_of, crowd_of) = rank_and_crowd(&self.pop);
        let mut order: Vec<usize> = (0..self.pop.len()).collect();
        order.sort_by(|&a, &b| {
            rank_of[a]
                .cmp(&rank_of[b])
                .then_with(|| {
                    crowd_of[b]
                        .partial_cmp(&crowd_of[a])
                        .expect("crowding comparable")
                })
                .then_with(|| a.cmp(&b))
        });
        order
            .into_iter()
            .take(count.min(self.pop.len()))
            .map(|i| self.pop[i].clone())
            .collect()
    }

    /// Replace the worst members (rank descending, crowding ascending,
    /// index descending — the deterministic anti-elite) with `immigrants`;
    /// at most `len - 1` are replaced so a native always survives.
    pub(crate) fn migrate_in(&mut self, immigrants: Vec<Individual>) {
        if immigrants.is_empty() {
            return;
        }
        let n = self.pop.len();
        let take = immigrants.len().min(n.saturating_sub(1));
        let (rank_of, crowd_of) = rank_and_crowd(&self.pop);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            rank_of[b]
                .cmp(&rank_of[a])
                .then_with(|| {
                    crowd_of[a]
                        .partial_cmp(&crowd_of[b])
                        .expect("crowding comparable")
                })
                .then_with(|| b.cmp(&a))
        });
        for (&slot, immigrant) in order.iter().zip(immigrants.into_iter().take(take)) {
            self.archive.offer(ScatterPoint::of(&immigrant));
            self.pop[slot] = immigrant;
        }
    }

    /// Assemble the outcome; identical to what the one-shot loop returned.
    pub(crate) fn finish(self) -> NsgaOutcome {
        let mut archive_front = self.archive.front();
        archive_front.sort_by(|a, b| a.il.partial_cmp(&b.il).expect("finite"));
        let front_idx = front_indices(&self.pop);
        NsgaOutcome {
            front: front_idx
                .iter()
                .map(|&i| ScatterPoint::of(&self.pop[i]))
                .collect(),
            front_members: front_idx.into_iter().map(|i| self.pop[i].clone()).collect(),
            initial_front: self.initial_front,
            archive_front,
            hypervolume_series: self.hv_series,
            evaluations: self.eval_counts.total(),
            eval_counts: self.eval_counts,
            objectives: self.nsga.objectives,
        }
    }
}

/// Size and hypervolume of a population's non-dominated front.
pub(crate) fn front_metrics(pop: &[Individual], reference: &ObjectiveVector) -> (usize, f64) {
    let (size, hv, _) = front_stats(pop, reference);
    (size, hv)
}

/// Size, hypervolume, and ideal point of a population's non-dominated
/// front.
fn front_stats(pop: &[Individual], reference: &ObjectiveVector) -> (usize, f64, ObjectiveVector) {
    let pts: Vec<ObjectiveVector> = pareto_front_of(pop).iter().map(|p| p.objectives).collect();
    (
        pts.len(),
        hypervolume_vec(&pts, reference),
        ideal_point(&pts, reference.len()),
    )
}

/// Per-objective minimum over a set of points (the reference point itself
/// for an empty set).
pub(crate) fn ideal_point(points: &[ObjectiveVector], dims: usize) -> ObjectiveVector {
    let mut best = vec![f64::INFINITY; dims];
    for p in points {
        for (slot, k) in best.iter_mut().zip(0..dims) {
            *slot = slot.min(p[k]);
        }
    }
    if points.is_empty() {
        best.fill(100.0);
    }
    ObjectiveVector::from_slice(&best)
}

fn rank_and_crowd(pop: &[Individual]) -> (Vec<usize>, Vec<f64>) {
    let objs: Vec<ObjectiveVector> = pop.iter().map(Individual::objectives).collect();
    let fronts = non_dominated_sort_vec(&objs);
    let mut rank_of = vec![0usize; pop.len()];
    let mut crowd_of = vec![0f64; pop.len()];
    for (r, front) in fronts.iter().enumerate() {
        let crowd = crowding_distance_vec(&objs, front);
        for (&i, &c) in front.iter().zip(&crowd) {
            rank_of[i] = r;
            crowd_of[i] = c;
        }
    }
    (rank_of, crowd_of)
}

fn pick(a: usize, b: usize, rank_of: &[usize], crowd_of: &[f64], rng: &mut StdRng) -> usize {
    match rank_of[a].cmp(&rank_of[b]) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if crowd_of[a] > crowd_of[b] {
                a
            } else if crowd_of[b] > crowd_of[a] {
                b
            } else if rng.gen() {
                a
            } else {
                b
            }
        }
    }
}

/// Keep the `n` best of `pop` by (rank, crowding): whole fronts first, the
/// overflowing front truncated by descending crowding distance.
fn environmental_selection(pop: Vec<Individual>, n: usize) -> Vec<Individual> {
    let objs: Vec<ObjectiveVector> = pop.iter().map(Individual::objectives).collect();
    let fronts = non_dominated_sort_vec(&objs);
    let mut keep: Vec<usize> = Vec::with_capacity(n);
    for front in fronts {
        if keep.len() + front.len() <= n {
            keep.extend(front);
        } else {
            let crowd = crowding_distance_vec(&objs, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&x, &y| {
                crowd[y]
                    .partial_cmp(&crowd[x])
                    .expect("crowding comparable")
            });
            keep.extend(order.into_iter().take(n - keep.len()).map(|w| front[w]));
            break;
        }
    }
    keep.sort_unstable();
    let mut keep_flags = vec![false; pop.len()];
    for &i in &keep {
        keep_flags[i] = true;
    }
    pop.into_iter()
        .zip(keep_flags)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::MetricConfig;
    use cdp_sdc::{build_population, SuiteConfig};

    #[test]
    fn sort_splits_fronts_correctly() {
        // (1,1) dominates everything; (2,3) and (3,2) incomparable; (4,4) last
        let objs = vec![(2.0, 3.0), (1.0, 1.0), (3.0, 2.0), (4.0, 4.0)];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![1]);
        assert_eq!(
            {
                let mut f = fronts[1].clone();
                f.sort();
                f
            },
            vec![0, 2]
        );
        assert_eq!(fronts[2], vec![3]);
    }

    #[test]
    fn sort_of_identical_points_is_one_front() {
        let objs = vec![(1.0, 1.0); 5];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 5);
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let objs = vec![(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (4.0, 2.0), (5.0, 1.0)];
        let front: Vec<usize> = (0..5).collect();
        let d = crowding_distance(&objs, &front);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        for x in &d[1..4] {
            assert!(x.is_finite());
            assert!(*x > 0.0);
        }
        // evenly spaced interior points share the same crowding
        assert!((d[1] - d[3]).abs() < 1e-12);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let objs = vec![(1.0, 2.0), (2.0, 1.0)];
        let d = crowding_distance(&objs, &[0, 1]);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn hypervolume_basics() {
        let r = (100.0, 100.0);
        assert_eq!(hypervolume(&[], r), 0.0);
        assert_eq!(hypervolume(&[(100.0, 0.0)], r), 0.0); // at reference edge
        assert!((hypervolume(&[(0.0, 0.0)], r) - 10_000.0).abs() < 1e-9);
        // two incomparable points: union of rectangles
        let hv = hypervolume(&[(20.0, 40.0), (40.0, 20.0)], r);
        // (80*60) + (60*20) = 4800 + 1200
        assert!((hv - 6000.0).abs() < 1e-9);
        // dominated point adds nothing
        let hv2 = hypervolume(&[(20.0, 40.0), (40.0, 20.0), (50.0, 50.0)], r);
        assert!((hv2 - hv).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_grows_with_better_points() {
        let r = (100.0, 100.0);
        let worse = hypervolume(&[(30.0, 30.0)], r);
        let better = hypervolume(&[(20.0, 20.0)], r);
        assert!(better > worse);
    }

    #[test]
    fn hypervolume_vec_matches_the_2d_sweep_bitwise() {
        let pts = [(20.0, 40.0), (40.0, 20.0), (50.0, 50.0), (3.25, 97.5)];
        let tuple = hypervolume(&pts, (100.0, 100.0));
        let vecs: Vec<ObjectiveVector> = pts
            .iter()
            .map(|&(a, b)| ObjectiveVector::pair(a, b))
            .collect();
        let vec = hypervolume_vec(&vecs, &ObjectiveVector::pair(100.0, 100.0));
        assert_eq!(tuple.to_bits(), vec.to_bits());
    }

    #[test]
    fn hypervolume_3d_by_recursive_slicing() {
        let r = ObjectiveVector::from_slice(&[100.0, 100.0, 100.0]);
        assert_eq!(hypervolume_vec(&[], &r), 0.0);
        // one box: 100³
        let one = hypervolume_vec(&[ObjectiveVector::from_slice(&[0.0, 0.0, 0.0])], &r);
        assert!((one - 1_000_000.0).abs() < 1e-6);
        // union of two boxes minus their intersection:
        // 80·60·50 + 60·80·50 − 60·60·50 = 300000
        let two = hypervolume_vec(
            &[
                ObjectiveVector::from_slice(&[20.0, 40.0, 50.0]),
                ObjectiveVector::from_slice(&[40.0, 20.0, 50.0]),
            ],
            &r,
        );
        assert!((two - 300_000.0).abs() < 1e-6, "got {two}");
        // a dominated point adds nothing
        let three = hypervolume_vec(
            &[
                ObjectiveVector::from_slice(&[20.0, 40.0, 50.0]),
                ObjectiveVector::from_slice(&[40.0, 20.0, 50.0]),
                ObjectiveVector::from_slice(&[60.0, 60.0, 60.0]),
            ],
            &r,
        );
        assert!((three - two).abs() < 1e-9);
    }

    #[test]
    fn hypervolume_1d_is_the_span() {
        let r = ObjectiveVector::from_slice(&[100.0]);
        let pts = [
            ObjectiveVector::from_slice(&[30.0]),
            ObjectiveVector::from_slice(&[70.0]),
        ];
        assert_eq!(hypervolume_vec(&pts, &r), 70.0);
    }

    #[test]
    fn three_objective_run_minimizes_jointly_and_stays_deterministic() {
        let run = || {
            let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(31).with_records(60));
            let pop = build_population(&ds, &SuiteConfig::small(), 31).unwrap();
            let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
            let cfg = NsgaConfig {
                generations: 5,
                seed: 31,
                ..NsgaConfig::default()
            };
            Nsga2::new(ev, cfg)
                .with_objectives(cdp_metrics::ObjectiveSet::parse("il,dr,eps").unwrap())
                .with_named_population(pop)
                .unwrap()
                .run()
        };
        let out = run();
        assert_eq!(out.objectives.keys(), ["il", "dr", "eps"]);
        // every front point carries a 3-D vector whose prefix is (il, dr)
        for p in &out.front {
            assert_eq!(p.objectives.len(), 3);
            assert_eq!(p.objectives[0].to_bits(), p.il.to_bits());
            assert_eq!(p.objectives[1].to_bits(), p.dr.to_bits());
            assert!((0.0..100.0).contains(&p.objectives[2]));
        }
        // mutual non-dominance in the full 3-D space
        for a in &out.front {
            for b in &out.front {
                assert!(!a.objectives.dominates(&b.objectives));
            }
        }
        // a front may keep 2-D-dominated points that win on the third axis;
        // the run stays bit-deterministic per seed
        let again = run();
        assert_eq!(out.front, again.front);
        assert_eq!(out.hypervolume_series, again.hypervolume_series);
    }

    fn small_run(seed: u64, generations: usize) -> NsgaOutcome {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(seed).with_records(60));
        let pop = build_population(&ds, &SuiteConfig::small(), seed).unwrap();
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let cfg = NsgaConfig {
            generations,
            seed,
            ..NsgaConfig::default()
        };
        Nsga2::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    }

    #[test]
    fn run_produces_mutually_nondominated_front() {
        let out = small_run(11, 8);
        for a in &out.front {
            for b in &out.front {
                let dominates = a.il <= b.il && a.dr <= b.dr && (a.il < b.il || a.dr < b.dr);
                assert!(!dominates, "front contains dominated point");
            }
            assert!((0.0..=100.0).contains(&a.il));
            assert!((0.0..=100.0).contains(&a.dr));
        }
        assert_eq!(out.hypervolume_series.len(), 9);
    }

    #[test]
    fn archive_hypervolume_never_regresses() {
        let out = small_run(12, 8);
        let initial: Vec<(f64, f64)> = out.initial_front.iter().map(|p| (p.il, p.dr)).collect();
        let archive: Vec<(f64, f64)> = out.archive_front.iter().map(|p| (p.il, p.dr)).collect();
        let hv_initial = hypervolume(&initial, HV_REFERENCE);
        let hv_archive = hypervolume(&archive, HV_REFERENCE);
        assert!(
            hv_archive >= hv_initial - 1e-9,
            "archive {hv_archive} < initial {hv_initial}"
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = small_run(13, 5);
        let b = small_run(13, 5);
        assert_eq!(a.front.len(), b.front.len());
        for (x, y) in a.front.iter().zip(&b.front) {
            assert_eq!(x.il, y.il);
            assert_eq!(x.dr, y.dr);
        }
        assert_eq!(a.hypervolume_series, b.hypervolume_series);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn incremental_offspring_match_the_full_run_exactly() {
        let run = |incremental: bool| {
            let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(15).with_records(60));
            let pop = build_population(&ds, &SuiteConfig::small(), 15).unwrap();
            let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
            let cfg = NsgaConfig {
                generations: 6,
                seed: 15,
                incremental,
                ..NsgaConfig::default()
            };
            Nsga2::new(ev, cfg)
                .with_named_population(pop)
                .unwrap()
                .run()
        };
        let full = run(false);
        let inc = run(true);
        assert_eq!(full.eval_counts.incremental, 0);
        assert_eq!(full.eval_counts.total(), full.evaluations);
        // only the initial population pays a full assessment
        assert!(inc.eval_counts.incremental > 0);
        assert!(inc.eval_counts.full * 2 <= full.eval_counts.full);
        assert_eq!(inc.eval_counts.total(), inc.evaluations);
        // patched assessments are bit-identical to full ones, so the two
        // runs make identical decisions all the way down
        assert_eq!(full.hypervolume_series, inc.hypervolume_series);
        assert_eq!(full.front.len(), inc.front.len());
        for (a, b) in full.front.iter().zip(&inc.front) {
            assert_eq!(a.il, b.il);
            assert_eq!(a.dr, b.dr);
        }
        for (a, b) in full.front_members.iter().zip(&inc.front_members) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn incremental_refresh_cross_checks_the_population() {
        // the refresh knob is a debug verification: every K generations the
        // whole population is fully re-assessed and each cached state
        // asserted identical (the run aborts on divergence)
        let run = |refresh: usize| {
            let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(16).with_records(50));
            let pop = build_population(&ds, &SuiteConfig::small(), 16).unwrap();
            let n = pop.len();
            let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
            let cfg = NsgaConfig {
                generations: 8,
                seed: 16,
                incremental: true,
                incremental_refresh: refresh,
                ..NsgaConfig::default()
            };
            let out = Nsga2::new(ev, cfg)
                .with_named_population(pop)
                .unwrap()
                .run();
            (n, out)
        };
        let (n, never) = run(0);
        assert_eq!(
            never.eval_counts.full, n,
            "refresh=0 must only pay the initial assessments"
        );
        let (n, every3) = run(3);
        // cross-checks at generations 3 and 6 fully re-assess the whole
        // population (and passed, or the run would have panicked)
        assert_eq!(every3.eval_counts.full, n + 2 * n);
        assert_eq!(every3.eval_counts.total(), every3.evaluations);
        // verification never changes the outcome
        assert_eq!(never.hypervolume_series, every3.hypervolume_series);
    }

    #[test]
    fn config_guards() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let bad = NsgaConfig {
            generations: 0,
            ..NsgaConfig::default()
        };
        let item: Vec<(String, SubTable)> = vec![("a".into(), ds.protected_subtable())];
        assert!(Nsga2::new(ev, bad).with_named_population(item).is_err());
    }

    #[test]
    fn empty_population_is_rejected() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let none: Vec<(String, SubTable)> = vec![];
        assert!(matches!(
            Nsga2::new(ev, NsgaConfig::default()).with_named_population(none),
            Err(EvoError::EmptyPopulation)
        ));
    }
}
