//! Two-point crossover at the category level (§2.2.2).
//!
//! The paper flattens a protected file into its sequence of values, draws a
//! first point `s` uniformly, a second point `r` uniformly in
//! `[s, len − 1]`, and swaps the whole segment `[s, r]` between the two
//! parents (a single value when `s = r`). Offspring `Z1` keeps parent `X`'s
//! prefix/suffix, `Z2` keeps `Y`'s.

use cdp_dataset::SubTable;
use rand::Rng;

/// Crossover with explicit cut points (inclusive segment `[s, r]`).
///
/// # Panics
/// Panics when the parents have different shapes or `s > r`/`r` is out of
/// bounds — caller bugs, not data conditions.
pub fn crossover_at(x: &SubTable, y: &SubTable, s: usize, r: usize) -> (SubTable, SubTable) {
    let mut z1 = x.clone();
    let mut z2 = y.clone();
    z1.swap_flat_range(&mut z2, s, r);
    // z1 now holds y's segment inside x's frame; z2 the converse — but
    // swap_flat_range mutated z1 (clone of x) and z2 (clone of y) in place,
    // which is exactly Z1 = x-prefix + y-segment + x-suffix and vice versa.
    (z1, z2)
}

/// Crossover with random cut points, returning the offspring and the chosen
/// `(s, r)`.
pub fn crossover<R: Rng + ?Sized>(
    x: &SubTable,
    y: &SubTable,
    rng: &mut R,
) -> (SubTable, SubTable, (usize, usize)) {
    let len = x.flat_len();
    debug_assert_eq!(len, y.flat_len());
    let s = rng.gen_range(0..len);
    let r = rng.gen_range(s..len);
    let (z1, z2) = crossover_at(x, y, s, r);
    (z1, z2, (s, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn parents() -> (SubTable, SubTable) {
        let a = DatasetKind::Flare
            .generate(&GeneratorConfig::seeded(5).with_records(40))
            .protected_subtable();
        let b = DatasetKind::Flare
            .generate(&GeneratorConfig::seeded(6).with_records(40))
            .protected_subtable();
        (a, b)
    }

    #[test]
    fn segment_is_swapped_rest_kept() {
        let (x, y) = parents();
        let (s, r) = (10, 25);
        let (z1, z2) = crossover_at(&x, &y, s, r);
        for p in 0..x.flat_len() {
            if (s..=r).contains(&p) {
                assert_eq!(z1.get_flat(p), y.get_flat(p));
                assert_eq!(z2.get_flat(p), x.get_flat(p));
            } else {
                assert_eq!(z1.get_flat(p), x.get_flat(p));
                assert_eq!(z2.get_flat(p), y.get_flat(p));
            }
        }
    }

    #[test]
    fn single_point_swap_when_s_equals_r() {
        let (x, y) = parents();
        let (z1, z2) = crossover_at(&x, &y, 7, 7);
        assert_eq!(z1.get_flat(7), y.get_flat(7));
        assert_eq!(z2.get_flat(7), x.get_flat(7));
        assert!(x.hamming(&z1) <= 1);
        assert!(y.hamming(&z2) <= 1);
    }

    #[test]
    fn offspring_preserve_cell_multiset_per_position() {
        // at every flat position, {z1, z2} values == {x, y} values
        let (x, y) = parents();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let (z1, z2, _) = crossover(&x, &y, &mut rng);
            for p in 0..x.flat_len() {
                let mut before = [x.get_flat(p), y.get_flat(p)];
                let mut after = [z1.get_flat(p), z2.get_flat(p)];
                before.sort_unstable();
                after.sort_unstable();
                assert_eq!(before, after);
            }
        }
    }

    #[test]
    fn random_points_are_ordered_and_in_bounds() {
        let (x, y) = parents();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let (_, _, (s, r)) = crossover(&x, &y, &mut rng);
            assert!(s <= r);
            assert!(r < x.flat_len());
        }
    }

    #[test]
    fn identical_parents_produce_identical_offspring() {
        let (x, _) = parents();
        let mut rng = StdRng::seed_from_u64(3);
        let (z1, z2, _) = crossover(&x, &x, &mut rng);
        assert_eq!(x.hamming(&z1), 0);
        assert_eq!(x.hamming(&z2), 0);
    }

    #[test]
    fn offspring_remain_valid() {
        let (x, y) = parents();
        let mut rng = StdRng::seed_from_u64(4);
        let (z1, z2, _) = crossover(&x, &y, &mut rng);
        z1.validate().unwrap();
        z2.validate().unwrap();
    }
}
