//! Genetic operators (§2.2 of the paper).

mod crossover;
mod mutation;

pub use crossover::{crossover, crossover_at};
pub use mutation::{mutate, Mutation};

/// Which operator a generation applied (both rates are 0.5 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Single-cell random replacement.
    Mutation,
    /// Two-point crossover at the value level.
    Crossover,
}

impl OperatorKind {
    /// Display name used by telemetry and benches.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Mutation => "mutation",
            OperatorKind::Crossover => "crossover",
        }
    }
}
