//! Mutation (§2.2.1): pick a random gene (cell) and replace it with a
//! random value among the valid categories of its variable.
//!
//! The paper's wording — "changing it by a randomly selected value among
//! all valid values" — is implemented as a draw from the categories
//! *excluding* the current one, so a mutation always changes the genotype
//! (a draw including the current value would waste ~1/c of iterations as
//! no-ops without affecting the distribution of accepted offspring, since
//! elitist replacement keeps the parent on ties anyway).

use cdp_dataset::{Code, SubTable};
use rand::Rng;

/// The record of a performed mutation, as needed by the incremental
/// evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mutation {
    /// Mutated record index.
    pub row: usize,
    /// Mutated protected-attribute index (local to the sub-table).
    pub attr: usize,
    /// Value before the mutation.
    pub old: Code,
    /// Value after the mutation.
    pub new: Code,
}

/// Mutate one cell of `data` in place. Returns `None` when no attribute has
/// at least two categories (mutation is impossible).
pub fn mutate<R: Rng + ?Sized>(data: &mut SubTable, rng: &mut R) -> Option<Mutation> {
    let flat = data.flat_len();
    if flat == 0 {
        return None;
    }
    // Retry over positions: attributes with one category cannot change.
    for _ in 0..flat.max(16) {
        let pos = rng.gen_range(0..flat);
        let (row, attr) = data.coords_of_flat(pos);
        let c = data.attr(attr).n_categories();
        if c < 2 {
            continue;
        }
        let old = data.get(row, attr);
        // draw uniformly among the other c-1 categories
        let draw = rng.gen_range(0..c - 1) as Code;
        let new = if draw >= old { draw + 1 } else { draw };
        data.set(row, attr, new);
        return Some(Mutation {
            row,
            attr,
            old,
            new,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sub() -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(2).with_records(50))
            .protected_subtable()
    }

    #[test]
    fn mutation_changes_exactly_one_cell() {
        let original = sub();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut m = original.clone();
            let mu = mutate(&mut m, &mut rng).unwrap();
            assert_eq!(original.hamming(&m), 1);
            assert_eq!(m.get(mu.row, mu.attr), mu.new);
            assert_eq!(original.get(mu.row, mu.attr), mu.old);
            assert_ne!(mu.old, mu.new);
        }
    }

    #[test]
    fn mutated_value_is_valid() {
        let mut m = sub();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            mutate(&mut m, &mut rng).unwrap();
        }
        m.validate().unwrap();
    }

    #[test]
    fn mutation_covers_all_cells_eventually() {
        let original = sub();
        let mut rng = StdRng::seed_from_u64(3);
        let mut touched = vec![false; original.flat_len()];
        for _ in 0..original.flat_len() * 20 {
            let mut m = original.clone();
            if let Some(mu) = mutate(&mut m, &mut rng) {
                touched[mu.row * original.n_attrs() + mu.attr] = true;
            }
        }
        let coverage = touched.iter().filter(|&&t| t).count() as f64 / touched.len() as f64;
        assert!(coverage > 0.95, "coverage only {coverage}");
    }

    #[test]
    fn new_value_is_uniform_over_other_categories() {
        // attribute 1 (MARITAL) has 7 categories; fix the cell and count
        let original = sub();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 7];
        let mut trials = 0;
        while trials < 3000 {
            let mut m = original.clone();
            if let Some(mu) = mutate(&mut m, &mut rng) {
                if mu.attr == 1 && mu.row == 0 {
                    counts[mu.new as usize] += 1;
                }
            }
            trials += 1;
        }
        let old = original.get(0, 1) as usize;
        assert_eq!(counts[old], 0, "current value must never be drawn");
    }
}
