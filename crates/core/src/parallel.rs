//! Parallel evaluation of the initial population.
//!
//! Evaluating ~100 protections at ~O(n²) each dominates experiment startup;
//! the evaluator is immutable after construction, so the work parallelizes
//! embarrassingly with crossbeam's scoped threads (no `'static` bounds, no
//! cloning of the evaluator).

use cdp_dataset::SubTable;
use cdp_metrics::{EvalState, Evaluator};

/// Evaluate every named protection, preserving order. `parallel = false`
/// degrades to a serial loop (used by the ablation bench as the baseline).
pub fn evaluate_all(
    evaluator: &Evaluator,
    items: &[(String, SubTable)],
    parallel: bool,
) -> Vec<EvalState> {
    if !parallel || items.len() < 2 {
        return items.iter().map(|(_, d)| evaluator.assess(d)).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<Option<EvalState>> = vec![None; items.len()];
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, (_, data)) in slot_chunk.iter_mut().zip(item_chunk.iter()) {
                    *slot = Some(evaluator.assess(data));
                }
            });
        }
    })
    .expect("evaluation workers must not panic");
    out.into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::MetricConfig;
    use cdp_sdc::{build_population, SuiteConfig};

    #[test]
    fn parallel_matches_serial() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(3).with_records(60));
        let pop = build_population(&ds, &SuiteConfig::small(), 3).unwrap();
        let items: Vec<(String, SubTable)> = pop.into_iter().map(Into::into).collect();
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let serial = evaluate_all(&ev, &items, false);
        let par = evaluate_all(&ev, &items, true);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(par.iter()) {
            assert_eq!(a.assessment, b.assessment);
        }
    }

    #[test]
    fn single_item_short_circuits() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let sub = ds.protected_subtable();
        let ev = Evaluator::new(&sub, MetricConfig::default()).unwrap();
        let items = vec![("id".to_string(), sub)];
        let out = evaluate_all(&ev, &items, true);
        assert_eq!(out.len(), 1);
        assert!(out[0].assessment.il() < 1e-9);
    }
}
