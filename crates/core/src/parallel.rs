//! Parallel fitness evaluation: the initial population, and per-generation
//! offspring batches.
//!
//! Evaluating ~100 protections at ~O(n²) each dominates experiment startup;
//! the evaluator is immutable after construction, so the work parallelizes
//! embarrassingly with crossbeam's scoped threads (no `'static` bounds, no
//! cloning of the evaluator). The same property covers the per-generation
//! work: [`evaluate_tasks`] scores a mixed batch of full assessments and
//! patch-based re-assessments ([`EvalTask`]), which is how the two
//! crossover offspring of a scalar generation and the λ offspring of an
//! NSGA-II generation run concurrently. Evaluation draws no RNG, so a
//! parallel run is bit-identical to a serial one.

use cdp_dataset::SubTable;
use cdp_metrics::{EvalState, Evaluator, Patch};

/// Row count under which spawning threads for an offspring pair costs more
/// than it saves (thread startup is ~tens of µs; an assessment of a file
/// this small is of the same order).
pub const MIN_PARALLEL_EVAL_ROWS: usize = 256;

/// One fitness evaluation to perform.
pub enum EvalTask<'a> {
    /// Full O(n²) assessment of a masked file.
    Full(&'a SubTable),
    /// Patch-based re-assessment from a cached parent state.
    Patch {
        /// The parent's cached evaluation state.
        prev: &'a EvalState,
        /// The offspring file (already carrying the new values).
        masked: &'a SubTable,
        /// The cells the operator changed.
        patch: &'a Patch,
    },
}

impl EvalTask<'_> {
    fn run(&self, evaluator: &Evaluator) -> EvalState {
        match self {
            EvalTask::Full(data) => evaluator.assess(data),
            EvalTask::Patch {
                prev,
                masked,
                patch,
            } => evaluator.reassess(prev, masked, patch),
        }
    }
}

/// Evaluate a batch of tasks, preserving order. `parallel = false` (or a
/// batch of one) degrades to a serial loop.
pub fn evaluate_tasks(
    evaluator: &Evaluator,
    tasks: &[EvalTask<'_>],
    parallel: bool,
) -> Vec<EvalState> {
    if !parallel || tasks.len() < 2 {
        return tasks.iter().map(|t| t.run(evaluator)).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(tasks.len());
    let chunk = tasks.len().div_ceil(workers);
    let mut out: Vec<Option<EvalState>> = Vec::with_capacity(tasks.len());
    out.resize_with(tasks.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, task_chunk) in out.chunks_mut(chunk).zip(tasks.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, task) in slot_chunk.iter_mut().zip(task_chunk.iter()) {
                    *slot = Some(task.run(evaluator));
                }
            });
        }
    })
    .expect("evaluation workers must not panic");
    out.into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// Evaluate every named protection, preserving order. `parallel = false`
/// degrades to a serial loop (used by the ablation bench as the baseline).
/// A thin wrapper over [`evaluate_tasks`]: one chunked scoped-thread
/// engine serves both the initial population and per-generation batches.
pub fn evaluate_all(
    evaluator: &Evaluator,
    items: &[(String, SubTable)],
    parallel: bool,
) -> Vec<EvalState> {
    let tasks: Vec<EvalTask<'_>> = items.iter().map(|(_, d)| EvalTask::Full(d)).collect();
    evaluate_tasks(evaluator, &tasks, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::MetricConfig;
    use cdp_sdc::{build_population, SuiteConfig};

    #[test]
    fn parallel_matches_serial() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(3).with_records(60));
        let pop = build_population(&ds, &SuiteConfig::small(), 3).unwrap();
        let items: Vec<(String, SubTable)> = pop.into_iter().map(Into::into).collect();
        let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
        let serial = evaluate_all(&ev, &items, false);
        let par = evaluate_all(&ev, &items, true);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(par.iter()) {
            assert_eq!(a.assessment, b.assessment);
        }
    }

    #[test]
    fn mixed_task_batch_matches_direct_calls() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(4).with_records(80));
        let sub = ds.protected_subtable();
        let ev = Evaluator::new(&sub, MetricConfig::default()).unwrap();
        let state = ev.assess(&sub);
        let mut mutated = sub.clone();
        let old = mutated.get(7, 1);
        let cats = sub.attr(1).n_categories() as cdp_dataset::Code;
        mutated.set(7, 1, (old + 1) % cats);
        let patch = Patch::cell(7, 1, old);
        let tasks = [
            EvalTask::Full(&mutated),
            EvalTask::Patch {
                prev: &state,
                masked: &mutated,
                patch: &patch,
            },
        ];
        for parallel in [false, true] {
            let out = evaluate_tasks(&ev, &tasks, parallel);
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].assessment, ev.assess(&mutated).assessment);
            assert_eq!(
                out[1].assessment,
                ev.reassess(&state, &mutated, &patch).assessment
            );
        }
    }

    #[test]
    fn single_item_short_circuits() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let sub = ds.protected_subtable();
        let ev = Evaluator::new(&sub, MetricConfig::default()).unwrap();
        let items = vec![("id".to_string(), sub)];
        let out = evaluate_all(&ev, &items, true);
        assert_eq!(out.len(), 1);
        assert!(out[0].assessment.il() < 1e-9);
    }
}
