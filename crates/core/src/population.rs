//! The population: individuals kept sorted ascending by score.

use crate::individual::Individual;
use crate::telemetry::ScatterPoint;

/// A population sorted so that `members()[0]` is the best individual
/// (minimal score), as §2.4 of the paper assumes.
///
/// The score vector is cached and kept in sync by every mutating method:
/// the evolution loop reads it three times per iteration (two selections
/// and the trace snapshot), so materializing it on demand was a
/// per-generation allocation hotspot.
#[derive(Debug, Clone)]
pub struct Population {
    members: Vec<Individual>,
    scores: Vec<f64>,
}

impl Population {
    /// Build a population (sorts the members).
    pub fn new(mut members: Vec<Individual>) -> Self {
        members.sort_by(|a, b| a.score().partial_cmp(&b.score()).expect("finite scores"));
        let scores = members.iter().map(Individual::score).collect();
        Population { members, scores }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Sorted members (ascending score).
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Member accessor.
    pub fn get(&self, i: usize) -> &Individual {
        &self.members[i]
    }

    /// Replace member `i` and restore the sort order.
    pub fn replace(&mut self, i: usize, ind: Individual) {
        self.replace_unsorted(i, ind);
        self.resort();
    }

    /// Replace member `i` without re-sorting. Callers performing several
    /// replacements in one generation (the crossover duels) batch them and
    /// call [`Population::resort`] once, keeping indices stable in between.
    pub fn replace_unsorted(&mut self, i: usize, ind: Individual) {
        self.scores[i] = ind.score();
        self.members[i] = ind;
    }

    /// Restore the ascending-score order after unsorted replacements.
    pub fn resort(&mut self) {
        self.members
            .sort_by(|a, b| a.score().partial_cmp(&b.score()).expect("finite scores"));
        for (slot, member) in self.scores.iter_mut().zip(&self.members) {
            *slot = member.score();
        }
    }

    /// All scores, sorted ascending (cached; no allocation).
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// (IL, DR) snapshot of the whole population.
    pub fn scatter(&self) -> Vec<ScatterPoint> {
        self.members.iter().map(ScatterPoint::of).collect()
    }

    /// Best (lowest-score) individual.
    pub fn best(&self) -> &Individual {
        &self.members[0]
    }

    /// Worst (highest-score) individual.
    pub fn worst(&self) -> &Individual {
        &self.members[self.members.len() - 1]
    }

    /// Take ownership of the sorted members (the island scheduler
    /// partitions them across islands).
    pub(crate) fn into_members(self) -> Vec<Individual> {
        self.members
    }

    /// Drop the best `fraction` of individuals (the paper's §3.3 robustness
    /// experiment removes the best 5% / 10%). At least one individual is
    /// kept.
    pub fn drop_best_fraction(&mut self, fraction: f64) {
        let n = self.members.len();
        let drop = ((n as f64 * fraction).round() as usize).min(n.saturating_sub(1));
        self.members.drain(0..drop);
        self.scores.drain(0..drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};

    fn tiny_population(n: usize) -> Population {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(40));
        let sub = ds.protected_subtable();
        let ev = Evaluator::new(&sub, MetricConfig::default()).unwrap();
        let mut members = Vec::new();
        for i in 0..n {
            let mut data = sub.clone();
            // progressively distorted copies -> spread of scores
            for r in 0..(i * 6) {
                let row = r % data.n_rows();
                data.set(row, 0, (data.get(row, 0) + 3) % 16);
            }
            let state = ev.assess(&data);
            members.push(Individual::new(
                format!("v{i}"),
                data,
                state,
                ScoreAggregator::Mean,
            ));
        }
        Population::new(members)
    }

    #[test]
    fn members_are_sorted_ascending() {
        let p = tiny_population(6);
        let scores = p.scores();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(p.best().score(), scores[0]);
        assert_eq!(p.worst().score(), *scores.last().unwrap());
    }

    #[test]
    fn replace_keeps_order() {
        let mut p = tiny_population(5);
        let worst = p.len() - 1;
        let best_clone = p.best().clone();
        p.replace(worst, best_clone);
        let scores = p.scores();
        for w in scores.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn drop_best_fraction_removes_leaders() {
        let mut p = tiny_population(10);
        let before_best = p.best().score();
        p.drop_best_fraction(0.2);
        assert_eq!(p.len(), 8);
        assert!(p.best().score() >= before_best);
    }

    #[test]
    fn drop_best_fraction_keeps_at_least_one() {
        let mut p = tiny_population(3);
        p.drop_best_fraction(5.0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn cached_scores_track_every_mutation() {
        let mut p = tiny_population(6);
        let check = |p: &Population| {
            let fresh: Vec<f64> = p.members().iter().map(Individual::score).collect();
            assert_eq!(p.scores(), &fresh[..]);
        };
        check(&p);
        let best = p.best().clone();
        p.replace(p.len() - 1, best.clone());
        check(&p);
        p.replace_unsorted(2, best.clone());
        p.replace_unsorted(4, best);
        // the cache mirrors members even while unsorted …
        check(&p);
        p.resort();
        check(&p);
        p.drop_best_fraction(0.3);
        check(&p);
    }

    #[test]
    fn scatter_mirrors_members() {
        let p = tiny_population(4);
        let sc = p.scatter();
        assert_eq!(sc.len(), 4);
        for (point, ind) in sc.iter().zip(p.members()) {
            assert_eq!(point.name, ind.name);
            assert_eq!(point.score, ind.score());
        }
    }
}
