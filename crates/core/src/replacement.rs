//! Replacement (§2.4): elitism for mutation, Deterministic Crowding for
//! crossover.
//!
//! For mutation the offspring competes with its parent and the better
//! (lower-score) one survives. For crossover the two offspring must be
//! paired with the two parents before the elitist duels; the paper pairs
//! "each newcomer Xjk … with its parent Xik" — offspring `Z1` carries
//! parent `X1`'s frame, so index pairing is phenotypic proximity. Classic
//! Deterministic Crowding (Mahfoud 1992) pairs by minimal total genotype
//! distance instead; both are provided and ablated.

use cdp_dataset::SubTable;

/// How crossover offspring are paired with parents for the crowding duels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// `Z1 ↔ X1`, `Z2 ↔ X2` (the paper's proximity relation).
    IndexPairedCrowding,
    /// Pairing minimizing total Hamming distance (classic DC).
    DistancePairedCrowding,
}

impl ReplacementPolicy {
    /// Decide the pairing for parents `(p1, p2)` and offspring `(z1, z2)`:
    /// returns `true` when `z1` should duel `p1` (and `z2` duel `p2`),
    /// `false` for the crossed pairing.
    pub fn pair_straight(self, p1: &SubTable, p2: &SubTable, z1: &SubTable, z2: &SubTable) -> bool {
        match self {
            ReplacementPolicy::IndexPairedCrowding => true,
            ReplacementPolicy::DistancePairedCrowding => {
                let straight = p1.hamming(z1) + p2.hamming(z2);
                let crossed = p1.hamming(z2) + p2.hamming(z1);
                straight <= crossed
            }
        }
    }

    /// Short identifier for reports and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::IndexPairedCrowding => "index-paired",
            ReplacementPolicy::DistancePairedCrowding => "distance-paired",
        }
    }
}

/// The elitist duel: does the offspring (with `child_score`) replace the
/// parent (with `parent_score`)? Ties keep the parent, preventing neutral
/// drift from discarding evaluated history.
pub fn offspring_wins(parent_score: f64, child_score: f64) -> bool {
    child_score < parent_score
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

    fn sub(seed: u64) -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(seed).with_records(30))
            .protected_subtable()
    }

    #[test]
    fn index_pairing_is_always_straight() {
        let (a, b) = (sub(1), sub(2));
        assert!(ReplacementPolicy::IndexPairedCrowding.pair_straight(&a, &b, &b, &a));
    }

    #[test]
    fn distance_pairing_matches_closest() {
        let p1 = sub(1);
        let p2 = sub(2);
        // offspring exactly equal to the parents, but swapped
        assert!(!ReplacementPolicy::DistancePairedCrowding.pair_straight(&p1, &p2, &p2, &p1));
        assert!(ReplacementPolicy::DistancePairedCrowding.pair_straight(&p1, &p2, &p1, &p2));
    }

    #[test]
    fn duel_is_strict() {
        assert!(offspring_wins(10.0, 9.9));
        assert!(!offspring_wins(10.0, 10.0));
        assert!(!offspring_wins(10.0, 10.1));
    }
}
