//! Selection (§2.4).
//!
//! The paper's Eq. 3 prints `p(X_i) = Score(X_i) / Σ_j Score(X_j)` while the
//! text states that *better* (lower-score) individuals must be more likely —
//! the literal formula does the opposite under minimization. The
//! [`SelectionWeighting`] enum makes the resolution explicit and ablatable;
//! the default `InverseScore` matches the described behaviour ("our
//! selection policy gives few opportunities to the individuals with bad
//! score").

use rand::Rng;

/// How raw (to-be-minimized) scores translate into selection weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionWeighting {
    /// Weight `1 / (score + ε)` — the default resolution.
    InverseScore,
    /// Weight `(max + min) − score`: a linear flip of the score range.
    Complement,
    /// The paper's formula taken literally (favours *bad* individuals);
    /// kept for the ablation study.
    RawScore,
    /// Linear rank weighting: the best of `N` gets weight `N`, the worst 1.
    Rank,
    /// Extension: tournament of size `k` — draw `k` uniform candidates,
    /// keep the best. Stronger pressure than the proportional schemes and
    /// insensitive to the score scale.
    Tournament {
        /// Tournament size (≥ 1; 1 degenerates to uniform selection).
        k: usize,
    },
}

impl SelectionWeighting {
    /// Draw one index from a population's scores under this scheme.
    pub fn select<R: Rng + ?Sized>(self, scores: &[f64], rng: &mut R) -> usize {
        match self {
            SelectionWeighting::Tournament { k } => {
                let k = k.max(1);
                let mut best = rng.gen_range(0..scores.len());
                for _ in 1..k {
                    let challenger = rng.gen_range(0..scores.len());
                    if scores[challenger] < scores[best] {
                        best = challenger;
                    }
                }
                best
            }
            _ => select_weighted(&self.weights(scores), rng),
        }
    }

    /// Selection weights for a population's scores (any non-negative
    /// scale). Not defined for [`SelectionWeighting::Tournament`], which is
    /// not a weighting scheme — use [`SelectionWeighting::select`].
    ///
    /// # Panics
    /// Panics for the tournament variant.
    pub fn weights(self, scores: &[f64]) -> Vec<f64> {
        const EPS: f64 = 1e-9;
        match self {
            SelectionWeighting::InverseScore => {
                scores.iter().map(|&s| 1.0 / (s.max(0.0) + EPS)).collect()
            }
            SelectionWeighting::Complement => {
                let max = scores.iter().cloned().fold(f64::MIN, f64::max);
                let min = scores.iter().cloned().fold(f64::MAX, f64::min);
                scores.iter().map(|&s| (max + min - s).max(EPS)).collect()
            }
            SelectionWeighting::RawScore => scores.iter().map(|&s| s.max(EPS)).collect(),
            SelectionWeighting::Tournament { .. } => {
                panic!("tournament selection has no weight vector; use select()")
            }
            SelectionWeighting::Rank => {
                // scores are not assumed sorted; rank them
                let n = scores.len();
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
                let mut w = vec![0.0; n];
                for (rank, &i) in idx.iter().enumerate() {
                    w[i] = (n - rank) as f64;
                }
                w
            }
        }
    }

    /// Short identifier for reports and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            SelectionWeighting::InverseScore => "inverse",
            SelectionWeighting::Complement => "complement",
            SelectionWeighting::RawScore => "raw",
            SelectionWeighting::Rank => "rank",
            SelectionWeighting::Tournament { .. } => "tournament",
        }
    }
}

/// Draw an index proportionally to `weights`.
pub fn select_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Draw uniformly from the leader group: indices `0..nb` of a population
/// sorted ascending by score.
pub fn select_leader<R: Rng + ?Sized>(n: usize, nb: usize, rng: &mut R) -> usize {
    let nb = nb.clamp(1, n);
    rng.gen_range(0..nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SCORES: [f64; 4] = [10.0, 20.0, 30.0, 40.0];

    fn empirical(weighting: SelectionWeighting, trials: usize) -> [usize; 4] {
        let mut rng = StdRng::seed_from_u64(1);
        let w = weighting.weights(&SCORES);
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[select_weighted(&w, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn inverse_prefers_low_scores() {
        let c = empirical(SelectionWeighting::InverseScore, 4000);
        assert!(c[0] > c[1] && c[1] > c[2] && c[2] > c[3], "{c:?}");
    }

    #[test]
    fn complement_prefers_low_scores() {
        let c = empirical(SelectionWeighting::Complement, 4000);
        assert!(c[0] > c[3], "{c:?}");
    }

    #[test]
    fn raw_prefers_high_scores() {
        // the literal Eq. 3 favours the worst — the ablation case
        let c = empirical(SelectionWeighting::RawScore, 4000);
        assert!(c[3] > c[0], "{c:?}");
    }

    #[test]
    fn rank_weights_are_linear_in_rank() {
        let w = SelectionWeighting::Rank.weights(&[30.0, 10.0, 20.0]);
        assert_eq!(w, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn select_weighted_degenerate_total() {
        let mut rng = StdRng::seed_from_u64(2);
        let idx = select_weighted(&[0.0, 0.0], &mut rng);
        assert!(idx < 2);
    }

    #[test]
    fn leader_selection_stays_in_group() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(select_leader(100, 10, &mut rng) < 10);
        }
        // nb clamps to the population size
        assert!(select_leader(3, 10, &mut rng) < 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SelectionWeighting::InverseScore.name(), "inverse");
        assert_eq!(SelectionWeighting::RawScore.name(), "raw");
        assert_eq!(SelectionWeighting::Tournament { k: 3 }.name(), "tournament");
    }

    #[test]
    fn tournament_prefers_low_scores() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[SelectionWeighting::Tournament { k: 3 }.select(&SCORES, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]);
    }

    #[test]
    fn tournament_of_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[SelectionWeighting::Tournament { k: 1 }.select(&SCORES, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..=2400).contains(&c), "{counts:?} not uniform");
        }
    }

    #[test]
    #[should_panic(expected = "tournament selection has no weight vector")]
    fn tournament_weights_panic() {
        let _ = SelectionWeighting::Tournament { k: 2 }.weights(&SCORES);
    }

    #[test]
    fn select_dispatches_weight_schemes_too() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[SelectionWeighting::InverseScore.select(&SCORES, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[3]);
    }
}
