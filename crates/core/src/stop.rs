//! Stopping criteria.
//!
//! The paper leaves `stopping(P(t))` abstract; we stop after a fixed
//! iteration budget, optionally earlier when the best score has stagnated.

/// When the evolutionary loop terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StopCondition {
    /// Hard iteration budget.
    pub max_iterations: usize,
    /// Stop early after this many iterations without improvement of the
    /// population's best score.
    pub stagnation: Option<usize>,
}

impl Default for StopCondition {
    fn default() -> Self {
        StopCondition {
            max_iterations: 1000,
            stagnation: None,
        }
    }
}

impl StopCondition {
    /// Should the loop stop at iteration `t` with `since_improvement`
    /// iterations since the best score last decreased?
    pub fn should_stop(&self, t: usize, since_improvement: usize) -> bool {
        if t >= self.max_iterations {
            return true;
        }
        matches!(self.stagnation, Some(s) if since_improvement >= s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_caps_iterations() {
        let c = StopCondition {
            max_iterations: 10,
            stagnation: None,
        };
        assert!(!c.should_stop(9, 9));
        assert!(c.should_stop(10, 0));
    }

    #[test]
    fn stagnation_triggers_early() {
        let c = StopCondition {
            max_iterations: 1000,
            stagnation: Some(5),
        };
        assert!(!c.should_stop(100, 4));
        assert!(c.should_stop(100, 5));
    }

    #[test]
    fn default_is_budget_only() {
        let c = StopCondition::default();
        assert_eq!(c.max_iterations, 1000);
        assert!(c.stagnation.is_none());
        assert!(!c.should_stop(999, 999));
    }
}
