//! Run telemetry: exactly the data behind the paper's two figure families —
//! (IL, DR) dispersion snapshots and max/mean/min score evolution series.

use cdp_metrics::ObjectiveVector;

use crate::individual::Individual;
use crate::operators::OperatorKind;

/// One population snapshot point: an individual's (IL, DR) pair, as plotted
/// in the paper's dispersion figures (Figs. 1, 3, 5, 7, 9, 11, 13, 15, 17,
/// 18), plus its full objective vector (identical to the pair under the
/// canonical objective set).
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterPoint {
    /// Individual's provenance label.
    pub name: String,
    /// Information loss.
    pub il: f64,
    /// Disclosure risk.
    pub dr: f64,
    /// Aggregated score under the run's aggregator.
    pub score: f64,
    /// The full objective vector (leads with `il, dr`; extended sets
    /// append their extra measures).
    pub objectives: ObjectiveVector,
}

impl ScatterPoint {
    /// Capture an individual.
    pub fn of(ind: &Individual) -> Self {
        ScatterPoint {
            name: ind.name.clone(),
            il: ind.il(),
            dr: ind.dr(),
            score: ind.score(),
            objectives: ind.objectives(),
        }
    }

    /// A 2-objective point from its parts (test/plot helper; `objectives`
    /// is the canonical pair).
    pub fn from_pair(name: String, il: f64, dr: f64, score: f64) -> Self {
        ScatterPoint {
            name,
            il,
            dr,
            score,
            objectives: ObjectiveVector::pair(il, dr),
        }
    }
}

/// How many fitness evaluations a run performed, split by path.
///
/// `full` counts complete [`cdp_metrics::Evaluator::assess`] passes
/// (initial population included); `incremental` counts patch-based
/// re-assessments ([`cdp_metrics::Evaluator::reassess`] /
/// `reassess_into`). The split is the observable behind the delta-vs-full
/// benchmarks: flipping the incremental knobs must move work from `full`
/// to `incremental` without changing the RNG stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Full O(n²) assessments.
    pub full: usize,
    /// Patch-based re-assessments.
    pub incremental: usize,
}

impl EvalCounts {
    /// Total evaluations of either kind.
    pub fn total(&self) -> usize {
        self.full + self.incremental
    }
}

/// Per-iteration population statistics, as plotted in the paper's evolution
/// figures (Figs. 2, 4, 6, 8, 10, 12, 14, 16, 19, 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Iteration index (0 = initial population).
    pub iteration: usize,
    /// Best (minimum) score.
    pub min: f64,
    /// Mean score.
    pub mean: f64,
    /// Worst (maximum) score.
    pub max: f64,
    /// Operator applied this iteration (`None` for the initial snapshot).
    pub operator: Option<OperatorKind>,
    /// Whether an offspring survived (the population changed).
    pub accepted: bool,
}

/// The evolution series of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry per iteration, plus the initial snapshot at index 0.
    pub generations: Vec<GenerationStats>,
}

impl Trace {
    /// Record a population's score statistics.
    pub fn record(
        &mut self,
        iteration: usize,
        scores: &[f64],
        operator: Option<OperatorKind>,
        accepted: bool,
    ) {
        let n = scores.len().max(1) as f64;
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = scores.iter().sum::<f64>() / n;
        self.generations.push(GenerationStats {
            iteration,
            min,
            mean,
            max,
            operator,
            accepted,
        });
    }

    /// The initial snapshot.
    pub fn initial(&self) -> Option<&GenerationStats> {
        self.generations.first()
    }

    /// The final snapshot.
    pub fn last(&self) -> Option<&GenerationStats> {
        self.generations.last()
    }

    /// Count of iterations whose offspring were accepted.
    pub fn accepted_count(&self) -> usize {
        self.generations.iter().filter(|g| g.accepted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_min_mean_max() {
        let mut t = Trace::default();
        t.record(0, &[10.0, 20.0, 30.0], None, false);
        let g = t.initial().unwrap();
        assert_eq!(g.min, 10.0);
        assert_eq!(g.max, 30.0);
        assert!((g.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn accepted_count_filters() {
        let mut t = Trace::default();
        t.record(0, &[1.0], None, false);
        t.record(1, &[1.0], Some(OperatorKind::Mutation), true);
        t.record(2, &[1.0], Some(OperatorKind::Crossover), false);
        t.record(3, &[1.0], Some(OperatorKind::Mutation), true);
        assert_eq!(t.accepted_count(), 2);
        assert_eq!(t.last().unwrap().iteration, 3);
    }
}
