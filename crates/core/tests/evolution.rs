//! End-to-end tests of Algorithm 1 on small instances of the paper's
//! datasets.

use cdp_core::{
    EvoConfig, Evolution, OperatorKind, OperatorSchedule, ReplacementPolicy, SelectionWeighting,
};
use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
use cdp_sdc::{build_population, NamedProtection, SuiteConfig};

fn setup(kind: DatasetKind, n: usize, seed: u64) -> (Evaluator, Vec<NamedProtection>) {
    let ds = kind.generate(&GeneratorConfig::seeded(seed).with_records(n));
    let pop = build_population(&ds, &SuiteConfig::small(), seed).unwrap();
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    (ev, pop)
}

#[test]
fn scores_never_worsen() {
    // elitism + crowding guarantee monotone min and per-slot scores
    let (ev, pop) = setup(DatasetKind::Adult, 90, 1);
    let cfg = EvoConfig::builder().iterations(60).seed(1).build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    let s = outcome.summary();
    assert!(s.final_min <= s.initial_min + 1e-9);
    assert!(s.final_mean <= s.initial_mean + 1e-9);
    assert!(s.final_max <= s.initial_max + 1e-9);
    // min score series is non-increasing iteration by iteration
    let mins: Vec<f64> = outcome.trace.generations.iter().map(|g| g.min).collect();
    for w in mins.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "min score increased: {w:?}");
    }
}

#[test]
fn population_size_is_invariant() {
    let (ev, pop) = setup(DatasetKind::German, 80, 2);
    let n0 = pop.len();
    let cfg = EvoConfig::builder().iterations(40).seed(2).build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    assert_eq!(outcome.population.len(), n0);
    assert_eq!(outcome.initial.len(), n0);
    assert_eq!(outcome.final_points.len(), n0);
}

#[test]
fn runs_are_seed_deterministic() {
    let run = || {
        let (ev, pop) = setup(DatasetKind::Flare, 70, 3);
        let cfg = EvoConfig::builder().iterations(50).seed(33).build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.iterations_run, b.iterations_run);
    assert_eq!(a.population.scores(), b.population.scores());
    for (x, y) in a.trace.generations.iter().zip(b.trace.generations.iter()) {
        assert_eq!(x.min, y.min);
        assert_eq!(x.mean, y.mean);
        assert_eq!(x.max, y.max);
        assert_eq!(x.operator, y.operator);
    }
}

#[test]
fn different_seeds_explore_differently() {
    let run = |seed| {
        let (ev, pop) = setup(DatasetKind::Adult, 70, 4);
        let cfg = EvoConfig::builder().iterations(60).seed(seed).build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let a = run(1);
    let b = run(2);
    let ops_a: Vec<_> = a.trace.generations.iter().map(|g| g.operator).collect();
    let ops_b: Vec<_> = b.trace.generations.iter().map(|g| g.operator).collect();
    assert_ne!(
        ops_a, ops_b,
        "seeds should draw different operator schedules"
    );
}

#[test]
fn both_operators_fire_with_default_rate() {
    let (ev, pop) = setup(DatasetKind::Adult, 60, 5);
    let cfg = EvoConfig::builder().iterations(80).seed(5).build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    let ops: Vec<OperatorKind> = outcome
        .trace
        .generations
        .iter()
        .filter_map(|g| g.operator)
        .collect();
    assert!(ops.contains(&OperatorKind::Mutation));
    assert!(ops.contains(&OperatorKind::Crossover));
}

#[test]
fn mutation_only_run_works() {
    let (ev, pop) = setup(DatasetKind::German, 60, 6);
    let cfg = EvoConfig::builder()
        .iterations(40)
        .mutation_rate(1.0)
        .seed(6)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    assert!(outcome
        .trace
        .generations
        .iter()
        .filter_map(|g| g.operator)
        .all(|o| o == OperatorKind::Mutation));
}

#[test]
fn crossover_only_run_works() {
    let (ev, pop) = setup(DatasetKind::German, 60, 7);
    let cfg = EvoConfig::builder()
        .iterations(40)
        .mutation_rate(0.0)
        .seed(7)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    assert!(outcome
        .trace
        .generations
        .iter()
        .filter_map(|g| g.operator)
        .all(|o| o == OperatorKind::Crossover));
}

#[test]
fn stagnation_stops_early() {
    let (ev, pop) = setup(DatasetKind::Adult, 60, 8);
    let cfg = EvoConfig::builder()
        .iterations(10_000)
        .stagnation(15)
        .seed(8)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    assert!(outcome.iterations_run < 10_000);
}

#[test]
fn empty_population_is_an_error() {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(9).with_records(50));
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let cfg = EvoConfig::builder().iterations(5).build();
    let empty: Vec<(String, cdp_dataset::SubTable)> = vec![];
    assert!(Evolution::new(ev, cfg)
        .with_named_population(empty)
        .is_err());
}

#[test]
fn incompatible_individual_is_an_error() {
    let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(10).with_records(50));
    let other = DatasetKind::Adult.generate(&GeneratorConfig::seeded(10).with_records(30));
    let ev = Evaluator::new(&ds.protected_subtable(), MetricConfig::default()).unwrap();
    let cfg = EvoConfig::builder().iterations(5).build();
    let bad = vec![("wrong".to_string(), other.protected_subtable())];
    let err = Evolution::new(ev, cfg).with_named_population(bad);
    assert!(matches!(
        err,
        Err(cdp_core::EvoError::IncompatibleIndividual { .. })
    ));
}

#[test]
fn robustness_truncation_still_optimizes() {
    // the paper's §3.3: drop the best 10%, evolution recovers
    let (ev, pop) = setup(DatasetKind::Flare, 80, 11);
    let n0 = pop.len();
    let cfg = EvoConfig::builder()
        .iterations(60)
        .aggregator(ScoreAggregator::Max)
        .seed(11)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .drop_best_fraction(0.10)
        .unwrap()
        .run();
    assert!(outcome.population.len() < n0);
    let s = outcome.summary();
    assert!(s.final_min <= s.initial_min + 1e-9);
}

#[test]
fn incremental_mutation_matches_full_exactly() {
    let run = |incremental: bool| {
        let (ev, pop) = setup(DatasetKind::Adult, 70, 12);
        let cfg = EvoConfig::builder()
            .iterations(50)
            .mutation_rate(1.0)
            .incremental_mutation(incremental)
            .seed(12)
            .build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let full = run(false);
    let inc = run(true);
    // patched assessments are bit-identical to full ones, so the runs make
    // identical decisions: same trajectory, same winner, zero drift
    assert_eq!(full.summary(), inc.summary());
    assert_eq!(
        full.population.best().data,
        inc.population.best().data,
        "winning protected file must be identical"
    );
}

#[test]
fn incremental_crossover_matches_full_exactly_and_cuts_full_assessments() {
    let run = |incremental: bool| {
        let (ev, pop) = setup(DatasetKind::Adult, 70, 17);
        let cfg = EvoConfig::builder()
            .iterations(60)
            .incremental_mutation(incremental)
            .incremental_crossover(incremental)
            .seed(17)
            .build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let full = run(false);
    let inc = run(true);
    // the incremental run must perform at least 2x fewer full assessments
    assert_eq!(full.eval_counts.incremental, 0);
    assert!(
        inc.eval_counts.full * 2 <= full.eval_counts.full,
        "full assessments not halved: {} vs {}",
        inc.eval_counts.full,
        full.eval_counts.full
    );
    assert!(inc.eval_counts.incremental > 0);
    assert_eq!(inc.eval_counts.total(), full.eval_counts.total());
    // … while producing the identical outcome
    assert_eq!(full.summary(), inc.summary());
    assert_eq!(full.population.best().data, inc.population.best().data);
}

#[test]
fn incremental_refresh_cross_checks_offspring() {
    // with a tiny verification interval, the incremental run must keep
    // interleaving full cross-check assessments (each asserting the
    // patched state identical to the recompute) without changing the
    // outcome
    let run = |refresh: usize| {
        let (ev, pop) = setup(DatasetKind::Adult, 60, 18);
        let cfg = EvoConfig::builder()
            .iterations(60)
            .incremental_mutation(true)
            .incremental_crossover(true)
            .incremental_refresh(refresh)
            .seed(18)
            .build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let unchecked = run(0);
    let checked = run(2);
    assert!(
        checked.eval_counts.full > unchecked.eval_counts.full,
        "verification policy never triggered a full cross-check"
    );
    assert!(checked.eval_counts.incremental > 0);
    // the cross-check is observation only: same trajectory, same winner
    assert_eq!(unchecked.summary(), checked.summary());
    assert_eq!(
        unchecked.population.best().data,
        checked.population.best().data
    );
}

#[test]
fn parallel_offspring_is_bit_identical_to_serial() {
    // the file must be large enough that the parallel run actually takes
    // the threaded branch (crossover_step gates on MIN_PARALLEL_EVAL_ROWS)
    let rows = cdp_core::parallel::MIN_PARALLEL_EVAL_ROWS + 14;
    let run = |parallel: bool| {
        let (ev, pop) = setup(DatasetKind::German, rows, 19);
        assert!(ev.prepared().n_rows() >= cdp_core::parallel::MIN_PARALLEL_EVAL_ROWS);
        let cfg = EvoConfig::builder()
            .iterations(14)
            .mutation_rate(0.0)
            .parallel_offspring(parallel)
            .seed(19)
            .build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let (a, b) = (run(false), run(true));
    assert_eq!(a.population.scores(), b.population.scores());
    assert_eq!(a.eval_counts, b.eval_counts);
}

#[test]
fn adaptive_schedule_runs_and_reports_final_rate() {
    let (ev, pop) = setup(DatasetKind::Adult, 70, 21);
    let cfg = EvoConfig::builder()
        .iterations(120)
        .operator_schedule(OperatorSchedule::adaptive())
        .seed(21)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    let rate = outcome.final_mutation_rate;
    assert!(
        (0.2..=0.8).contains(&rate),
        "rate {rate} escaped its bounds"
    );
    // scores still monotone under the adaptive schedule
    let s = outcome.summary();
    assert!(s.final_mean <= s.initial_mean + 1e-9);
}

#[test]
fn fixed_schedule_reports_configured_rate() {
    let (ev, pop) = setup(DatasetKind::Adult, 60, 22);
    let cfg = EvoConfig::builder()
        .iterations(30)
        .mutation_rate(0.7)
        .seed(22)
        .build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    assert_eq!(outcome.final_mutation_rate, 0.7);
}

#[test]
fn pareto_front_is_consistent() {
    let (ev, pop) = setup(DatasetKind::Housing, 80, 20);
    let cfg = EvoConfig::builder().iterations(60).seed(20).build();
    let outcome = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run();
    let front = &outcome.pareto_front;
    assert!(!front.is_empty());
    // pairwise non-domination
    for a in front {
        for b in front {
            let dominates = a.il <= b.il && a.dr <= b.dr && (a.il < b.il || a.dr < b.dr);
            assert!(!dominates, "front holds a dominated point");
        }
    }
    // the scalar best final individual must not dominate the whole front
    let best = outcome.final_best();
    assert!(
        front
            .iter()
            .any(|p| p.il <= best.il + 1e-9 || p.dr <= best.dr + 1e-9),
        "front should cover the scalar winner's neighbourhood"
    );
}

#[test]
fn all_selection_weightings_run() {
    for sel in [
        SelectionWeighting::InverseScore,
        SelectionWeighting::Complement,
        SelectionWeighting::RawScore,
        SelectionWeighting::Rank,
        SelectionWeighting::Tournament { k: 3 },
    ] {
        let (ev, pop) = setup(DatasetKind::Adult, 50, 13);
        let cfg = EvoConfig::builder()
            .iterations(20)
            .selection(sel)
            .seed(13)
            .build();
        let outcome = Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run();
        assert_eq!(outcome.iterations_run, 20, "{}", sel.name());
    }
}

#[test]
fn both_replacement_policies_run() {
    for rep in [
        ReplacementPolicy::IndexPairedCrowding,
        ReplacementPolicy::DistancePairedCrowding,
    ] {
        let (ev, pop) = setup(DatasetKind::German, 50, 14);
        let cfg = EvoConfig::builder()
            .iterations(20)
            .mutation_rate(0.0)
            .replacement(rep)
            .seed(14)
            .build();
        let outcome = Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run();
        assert_eq!(outcome.iterations_run, 20, "{}", rep.name());
    }
}

#[test]
fn observer_sees_every_generation() {
    let (ev, pop) = setup(DatasetKind::Adult, 50, 15);
    let cfg = EvoConfig::builder().iterations(25).seed(15).build();
    let mut seen = 0usize;
    let _ = Evolution::new(ev, cfg)
        .with_named_population(pop)
        .unwrap()
        .run_with(|g| {
            assert!(g.iteration >= 1);
            seen += 1;
        });
    assert_eq!(seen, 25);
}

#[test]
fn max_aggregator_balances_il_dr() {
    // the paper's central claim (§3.2): Eq.2 yields more balanced final
    // (IL, DR) pairs than Eq.1
    let run = |agg| {
        let (ev, pop) = setup(DatasetKind::Flare, 90, 16);
        let cfg = EvoConfig::builder()
            .iterations(150)
            .aggregator(agg)
            .seed(16)
            .build();
        Evolution::new(ev, cfg)
            .with_named_population(pop)
            .unwrap()
            .run()
    };
    let mean_run = run(ScoreAggregator::Mean);
    let max_run = run(ScoreAggregator::Max);
    let imbalance = |points: &[cdp_core::ScatterPoint]| {
        points.iter().map(|p| (p.il - p.dr).abs()).sum::<f64>() / points.len() as f64
    };
    let mean_imb = imbalance(&mean_run.final_points);
    let max_imb = imbalance(&max_run.final_points);
    assert!(
        max_imb <= mean_imb + 5.0,
        "Max should not be much less balanced: {max_imb} vs {mean_imb}"
    );
}
