//! Categorical attributes (variables) and their dictionaries.

use crate::{Code, DatasetError, Result};

/// Whether the categories of an attribute carry a meaningful order.
///
/// The distinction drives several subsystems:
/// * distance-based measures use rank distance for ordinal attributes and
///   0/1 distance for nominal ones;
/// * rank swapping and top/bottom coding only make sense for ordinal
///   attributes (for nominal ones the SDC crate falls back to
///   frequency-order semantics);
/// * interval disclosure brackets ordinal values by rank and degenerates to
///   equality for nominal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Unordered categories (e.g. OCCUPATION).
    Nominal,
    /// Ordered categories (e.g. EDUCATION attainment, year-built ranges).
    Ordinal,
}

impl AttrKind {
    /// True for [`AttrKind::Ordinal`].
    pub fn is_ordinal(self) -> bool {
        matches!(self, AttrKind::Ordinal)
    }
}

/// A categorical variable: a name, a kind, and an interned dictionary of
/// category labels. The code of a category is its index in the dictionary;
/// for ordinal attributes dictionary order *is* the category order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
    categories: Vec<String>,
}

impl Attribute {
    /// Build an attribute from a dictionary of labels.
    ///
    /// # Errors
    /// Returns [`DatasetError::Empty`] when `categories` is empty.
    pub fn new(name: impl Into<String>, kind: AttrKind, categories: Vec<String>) -> Result<Self> {
        let name = name.into();
        if categories.is_empty() {
            return Err(DatasetError::Empty(format!("category list of `{name}`")));
        }
        Ok(Attribute {
            name,
            kind,
            categories,
        })
    }

    /// Ordinal attribute with labels `"{prefix}0" .. "{prefix}{n-1}"`.
    /// Convenient for generators and tests.
    pub fn ordinal(name: impl Into<String>, n: usize) -> Self {
        let name = name.into();
        let categories = (0..n.max(1)).map(|i| format!("{name}_{i}")).collect();
        Attribute {
            name,
            kind: AttrKind::Ordinal,
            categories,
        }
    }

    /// Nominal attribute with synthetic labels, mirror of [`Attribute::ordinal`].
    pub fn nominal(name: impl Into<String>, n: usize) -> Self {
        let name = name.into();
        let categories = (0..n.max(1)).map(|i| format!("{name}_{i}")).collect();
        Attribute {
            name,
            kind: AttrKind::Nominal,
            categories,
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal/ordinal kind.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    /// Dictionary size.
    pub fn n_categories(&self) -> usize {
        self.categories.len()
    }

    /// All labels in code order.
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Label of `code`.
    ///
    /// # Panics
    /// Panics when `code` is outside the dictionary; use [`Attribute::check`]
    /// on untrusted input first.
    pub fn label(&self, code: Code) -> &str {
        &self.categories[code as usize]
    }

    /// Resolve a label to its code, `None` when absent.
    pub fn code_of(&self, label: &str) -> Option<Code> {
        self.categories
            .iter()
            .position(|c| c == label)
            .map(|i| i as Code)
    }

    /// Validate that `code` belongs to this attribute's dictionary.
    pub fn check(&self, code: Code) -> Result<()> {
        if (code as usize) < self.categories.len() {
            Ok(())
        } else {
            Err(DatasetError::InvalidCode {
                attr: self.name.clone(),
                code: code as u32,
                n_categories: self.categories.len(),
            })
        }
    }

    /// Rank of a code normalized to `[0, 1]`: `code / (c - 1)`.
    /// Single-category attributes map everything to `0.0`.
    ///
    /// This is the ordinal position used by distance-based measures; for
    /// nominal attributes callers should prefer 0/1 distance, but the
    /// normalized rank is still well-defined (dictionary order).
    pub fn normalized_rank(&self, code: Code) -> f64 {
        let c = self.categories.len();
        if c <= 1 {
            0.0
        } else {
            code as f64 / (c - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let a = Attribute::new(
            "SAVINGS",
            AttrKind::Ordinal,
            vec!["low".into(), "mid".into(), "high".into()],
        )
        .unwrap();
        assert_eq!(a.n_categories(), 3);
        assert_eq!(a.code_of("mid"), Some(1));
        assert_eq!(a.label(2), "high");
        assert!(a.code_of("absent").is_none());
        assert!(a.kind().is_ordinal());
    }

    #[test]
    fn empty_dictionary_rejected() {
        assert!(Attribute::new("X", AttrKind::Nominal, vec![]).is_err());
    }

    #[test]
    fn check_bounds() {
        let a = Attribute::ordinal("DEGREE", 8);
        assert!(a.check(7).is_ok());
        assert!(a.check(8).is_err());
    }

    #[test]
    fn synthetic_label_shape() {
        let a = Attribute::nominal("CLASS", 4);
        assert_eq!(a.label(0), "CLASS_0");
        assert_eq!(a.label(3), "CLASS_3");
        assert_eq!(a.kind(), AttrKind::Nominal);
    }

    #[test]
    fn normalized_rank_endpoints() {
        let a = Attribute::ordinal("B", 5);
        assert_eq!(a.normalized_rank(0), 0.0);
        assert_eq!(a.normalized_rank(4), 1.0);
        let single = Attribute::ordinal("S", 1);
        assert_eq!(single.normalized_rank(0), 0.0);
    }
}
