//! Error type shared across the dataset crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatasetError>;

/// Errors raised while constructing or parsing categorical microdata.
#[derive(Debug)]
pub enum DatasetError {
    /// A table or column was built against the wrong schema.
    SchemaMismatch(String),
    /// A cell carries a code outside its attribute's dictionary.
    InvalidCode {
        /// Attribute name.
        attr: String,
        /// Offending code.
        code: u32,
        /// Dictionary size of the attribute.
        n_categories: usize,
    },
    /// Columns of differing lengths were combined into one table.
    RaggedColumns {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        got: usize,
        /// Index of the offending column.
        column: usize,
    },
    /// An empty table/schema where data was required.
    Empty(String),
    /// An attribute index outside the schema.
    AttrOutOfRange {
        /// Requested index.
        index: usize,
        /// Number of attributes in the schema.
        n_attrs: usize,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed input line while parsing CSV.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A category label not present in a fixed schema's dictionary.
    UnknownCategory {
        /// Attribute name.
        attr: String,
        /// The label that could not be resolved.
        label: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            DatasetError::InvalidCode {
                attr,
                code,
                n_categories,
            } => write!(
                f,
                "invalid code {code} for attribute `{attr}` ({n_categories} categories)"
            ),
            DatasetError::RaggedColumns {
                expected,
                got,
                column,
            } => write!(f, "column {column} has {got} rows, expected {expected}"),
            DatasetError::Empty(what) => write!(f, "empty {what}"),
            DatasetError::AttrOutOfRange { index, n_attrs } => {
                write!(
                    f,
                    "attribute index {index} out of range (schema has {n_attrs})"
                )
            }
            DatasetError::Io(e) => write!(f, "I/O error: {e}"),
            DatasetError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            DatasetError::UnknownCategory { attr, label } => {
                write!(f, "unknown category `{label}` for attribute `{attr}`")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DatasetError::InvalidCode {
            attr: "EDUCATION".into(),
            code: 99,
            n_categories: 16,
        };
        let s = e.to_string();
        assert!(s.contains("EDUCATION"));
        assert!(s.contains("99"));
        assert!(s.contains("16"));
    }

    #[test]
    fn io_error_round_trip() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DatasetError = io.into();
        assert!(matches!(e, DatasetError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parse_error_mentions_line() {
        let e = DatasetError::Parse {
            line: 7,
            msg: "too few fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
