//! Adult (census income) — 1000 records × 8 categorical attributes.
//!
//! Protected attributes (paper §3): EDUCATION (16 categories),
//! MARITAL-STATUS (7), OCCUPATION (14). The real UCI dictionaries are well
//! known, so this generator uses the genuine labels; occupation and income
//! track education as in the census data.

use super::{AttrSpec, DatasetSpec, Marginal};

const EDUCATION: [&str; 16] = [
    "Preschool",
    "1st-4th",
    "5th-6th",
    "7th-8th",
    "9th",
    "10th",
    "11th",
    "12th",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Assoc-acdm",
    "Bachelors",
    "Masters",
    "Prof-school",
    "Doctorate",
];

const MARITAL: [&str; 7] = [
    "Married-civ-spouse",
    "Never-married",
    "Divorced",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
    "Married-AF-spouse",
];

const OCCUPATION: [&str; 14] = [
    "Prof-specialty",
    "Craft-repair",
    "Exec-managerial",
    "Adm-clerical",
    "Sales",
    "Other-service",
    "Machine-op-inspct",
    "Transport-moving",
    "Handlers-cleaners",
    "Farming-fishing",
    "Tech-support",
    "Protective-serv",
    "Priv-house-serv",
    "Armed-Forces",
];

pub(super) fn spec() -> DatasetSpec {
    let attrs = vec![
        AttrSpec::nominal("WORKCLASS", 8, Marginal::Zipf(1.3)),
        // protected: attainment order is meaningful -> ordinal
        AttrSpec::ordinal(
            "EDUCATION",
            16,
            Marginal::Peaked {
                peak: 0.55,
                spread: 0.3,
            },
        )
        .with_labels(&EDUCATION),
        // protected
        AttrSpec::nominal("MARITAL-STATUS", 7, Marginal::Zipf(0.8)).with_labels(&MARITAL),
        // protected, tracks education
        AttrSpec::nominal("OCCUPATION", 14, Marginal::Zipf(0.5))
            .with_labels(&OCCUPATION)
            .linked(1, 0.15, 0.7),
        AttrSpec::nominal("RELATIONSHIP", 6, Marginal::Zipf(0.8)).linked(2, 0.3, 0.5),
        AttrSpec::nominal("RACE", 5, Marginal::Zipf(1.8)),
        AttrSpec::nominal("SEX", 2, Marginal::Zipf(0.3)),
        AttrSpec::nominal("INCOME", 2, Marginal::Zipf(1.1)).linked(1, 0.3, 0.4),
    ];
    DatasetSpec {
        n_records: 1000,
        attrs,
        protected: vec![1, 2, 3],
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::{DatasetKind, GeneratorConfig};

    #[test]
    fn shape_matches_paper() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1));
        assert_eq!(ds.table.n_attrs(), 8);
        let schema = ds.table.schema();
        assert_eq!(schema.attr(1).n_categories(), 16);
        assert_eq!(schema.attr(2).n_categories(), 7);
        assert_eq!(schema.attr(3).n_categories(), 14);
        assert_eq!(ds.protected, vec![1, 2, 3]);
    }

    #[test]
    fn real_labels_present() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1));
        let schema = ds.table.schema();
        assert_eq!(schema.attr(1).code_of("Bachelors"), Some(12));
        assert_eq!(schema.attr(2).code_of("Never-married"), Some(1));
        assert!(schema.attr(3).code_of("Tech-support").is_some());
    }

    #[test]
    fn education_is_ordinal_others_nominal() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1));
        let schema = ds.table.schema();
        assert!(schema.attr(1).kind().is_ordinal());
        assert!(!schema.attr(2).kind().is_ordinal());
        assert!(!schema.attr(3).kind().is_ordinal());
    }
}
