//! Solar Flare — 1066 records × 13 categorical attributes.
//!
//! Protected attributes (paper §3): CLASS (8 categories, modified Zurich
//! class), LARGSPOT (7, size of the largest spot), SPOTDIST (5, spot
//! distribution). Spot size and distribution both track the Zurich class,
//! as in the original sunspot-group data. Flare-count attributes are very
//! heavy-tailed (most groups produce no flares).

use super::{AttrSpec, DatasetSpec, Marginal};

pub(super) fn spec() -> DatasetSpec {
    let attrs = vec![
        // protected: modified Zurich class is roughly an evolution scale
        AttrSpec::ordinal("CLASS", 8, Marginal::Zipf(0.9)),
        // protected
        AttrSpec::ordinal(
            "LARGSPOT",
            7,
            Marginal::Peaked {
                peak: 0.3,
                spread: 0.35,
            },
        )
        .linked(0, 0.15, 0.65),
        // protected
        AttrSpec::nominal("SPOTDIST", 5, Marginal::Zipf(0.8)).linked(0, 0.25, 0.5),
        AttrSpec::nominal("ACTIVITY", 2, Marginal::Zipf(1.5)),
        AttrSpec::ordinal(
            "EVOLUTION",
            3,
            Marginal::Peaked {
                peak: 0.6,
                spread: 0.5,
            },
        ),
        AttrSpec::ordinal("PREVACT", 3, Marginal::Zipf(1.0)),
        AttrSpec::nominal("HISTCOMPLEX", 2, Marginal::Zipf(1.2)),
        AttrSpec::nominal("BECOMEHIST", 2, Marginal::Zipf(2.0)),
        AttrSpec::nominal("AREA", 2, Marginal::Zipf(1.6)),
        AttrSpec::nominal("AREALARGEST", 2, Marginal::Zipf(1.4)),
        AttrSpec::ordinal("CFLARES", 9, Marginal::Zipf(1.5)),
        AttrSpec::ordinal("MFLARES", 6, Marginal::Zipf(2.0)),
        AttrSpec::ordinal("XFLARES", 3, Marginal::Zipf(2.5)),
    ];
    DatasetSpec {
        n_records: 1066,
        attrs,
        protected: vec![0, 1, 2],
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::{DatasetKind, GeneratorConfig};

    #[test]
    fn shape_matches_paper() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(1));
        assert_eq!(ds.table.n_rows(), 1066);
        assert_eq!(ds.table.n_attrs(), 13);
        let cats: Vec<usize> = ds
            .protected
            .iter()
            .map(|&a| ds.table.schema().attr(a).n_categories())
            .collect();
        assert_eq!(cats, vec![8, 7, 5]);
    }

    #[test]
    fn flare_counts_heavy_tailed() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(2));
        let x = ds.table.column(12); // XFLARES
        let zero = x.iter().filter(|&&v| v == 0).count();
        assert!(zero * 2 > x.len(), "most groups produce no X flares");
    }

    #[test]
    fn largspot_tracks_class() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(3));
        let class = ds.table.column(0);
        let spot = ds.table.column(1);
        let (mut lo, mut ln, mut hi, mut hn) = (0f64, 0usize, 0f64, 0usize);
        for i in 0..class.len() {
            if class[i] <= 1 {
                lo += spot[i] as f64;
                ln += 1;
            } else if class[i] >= 5 {
                hi += spot[i] as f64;
                hn += 1;
            }
        }
        assert!(lo / (ln.max(1) as f64) < hi / (hn.max(1) as f64));
    }
}
