//! German Credit — 1000 records × 13 categorical attributes.
//!
//! Protected attributes (paper §3): EXISTACC (5 categories, status of
//! existing checking account), SAVINGS (6), PRESEMPLOY (6, present
//! employment duration). Savings status tracks account status and
//! employment duration tracks savings, mimicking the credit-risk
//! correlations of the original data.

use super::{AttrSpec, DatasetSpec, Marginal};

pub(super) fn spec() -> DatasetSpec {
    let attrs = vec![
        // protected
        AttrSpec::ordinal("EXISTACC", 5, Marginal::Zipf(0.7)),
        AttrSpec::nominal("CREDITHIST", 5, Marginal::Zipf(0.9)),
        AttrSpec::nominal("PURPOSE", 10, Marginal::Zipf(1.0)),
        // protected
        AttrSpec::ordinal("SAVINGS", 6, Marginal::Zipf(0.8)).linked(0, 0.15, 0.6),
        // protected
        AttrSpec::ordinal(
            "PRESEMPLOY",
            6,
            Marginal::Peaked {
                peak: 0.5,
                spread: 0.3,
            },
        )
        .linked(3, 0.2, 0.5),
        AttrSpec::nominal("PERSONAL", 5, Marginal::Zipf(0.6)),
        AttrSpec::nominal("DEBTORS", 3, Marginal::Zipf(1.2)),
        AttrSpec::nominal("PROPERTY", 4, Marginal::Uniform),
        AttrSpec::nominal("INSTALLPLANS", 3, Marginal::Zipf(1.1)),
        AttrSpec::nominal("HOUSING", 3, Marginal::Zipf(0.9)),
        AttrSpec::ordinal(
            "JOB",
            4,
            Marginal::Peaked {
                peak: 0.5,
                spread: 0.4,
            },
        ),
        AttrSpec::nominal("TELEPHONE", 2, Marginal::Zipf(0.5)),
        AttrSpec::nominal("FOREIGN", 2, Marginal::Zipf(1.8)),
    ];
    DatasetSpec {
        n_records: 1000,
        attrs,
        protected: vec![0, 3, 4],
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::{DatasetKind, GeneratorConfig};

    #[test]
    fn shape_matches_paper() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(1));
        let schema = ds.table.schema();
        assert_eq!(schema.n_attrs(), 13);
        let names: Vec<&str> = ds
            .protected
            .iter()
            .map(|&a| schema.attr(a).name())
            .collect();
        assert_eq!(names, vec!["EXISTACC", "SAVINGS", "PRESEMPLOY"]);
        let cats: Vec<usize> = ds
            .protected
            .iter()
            .map(|&a| schema.attr(a).n_categories())
            .collect();
        assert_eq!(cats, vec![5, 6, 6]);
    }

    #[test]
    fn savings_tracks_account_status() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(23));
        let acc = ds.table.column(0);
        let sav = ds.table.column(3);
        let (mut lo, mut ln, mut hi, mut hn) = (0f64, 0usize, 0f64, 0usize);
        for i in 0..acc.len() {
            if acc[i] <= 1 {
                lo += sav[i] as f64;
                ln += 1;
            } else if acc[i] >= 3 {
                hi += sav[i] as f64;
                hn += 1;
            }
        }
        assert!(lo / (ln as f64) < hi / (hn as f64));
    }
}
