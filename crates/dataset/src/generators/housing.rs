//! U.S. Housing Survey 1993 — 1000 records × 11 categorical attributes.
//!
//! Protected attributes (paper §3): BUILT (25 categories, year-built bins),
//! DEGREE (8), GRADE1 (21). Year-built is unimodal around the post-war
//! decades; GRADE1 tracks DEGREE and INCOME tracks DEGREE, mimicking the
//! education/quality association of the survey.

use super::{AttrSpec, DatasetSpec, Marginal};

pub(super) fn spec() -> DatasetSpec {
    let attrs = vec![
        AttrSpec::nominal("REGION", 4, Marginal::Uniform),
        AttrSpec::nominal("METRO", 2, Marginal::Zipf(0.5)),
        AttrSpec::nominal("TENURE", 3, Marginal::Zipf(0.8)),
        // protected: 25 year-built bins, most homes mid-century
        AttrSpec::ordinal(
            "BUILT",
            25,
            Marginal::Peaked {
                peak: 0.55,
                spread: 0.25,
            },
        ),
        AttrSpec::ordinal(
            "UNITSF",
            9,
            Marginal::Peaked {
                peak: 0.4,
                spread: 0.3,
            },
        ),
        AttrSpec::ordinal(
            "BEDRMS",
            7,
            Marginal::Peaked {
                peak: 0.45,
                spread: 0.25,
            },
        ),
        // protected: educational attainment of householder
        AttrSpec::ordinal(
            "DEGREE",
            8,
            Marginal::Peaked {
                peak: 0.35,
                spread: 0.3,
            },
        ),
        // protected: housing grade, correlated with DEGREE
        AttrSpec::ordinal(
            "GRADE1",
            21,
            Marginal::Peaked {
                peak: 0.5,
                spread: 0.3,
            },
        )
        .linked(6, 0.12, 0.7),
        AttrSpec::ordinal("VALUE", 12, Marginal::Zipf(0.6)).linked(4, 0.2, 0.6),
        AttrSpec::ordinal(
            "HHAGE",
            10,
            Marginal::Peaked {
                peak: 0.5,
                spread: 0.35,
            },
        ),
        AttrSpec::ordinal("INCOME", 12, Marginal::Zipf(0.7)).linked(6, 0.2, 0.5),
    ];
    DatasetSpec {
        n_records: 1000,
        attrs,
        protected: vec![3, 6, 7],
    }
}

#[cfg(test)]
mod tests {
    use crate::generators::{DatasetKind, GeneratorConfig};

    #[test]
    fn shape_matches_paper() {
        let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(1));
        let schema = ds.table.schema();
        assert_eq!(schema.n_attrs(), 11);
        assert_eq!(schema.attr(ds.protected[0]).name(), "BUILT");
        assert_eq!(schema.attr(ds.protected[0]).n_categories(), 25);
        assert_eq!(schema.attr(ds.protected[1]).name(), "DEGREE");
        assert_eq!(schema.attr(ds.protected[1]).n_categories(), 8);
        assert_eq!(schema.attr(ds.protected[2]).name(), "GRADE1");
        assert_eq!(schema.attr(ds.protected[2]).n_categories(), 21);
    }

    #[test]
    fn protected_attrs_are_ordinal() {
        let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(1));
        for &a in &ds.protected {
            assert!(ds.table.schema().attr(a).kind().is_ordinal());
        }
    }

    #[test]
    fn built_is_unimodal_mid_range() {
        let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(17));
        let col = ds.table.column(3);
        let mut counts = [0usize; 25];
        for &v in col {
            counts[v as usize] += 1;
        }
        let argmax = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert!((6..=20).contains(&argmax), "peak at {argmax}");
    }
}
