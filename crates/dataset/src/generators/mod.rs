//! Seeded synthetic generators for the four datasets of the paper's
//! evaluation.
//!
//! The original experiments used UCI files (US Housing Survey '93, German
//! Credit, Solar Flare, Adult) which are not redistributable here. Instead,
//! each generator emits a dataset with **exactly** the paper's shape —
//! record count, attribute count, and the category cardinalities of the
//! protected attributes — and with skewed, correlated marginals typical of
//! the real data (see DESIGN.md §5 for the substitution argument). All
//! generators are deterministic per seed.

mod adult;
mod flare;
mod german;
mod housing;

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sample::{
    column_from_weights, correlated_code, peaked_weights, weighted_index, zipf_weights,
};
use crate::{AttrKind, Attribute, Code, Hierarchy, Result, Schema, SubTable, Table};

/// Which of the paper's four evaluation datasets to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// U.S. Housing Survey 1993 — 1000 records × 11 attributes; protected:
    /// BUILT (25), DEGREE (8), GRADE1 (21).
    Housing,
    /// German Credit — 1000 × 13; protected: EXISTACC (5), SAVINGS (6),
    /// PRESEMPLOY (6).
    German,
    /// Solar Flare — 1066 × 13; protected: CLASS (8), LARGSPOT (7),
    /// SPOTDIST (5).
    Flare,
    /// Adult — 1000 × 8; protected: EDUCATION (16), MARITAL-STATUS (7),
    /// OCCUPATION (14).
    Adult,
}

impl DatasetKind {
    /// All four datasets in the paper's presentation order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Housing,
            DatasetKind::German,
            DatasetKind::Flare,
            DatasetKind::Adult,
        ]
    }

    /// Human-readable dataset name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Housing => "Housing",
            DatasetKind::German => "German",
            DatasetKind::Flare => "Flare",
            DatasetKind::Adult => "Adult",
        }
    }

    /// Record count used in the paper.
    pub fn default_records(self) -> usize {
        match self {
            DatasetKind::Flare => 1066,
            _ => 1000,
        }
    }

    /// Generate the dataset.
    pub fn generate(self, cfg: &GeneratorConfig) -> Dataset {
        let spec = match self {
            DatasetKind::Housing => housing::spec(),
            DatasetKind::German => german::spec(),
            DatasetKind::Flare => flare::spec(),
            DatasetKind::Adult => adult::spec(),
        };
        build(self, &spec, cfg).expect("generator specs are statically valid")
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; every column and correlation draw derives from it.
    pub seed: u64,
    /// Override the paper's record count (useful for fast tests/benches).
    pub n_records: Option<usize>,
}

impl GeneratorConfig {
    /// Config with the paper's record counts.
    pub fn seeded(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            n_records: None,
        }
    }

    /// Override the number of records.
    pub fn with_records(mut self, n: usize) -> Self {
        self.n_records = Some(n);
        self
    }
}

/// A generated dataset: the table, which attributes the paper protects, and
/// a generalization hierarchy per attribute (used by recoding methods).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which of the four datasets this is.
    pub kind: DatasetKind,
    /// The full original file.
    pub table: Table,
    /// Indices of the protected attributes (3 per dataset in the paper).
    pub protected: Vec<usize>,
    /// One hierarchy per attribute of the schema.
    pub hierarchies: Vec<Hierarchy>,
}

impl Dataset {
    /// The sub-table of protected columns (the evolutionary genotype's
    /// original reference).
    pub fn protected_subtable(&self) -> SubTable {
        self.table
            .subtable(&self.protected)
            .expect("protected indices are valid by construction")
    }

    /// Hierarchies of the protected attributes, in protected order.
    pub fn protected_hierarchies(&self) -> Vec<&Hierarchy> {
        self.protected
            .iter()
            .map(|&a| &self.hierarchies[a])
            .collect()
    }
}

/// Marginal distribution shape for one generated attribute.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Marginal {
    /// Heavy-tailed, frequency-ranked categories.
    Zipf(f64),
    /// Unimodal around `peak` (fraction of range) with width `spread`.
    Peaked { peak: f64, spread: f64 },
    /// All categories equally likely.
    Uniform,
}

impl Marginal {
    fn weights(self, n: usize) -> Vec<f64> {
        match self {
            Marginal::Zipf(s) => zipf_weights(n, s),
            Marginal::Peaked { peak, spread } => peaked_weights(n, peak, spread),
            Marginal::Uniform => vec![1.0; n],
        }
    }
}

/// Correlation link to an earlier attribute in the spec.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParentLink {
    /// Index of the parent attribute (must precede the child).
    pub parent: usize,
    /// Tightness of the association (small = tight), see
    /// [`crate::sample::correlated_code`].
    pub spread: f64,
    /// Probability of drawing the correlated value rather than the marginal.
    pub mix: f64,
}

/// Declarative description of one attribute.
#[derive(Debug, Clone)]
pub(crate) struct AttrSpec {
    pub name: &'static str,
    pub kind: AttrKind,
    pub labels: Vec<String>,
    pub marginal: Marginal,
    pub link: Option<ParentLink>,
}

impl AttrSpec {
    pub(crate) fn ordinal(name: &'static str, n: usize, marginal: Marginal) -> Self {
        AttrSpec {
            name,
            kind: AttrKind::Ordinal,
            labels: (0..n).map(|i| format!("{name}_{i}")).collect(),
            marginal,
            link: None,
        }
    }

    pub(crate) fn nominal(name: &'static str, n: usize, marginal: Marginal) -> Self {
        AttrSpec {
            kind: AttrKind::Nominal,
            ..AttrSpec::ordinal(name, n, marginal)
        }
    }

    pub(crate) fn with_labels(mut self, labels: &[&str]) -> Self {
        assert_eq!(labels.len(), self.labels.len(), "label count mismatch");
        self.labels = labels.iter().map(|s| (*s).to_string()).collect();
        self
    }

    pub(crate) fn linked(mut self, parent: usize, spread: f64, mix: f64) -> Self {
        self.link = Some(ParentLink {
            parent,
            spread,
            mix,
        });
        self
    }
}

/// Full declarative dataset description.
#[derive(Debug, Clone)]
pub(crate) struct DatasetSpec {
    pub n_records: usize,
    pub attrs: Vec<AttrSpec>,
    pub protected: Vec<usize>,
}

/// Materialize a spec into a dataset.
pub(crate) fn build(
    kind: DatasetKind,
    spec: &DatasetSpec,
    cfg: &GeneratorConfig,
) -> Result<Dataset> {
    let n = cfg.n_records.unwrap_or(spec.n_records);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE ^ (kind as u64) << 32);

    let attrs = spec
        .attrs
        .iter()
        .map(|a| Attribute::new(a.name, a.kind, a.labels.clone()))
        .collect::<Result<Vec<_>>>()?;
    let schema = Arc::new(Schema::new(attrs)?);

    let mut columns: Vec<Vec<Code>> = Vec::with_capacity(spec.attrs.len());
    for (j, aspec) in spec.attrs.iter().enumerate() {
        let c = aspec.labels.len();
        let weights = aspec.marginal.weights(c);
        let col = match aspec.link {
            None => column_from_weights(&weights, n, &mut rng),
            Some(link) => {
                assert!(link.parent < j, "parent links must point backwards");
                let parent_cats = spec.attrs[link.parent].labels.len();
                let parent_col = &columns[link.parent];
                (0..n)
                    .map(|i| {
                        if rng.gen_bool(link.mix) {
                            correlated_code(parent_col[i], parent_cats, c, link.spread, &mut rng)
                        } else {
                            weighted_index(&weights, &mut rng) as Code
                        }
                    })
                    .collect()
            }
        };
        columns.push(col);
    }

    // Hierarchies: ordinal attributes get range merging, nominal ones
    // frequency folding based on the generated counts.
    let mut hierarchies = Vec::with_capacity(spec.attrs.len());
    for (j, aspec) in spec.attrs.iter().enumerate() {
        let attr = schema.attr(j);
        let h = match aspec.kind {
            AttrKind::Ordinal => Hierarchy::ordinal_auto(attr),
            AttrKind::Nominal => {
                let mut counts = vec![0usize; attr.n_categories()];
                for &code in &columns[j] {
                    counts[code as usize] += 1;
                }
                Hierarchy::nominal_from_counts(attr, &counts)?
            }
        };
        hierarchies.push(h);
    }

    let table = Table::from_columns(schema, columns)?;
    Ok(Dataset {
        kind,
        table,
        protected: spec.protected.clone(),
        hierarchies,
    })
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_match_paper_shape() {
        let expect = [
            (DatasetKind::Housing, 1000, 11, vec![25, 8, 21]),
            (DatasetKind::German, 1000, 13, vec![5, 6, 6]),
            (DatasetKind::Flare, 1066, 13, vec![8, 7, 5]),
            (DatasetKind::Adult, 1000, 8, vec![16, 7, 14]),
        ];
        for (kind, rows, attrs, cats) in expect {
            let ds = kind.generate(&GeneratorConfig::seeded(11));
            assert_eq!(ds.table.n_rows(), rows, "{}", kind.name());
            assert_eq!(ds.table.n_attrs(), attrs, "{}", kind.name());
            let got: Vec<usize> = ds
                .protected
                .iter()
                .map(|&a| ds.table.schema().attr(a).n_categories())
                .collect();
            assert_eq!(got, cats, "{}", kind.name());
            assert_eq!(ds.protected.len(), 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DatasetKind::Adult.generate(&GeneratorConfig::seeded(5));
        let b = DatasetKind::Adult.generate(&GeneratorConfig::seeded(5));
        for j in 0..a.table.n_attrs() {
            assert_eq!(a.table.column(j), b.table.column(j));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetKind::Flare.generate(&GeneratorConfig::seeded(1));
        let b = DatasetKind::Flare.generate(&GeneratorConfig::seeded(2));
        let same = (0..a.table.n_attrs()).all(|j| a.table.column(j) == b.table.column(j));
        assert!(!same);
    }

    #[test]
    fn record_override_is_honoured() {
        let ds = DatasetKind::German.generate(&GeneratorConfig::seeded(3).with_records(64));
        assert_eq!(ds.table.n_rows(), 64);
    }

    #[test]
    fn hierarchies_cover_every_attribute() {
        let ds = DatasetKind::Housing.generate(&GeneratorConfig::seeded(9));
        assert_eq!(ds.hierarchies.len(), ds.table.n_attrs());
        for (j, h) in ds.hierarchies.iter().enumerate() {
            let c = ds.table.schema().attr(j).n_categories() as Code;
            for code in 0..c {
                assert!(h.level(0).map(code) == code);
            }
        }
    }

    #[test]
    fn protected_subtable_matches_columns() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(21));
        let sub = ds.protected_subtable();
        assert_eq!(sub.n_attrs(), 3);
        for (k, &a) in ds.protected.iter().enumerate() {
            assert_eq!(sub.column(k), ds.table.column(a));
        }
    }

    #[test]
    fn protected_attributes_are_correlated() {
        // Adult links OCCUPATION to EDUCATION; verify a dependence signal:
        // mean occupation code differs between low/high education halves.
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(33));
        let edu = ds.table.column(ds.protected[0]);
        let occ = ds.table.column(ds.protected[2]);
        let (mut low, mut ln, mut high, mut hn) = (0f64, 0usize, 0f64, 0usize);
        for i in 0..edu.len() {
            if edu[i] < 8 {
                low += occ[i] as f64;
                ln += 1;
            } else {
                high += occ[i] as f64;
                hn += 1;
            }
        }
        let (ml, mh) = (low / ln.max(1) as f64, high / hn.max(1) as f64);
        assert!(
            (ml - mh).abs() > 0.3,
            "expected association, got {ml} vs {mh}"
        );
    }

    #[test]
    fn marginals_are_skewed_not_uniform() {
        let ds = DatasetKind::Flare.generate(&GeneratorConfig::seeded(4));
        let col = ds.table.column(ds.protected[0]);
        let c = ds.table.schema().attr(ds.protected[0]).n_categories();
        let mut counts = vec![0usize; c];
        for &v in col {
            counts[v as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 3 * (min + 1), "expected skew, counts {counts:?}");
    }
}
