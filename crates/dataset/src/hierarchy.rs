//! Generalization hierarchies (value generalization hierarchies, VGH).
//!
//! Global recoding and top/bottom coding replace categories by coarser
//! groups. To keep every protected file inside the *original* category
//! domain — a requirement of the paper's mutation operator, which draws
//! replacements "among all valid values for the specific variable" — each
//! group is represented by one of its member categories (the median member
//! for ordinal attributes, the modal member for nominal ones). This is
//! "global recoding followed by representative labeling": records merged
//! into one group become indistinguishable on that attribute, which is the
//! property the IL/DR measures react to.

use crate::{Attribute, Code, DatasetError, Result};

/// One level of a hierarchy: a total map from base categories to
/// representative base categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyLevel {
    repr_of: Vec<Code>,
}

impl HierarchyLevel {
    /// Build a level from an explicit map `code -> representative code`.
    ///
    /// # Errors
    /// [`DatasetError::InvalidCode`] when a representative falls outside the
    /// base dictionary, [`DatasetError::SchemaMismatch`] when the map does
    /// not cover every category.
    pub fn new(attr: &Attribute, repr_of: Vec<Code>) -> Result<Self> {
        if repr_of.len() != attr.n_categories() {
            return Err(DatasetError::SchemaMismatch(format!(
                "level maps {} categories, attribute `{}` has {}",
                repr_of.len(),
                attr.name(),
                attr.n_categories()
            )));
        }
        for &r in &repr_of {
            attr.check(r)?;
        }
        Ok(HierarchyLevel { repr_of })
    }

    /// Representative of `code`.
    #[inline]
    pub fn map(&self, code: Code) -> Code {
        self.repr_of[code as usize]
    }

    /// The raw map.
    pub fn repr_table(&self) -> &[Code] {
        &self.repr_of
    }

    /// Number of distinct groups at this level.
    pub fn n_groups(&self) -> usize {
        let mut seen = vec![false; self.repr_of.len()];
        let mut n = 0;
        for &r in &self.repr_of {
            if !seen[r as usize] {
                seen[r as usize] = true;
                n += 1;
            }
        }
        n
    }
}

/// A chain of increasingly coarse recodings of one attribute.
/// `level(0)` is always the identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    levels: Vec<HierarchyLevel>,
}

impl Hierarchy {
    /// Build a hierarchy from explicit levels (e.g. a user-supplied VGH
    /// loaded from a file). Level 0 must be the identity; all levels must
    /// share the attribute's domain. Nestedness between consecutive levels
    /// is *not* required here — the lattice searches in `cdp-privacy`
    /// check it separately because only they depend on it.
    ///
    /// # Errors
    /// [`DatasetError::Empty`] with no levels,
    /// [`DatasetError::SchemaMismatch`] when level 0 is not the identity or
    /// a level's domain disagrees with the attribute.
    pub fn from_levels(attr: &Attribute, levels: Vec<HierarchyLevel>) -> Result<Self> {
        if levels.is_empty() {
            return Err(DatasetError::Empty("hierarchy levels".into()));
        }
        for (l, level) in levels.iter().enumerate() {
            if level.repr_table().len() != attr.n_categories() {
                return Err(DatasetError::SchemaMismatch(format!(
                    "level {l} maps {} categories, attribute `{}` has {}",
                    level.repr_table().len(),
                    attr.name(),
                    attr.n_categories()
                )));
            }
        }
        let identity = (0..attr.n_categories() as Code).collect::<Vec<_>>();
        if levels[0].repr_table() != identity.as_slice() {
            return Err(DatasetError::SchemaMismatch(
                "hierarchy level 0 must be the identity".into(),
            ));
        }
        Ok(Hierarchy { levels })
    }

    /// Identity-only hierarchy (no generalization available).
    pub fn identity(attr: &Attribute) -> Self {
        let repr_of = (0..attr.n_categories() as Code).collect();
        Hierarchy {
            levels: vec![HierarchyLevel { repr_of }],
        }
    }

    /// Build a hierarchy for an *ordinal* attribute by repeatedly merging
    /// contiguous runs of categories; level `ℓ ≥ 1` groups categories into
    /// runs of `2^ℓ`, each represented by the run's median member. Levels
    /// stop once a single group remains.
    pub fn ordinal_auto(attr: &Attribute) -> Self {
        let c = attr.n_categories();
        let mut levels = vec![Hierarchy::identity(attr).levels.remove(0)];
        let mut width = 2usize;
        while width < 2 * c {
            let mut repr_of = Vec::with_capacity(c);
            for code in 0..c {
                let start = (code / width) * width;
                let end = (start + width).min(c);
                let median = start + (end - start - 1) / 2;
                repr_of.push(median as Code);
            }
            let level = HierarchyLevel { repr_of };
            if level.n_groups() == levels.last().expect("non-empty").n_groups() {
                break;
            }
            let finished = level.n_groups() == 1;
            levels.push(level);
            if finished {
                break;
            }
            width *= 2;
        }
        Hierarchy { levels }
    }

    /// Build a hierarchy for a *nominal* attribute from observed counts:
    /// level `ℓ ≥ 1` keeps the `max(1, c / 2^ℓ)` most frequent categories
    /// and folds every other category into the modal (most frequent)
    /// category. This mirrors the common "collapse rare categories" recoding
    /// used by statistical agencies.
    ///
    /// # Errors
    /// [`DatasetError::SchemaMismatch`] when `counts` does not cover the
    /// dictionary.
    pub fn nominal_from_counts(attr: &Attribute, counts: &[usize]) -> Result<Self> {
        let c = attr.n_categories();
        if counts.len() != c {
            return Err(DatasetError::SchemaMismatch(format!(
                "{} counts for attribute `{}` with {} categories",
                counts.len(),
                attr.name(),
                c
            )));
        }
        // category codes sorted by descending frequency (stable on ties)
        let mut by_freq: Vec<usize> = (0..c).collect();
        by_freq.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let modal = by_freq[0] as Code;

        let mut levels = vec![Hierarchy::identity(attr).levels.remove(0)];
        let mut keep = c / 2;
        loop {
            let keep_now = keep.max(1);
            let mut repr_of: Vec<Code> = (0..c as Code).collect();
            for &cat in by_freq.iter().skip(keep_now) {
                repr_of[cat] = modal;
            }
            let level = HierarchyLevel { repr_of };
            if level.n_groups() < levels.last().expect("non-empty").n_groups() {
                let finished = level.n_groups() == 1;
                levels.push(level);
                if finished {
                    break;
                }
            }
            if keep_now == 1 {
                break;
            }
            keep /= 2;
        }
        Ok(Hierarchy { levels })
    }

    /// Number of levels, counting the identity level 0.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level accessor; `level(0)` is the identity.
    ///
    /// # Panics
    /// Panics on out-of-range levels.
    pub fn level(&self, l: usize) -> &HierarchyLevel {
        &self.levels[l]
    }

    /// Clamp an arbitrary requested level to the deepest available one.
    pub fn level_clamped(&self, l: usize) -> &HierarchyLevel {
        &self.levels[l.min(self.levels.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attribute;

    #[test]
    fn ordinal_auto_shrinks_groups() {
        let attr = Attribute::ordinal("EDUCATION", 16);
        let h = Hierarchy::ordinal_auto(&attr);
        // levels: identity(16), 8, 4, 2, 1 groups
        let groups: Vec<usize> = (0..h.n_levels()).map(|l| h.level(l).n_groups()).collect();
        assert_eq!(groups, vec![16, 8, 4, 2, 1]);
    }

    #[test]
    fn ordinal_auto_representative_is_member_of_run() {
        let attr = Attribute::ordinal("B", 10);
        let h = Hierarchy::ordinal_auto(&attr);
        let l1 = h.level(1); // runs of 2
        for code in 0..10u16 {
            let r = l1.map(code);
            assert_eq!(r / 2, code / 2, "representative stays within the run");
        }
    }

    #[test]
    fn ordinal_auto_handles_odd_sizes() {
        let attr = Attribute::ordinal("GRADE1", 21);
        let h = Hierarchy::ordinal_auto(&attr);
        for l in 0..h.n_levels() {
            let level = h.level(l);
            for code in 0..21u16 {
                assert!(level.map(code) < 21);
            }
        }
        assert_eq!(h.level(h.n_levels() - 1).n_groups(), 1);
    }

    #[test]
    fn nominal_from_counts_folds_rare_into_modal() {
        let attr = Attribute::nominal("OCC", 5);
        let counts = [50, 10, 30, 5, 5];
        let h = Hierarchy::nominal_from_counts(&attr, &counts).unwrap();
        let l1 = h.level(1); // keeps 2 most frequent: codes 0 and 2
        assert_eq!(l1.map(0), 0);
        assert_eq!(l1.map(2), 2);
        assert_eq!(l1.map(1), 0); // folded to modal
        assert_eq!(l1.map(3), 0);
        assert_eq!(h.level(h.n_levels() - 1).n_groups(), 1);
    }

    #[test]
    fn nominal_counts_must_cover_dictionary() {
        let attr = Attribute::nominal("OCC", 5);
        assert!(Hierarchy::nominal_from_counts(&attr, &[1, 2]).is_err());
    }

    #[test]
    fn identity_level_is_identity() {
        let attr = Attribute::ordinal("A", 7);
        let h = Hierarchy::ordinal_auto(&attr);
        for code in 0..7u16 {
            assert_eq!(h.level(0).map(code), code);
        }
    }

    #[test]
    fn level_clamped_saturates() {
        let attr = Attribute::ordinal("A", 4);
        let h = Hierarchy::ordinal_auto(&attr);
        let deepest = h.level(h.n_levels() - 1).clone();
        assert_eq!(h.level_clamped(99), &deepest);
    }

    #[test]
    fn single_category_attribute() {
        let attr = Attribute::ordinal("ONE", 1);
        let h = Hierarchy::ordinal_auto(&attr);
        assert_eq!(h.n_levels(), 1);
        assert_eq!(h.level(0).map(0), 0);
    }

    #[test]
    fn from_levels_accepts_custom_vgh() {
        let attr = Attribute::nominal("REGION", 4);
        let levels = vec![
            HierarchyLevel::new(&attr, vec![0, 1, 2, 3]).unwrap(),
            HierarchyLevel::new(&attr, vec![0, 0, 2, 2]).unwrap(),
            HierarchyLevel::new(&attr, vec![0, 0, 0, 0]).unwrap(),
        ];
        let h = Hierarchy::from_levels(&attr, levels).unwrap();
        assert_eq!(h.n_levels(), 3);
        assert_eq!(h.level(1).map(1), 0);
        assert_eq!(h.level(1).n_groups(), 2);
    }

    #[test]
    fn from_levels_requires_identity_at_level_zero() {
        let attr = Attribute::nominal("REGION", 3);
        let not_identity = vec![HierarchyLevel::new(&attr, vec![0, 0, 2]).unwrap()];
        assert!(Hierarchy::from_levels(&attr, not_identity).is_err());
        assert!(Hierarchy::from_levels(&attr, vec![]).is_err());
    }

    #[test]
    fn from_levels_checks_domain_width() {
        let attr = Attribute::nominal("REGION", 3);
        let other = Attribute::nominal("OTHER", 5);
        let wrong = vec![HierarchyLevel::new(&other, vec![0, 1, 2, 3, 4]).unwrap()];
        assert!(Hierarchy::from_levels(&attr, wrong).is_err());
    }
}
