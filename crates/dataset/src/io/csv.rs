//! Minimal CSV codec for categorical tables.
//!
//! The dialect is deliberately small: comma separator, one header line,
//! no quoting (category labels in this domain are identifiers; labels
//! containing commas, quotes or newlines are rejected on write rather than
//! quoted). Hand-rolled to keep the workspace dependency-light.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::{AttrKind, Attribute, Code, DatasetError, Result, Schema, Table};

/// Where the schema of a parsed file comes from.
#[derive(Debug, Clone)]
pub enum SchemaSource {
    /// Build the schema from the file itself: every attribute is nominal and
    /// categories are interned in order of first appearance.
    Infer,
    /// Enforce an existing schema; labels not in a dictionary are an error.
    Fixed(Arc<Schema>),
}

/// Serialize a table as CSV.
///
/// # Errors
/// I/O failures, or [`DatasetError::Parse`] when a label would corrupt the
/// unquoted dialect.
pub fn write_table<W: Write>(table: &Table, out: &mut W) -> Result<()> {
    let schema = table.schema();
    let mut w = BufWriter::new(out);
    for (j, attr) in schema.attrs().iter().enumerate() {
        check_label(attr.name())?;
        if j > 0 {
            write!(w, ",")?;
        }
        write!(w, "{}", attr.name())?;
    }
    writeln!(w)?;
    for i in 0..table.n_rows() {
        for j in 0..table.n_attrs() {
            let label = schema.attr(j).label(table.value(i, j));
            check_label(label)?;
            if j > 0 {
                write!(w, ",")?;
            }
            write!(w, "{label}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Write a table to a file path.
pub fn write_table_path<P: AsRef<Path>>(table: &Table, path: P) -> Result<()> {
    let mut f = File::create(path)?;
    write_table(table, &mut f)
}

/// Parse a CSV table.
///
/// # Errors
/// [`DatasetError::Parse`] on malformed rows, [`DatasetError::UnknownCategory`]
/// for labels missing from a fixed schema.
pub fn read_table<R: BufRead>(source: SchemaSource, input: R) -> Result<Table> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| DatasetError::Empty("CSV input".into()))?;
    let header = header?;
    let names: Vec<&str> = header.split(',').collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(DatasetError::Parse {
            line: 1,
            msg: "empty attribute name in header".into(),
        });
    }

    match source {
        SchemaSource::Fixed(schema) => {
            if names.len() != schema.n_attrs()
                || names
                    .iter()
                    .zip(schema.attrs())
                    .any(|(n, a)| *n != a.name())
            {
                return Err(DatasetError::SchemaMismatch(
                    "CSV header does not match the fixed schema".into(),
                ));
            }
            let mut columns: Vec<Vec<Code>> = vec![Vec::new(); schema.n_attrs()];
            for (idx, line) in lines {
                let line = line?;
                if line.is_empty() {
                    continue;
                }
                parse_row_fixed(&schema, &line, idx + 1, &mut columns)?;
            }
            Table::from_columns(schema, columns)
        }
        SchemaSource::Infer => {
            let mut dicts: Vec<Vec<String>> = vec![Vec::new(); names.len()];
            let mut columns: Vec<Vec<Code>> = vec![Vec::new(); names.len()];
            for (idx, line) in lines {
                let line = line?;
                if line.is_empty() {
                    continue;
                }
                let fields: Vec<&str> = line.split(',').collect();
                if fields.len() != names.len() {
                    return Err(DatasetError::Parse {
                        line: idx + 1,
                        msg: format!("{} fields, header has {}", fields.len(), names.len()),
                    });
                }
                for (j, field) in fields.iter().enumerate() {
                    let code = match dicts[j].iter().position(|c| c == field) {
                        Some(p) => p as Code,
                        None => {
                            dicts[j].push((*field).to_string());
                            (dicts[j].len() - 1) as Code
                        }
                    };
                    columns[j].push(code);
                }
            }
            let attrs = names
                .iter()
                .zip(dicts)
                .map(|(name, cats)| Attribute::new(*name, AttrKind::Nominal, cats))
                .collect::<Result<Vec<_>>>()?;
            let schema = Arc::new(Schema::new(attrs)?);
            Table::from_columns(schema, columns)
        }
    }
}

/// Read a table from a file path.
pub fn read_table_path<P: AsRef<Path>>(source: SchemaSource, path: P) -> Result<Table> {
    let f = File::open(path)?;
    read_table(source, BufReader::new(f))
}

fn parse_row_fixed(
    schema: &Arc<Schema>,
    line: &str,
    line_no: usize,
    columns: &mut [Vec<Code>],
) -> Result<()> {
    let mut j = 0;
    for field in line.split(',') {
        if j >= schema.n_attrs() {
            return Err(DatasetError::Parse {
                line: line_no,
                msg: "too many fields".into(),
            });
        }
        let attr = schema.attr(j);
        let code = attr
            .code_of(field)
            .ok_or_else(|| DatasetError::UnknownCategory {
                attr: attr.name().to_string(),
                label: field.to_string(),
            })?;
        columns[j].push(code);
        j += 1;
    }
    if j != schema.n_attrs() {
        return Err(DatasetError::Parse {
            line: line_no,
            msg: format!("{} fields, schema has {}", j, schema.n_attrs()),
        });
    }
    Ok(())
}

fn check_label(label: &str) -> Result<()> {
    if label.contains(',') || label.contains('\n') || label.contains('"') {
        Err(DatasetError::Parse {
            line: 0,
            msg: format!("label `{label}` cannot be written unquoted"),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::new(
                    "COLOR",
                    AttrKind::Nominal,
                    vec!["red".into(), "green".into()],
                )
                .unwrap(),
                Attribute::new(
                    "SIZE",
                    AttrKind::Ordinal,
                    vec!["s".into(), "m".into(), "l".into()],
                )
                .unwrap(),
            ])
            .unwrap(),
        );
        Table::from_rows(schema, &[vec![0, 2], vec![1, 0], vec![0, 1]]).unwrap()
    }

    #[test]
    fn round_trip_fixed_schema() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let parsed =
            read_table(SchemaSource::Fixed(Arc::clone(t.schema())), buf.as_slice()).unwrap();
        assert_eq!(parsed.n_rows(), 3);
        for j in 0..t.n_attrs() {
            assert_eq!(parsed.column(j), t.column(j));
        }
    }

    #[test]
    fn round_trip_inferred_schema() {
        let t = sample_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let parsed = read_table(SchemaSource::Infer, buf.as_slice()).unwrap();
        assert_eq!(parsed.n_rows(), 3);
        // labels round-trip even though codes may be re-interned
        assert_eq!(parsed.schema().attr(0).label(parsed.value(0, 0)), "red");
        assert_eq!(parsed.schema().attr(1).label(parsed.value(0, 1)), "l");
    }

    #[test]
    fn header_mismatch_rejected() {
        let t = sample_table();
        let csv = "WRONG,SIZE\nred,s\n";
        let res = read_table(SchemaSource::Fixed(Arc::clone(t.schema())), csv.as_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn unknown_label_rejected() {
        let t = sample_table();
        let csv = "COLOR,SIZE\nblue,s\n";
        let res = read_table(SchemaSource::Fixed(Arc::clone(t.schema())), csv.as_bytes());
        assert!(matches!(res, Err(DatasetError::UnknownCategory { .. })));
    }

    #[test]
    fn ragged_row_rejected() {
        let csv = "A,B\nx\n";
        let res = read_table(SchemaSource::Infer, csv.as_bytes());
        assert!(matches!(res, Err(DatasetError::Parse { line: 2, .. })));
    }

    #[test]
    fn empty_input_rejected() {
        let res = read_table(SchemaSource::Infer, "".as_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "A\nx\n\ny\n";
        let t = read_table(SchemaSource::Infer, csv.as_bytes()).unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn comma_in_label_rejected_on_write() {
        let schema = Arc::new(
            Schema::new(vec![Attribute::new(
                "X",
                AttrKind::Nominal,
                vec!["a,b".into()],
            )
            .unwrap()])
            .unwrap(),
        );
        let t = Table::from_rows(schema, &[vec![0]]).unwrap();
        let mut buf = Vec::new();
        assert!(write_table(&t, &mut buf).is_err());
    }

    #[test]
    fn path_round_trip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("cdp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_table_path(&t, &path).unwrap();
        let parsed = read_table_path(SchemaSource::Fixed(Arc::clone(t.schema())), &path).unwrap();
        assert_eq!(parsed.column(0), t.column(0));
        std::fs::remove_file(&path).ok();
    }
}
