//! Hierarchy (VGH) files: the ARX-style per-attribute generalization table.
//!
//! One CSV-like file per attribute, no header. Each row describes one base
//! category; column 0 is the base label, column `ℓ ≥ 1` the group label at
//! level `ℓ`. Example for a 4-category REGION attribute with two
//! generalization levels:
//!
//! ```text
//! north,north-ish,anywhere
//! south,south-ish,anywhere
//! east,north-ish,anywhere
//! west,south-ish,anywhere
//! ```
//!
//! Because the workspace keeps every masked file inside the *original*
//! category domain (the paper's mutation operator requires it), group
//! labels are not added to the dictionary: each level-`ℓ` group is
//! represented by its first member category in file order. Group labels
//! therefore only define the *grouping*; `write_hierarchy` emits
//! representative member labels so a round-trip is exact.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{Attribute, Code, DatasetError, Hierarchy, HierarchyLevel, Result};

/// Parse a hierarchy file for `attr`.
///
/// Every base category must appear exactly once in column 0; all rows must
/// share one column count; level 0 (the base column) is the identity by
/// construction.
///
/// # Errors
/// [`DatasetError::Parse`] on ragged or duplicate rows,
/// [`DatasetError::UnknownCategory`] for labels outside the dictionary,
/// [`DatasetError::SchemaMismatch`] when categories are missing.
pub fn read_hierarchy<R: BufRead>(attr: &Attribute, input: R) -> Result<Hierarchy> {
    let c = attr.n_categories();
    let mut n_levels: Option<usize> = None;
    // group label per (level-1, base code); level 0 is implicit
    let mut group_labels: Vec<Vec<Option<String>>> = Vec::new();
    let mut seen = vec![false; c];

    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        match n_levels {
            None => {
                if fields.len() < 2 {
                    return Err(DatasetError::Parse {
                        line: idx + 1,
                        msg: "hierarchy rows need a base label and at least one level".into(),
                    });
                }
                n_levels = Some(fields.len());
                group_labels = vec![vec![None; c]; fields.len() - 1];
            }
            Some(expected) if fields.len() != expected => {
                return Err(DatasetError::Parse {
                    line: idx + 1,
                    msg: format!("{} fields, first row has {}", fields.len(), expected),
                });
            }
            Some(_) => {}
        }
        let base = attr
            .code_of(fields[0])
            .ok_or_else(|| DatasetError::UnknownCategory {
                attr: attr.name().to_string(),
                label: fields[0].to_string(),
            })?;
        if seen[base as usize] {
            return Err(DatasetError::Parse {
                line: idx + 1,
                msg: format!("duplicate base category `{}`", fields[0]),
            });
        }
        seen[base as usize] = true;
        for (l, field) in fields.iter().skip(1).enumerate() {
            group_labels[l][base as usize] = Some((*field).to_string());
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(DatasetError::SchemaMismatch(format!(
            "hierarchy file misses category `{}` of `{}`",
            attr.label(missing as Code),
            attr.name()
        )));
    }

    // levels: identity + one per group column. The representative of a
    // group is the member whose label equals the group label when there is
    // one (so `write_hierarchy` output — and user files that name groups by
    // a member category — round-trip exactly), otherwise the group's first
    // member in code order.
    let mut levels = vec![HierarchyLevel::new(
        attr,
        (0..c as Code).collect::<Vec<_>>(),
    )?];
    for labels in &group_labels {
        let mut groups: Vec<(&str, Vec<Code>)> = Vec::new();
        for (code, label) in labels.iter().enumerate() {
            let label = label.as_ref().expect("all rows seen").as_str();
            match groups.iter_mut().find(|(g, _)| *g == label) {
                Some((_, members)) => members.push(code as Code),
                None => groups.push((label, vec![code as Code])),
            }
        }
        let mut repr_of: Vec<Code> = vec![0; c];
        for (label, members) in &groups {
            let repr = members
                .iter()
                .copied()
                .find(|&m| attr.label(m) == *label)
                .unwrap_or(members[0]);
            for &m in members {
                repr_of[m as usize] = repr;
            }
        }
        levels.push(HierarchyLevel::new(attr, repr_of)?);
    }
    Hierarchy::from_levels(attr, levels)
}

/// Read a hierarchy from a file path.
pub fn read_hierarchy_path<P: AsRef<Path>>(attr: &Attribute, path: P) -> Result<Hierarchy> {
    let f = File::open(path)?;
    read_hierarchy(attr, BufReader::new(f))
}

/// Serialize a hierarchy in the format [`read_hierarchy`] parses. Group
/// labels are the representative member labels, so
/// `read_hierarchy(write_hierarchy(h)) == h`.
///
/// # Errors
/// I/O failures, or [`DatasetError::Parse`] when a label would corrupt the
/// unquoted dialect.
pub fn write_hierarchy<W: Write>(attr: &Attribute, h: &Hierarchy, out: &mut W) -> Result<()> {
    let mut w = BufWriter::new(out);
    for label in attr.categories() {
        if label.contains(',') || label.contains('\n') || label.contains('"') {
            return Err(DatasetError::Parse {
                line: 0,
                msg: format!("label `{label}` cannot be written unquoted"),
            });
        }
    }
    for code in 0..attr.n_categories() as Code {
        write!(w, "{}", attr.label(code))?;
        for l in 1..h.n_levels() {
            write!(w, ",{}", attr.label(h.level(l).map(code)))?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Write a hierarchy to a file path.
pub fn write_hierarchy_path<P: AsRef<Path>>(
    attr: &Attribute,
    h: &Hierarchy,
    path: P,
) -> Result<()> {
    let mut f = File::create(path)?;
    write_hierarchy(attr, h, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrKind;

    fn region() -> Attribute {
        Attribute::new(
            "REGION",
            AttrKind::Nominal,
            vec!["north".into(), "south".into(), "east".into(), "west".into()],
        )
        .unwrap()
    }

    #[test]
    fn parses_grouping_and_uses_member_representatives() {
        let attr = region();
        let text = "north,N,all\nsouth,S,all\neast,N,all\nwest,S,all\n";
        let h = read_hierarchy(&attr, text.as_bytes()).unwrap();
        assert_eq!(h.n_levels(), 3);
        // level 1: north/east -> north (first member), south/west -> south
        assert_eq!(h.level(1).map(0), 0);
        assert_eq!(h.level(1).map(2), 0);
        assert_eq!(h.level(1).map(1), 1);
        assert_eq!(h.level(1).map(3), 1);
        // level 2: everything -> north
        for code in 0..4 {
            assert_eq!(h.level(2).map(code), 0);
        }
    }

    #[test]
    fn round_trips_through_write() {
        let attr = region();
        let text = "north,N,all\nsouth,S,all\neast,N,all\nwest,S,all\n";
        let h = read_hierarchy(&attr, text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_hierarchy(&attr, &h, &mut buf).unwrap();
        let h2 = read_hierarchy(&attr, buf.as_slice()).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn auto_hierarchies_round_trip() {
        let attr = Attribute::ordinal("GRADE", 9);
        let h = Hierarchy::ordinal_auto(&attr);
        let mut buf = Vec::new();
        write_hierarchy(&attr, &h, &mut buf).unwrap();
        let h2 = read_hierarchy(&attr, buf.as_slice()).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn missing_category_rejected() {
        let attr = region();
        let text = "north,N\nsouth,S\neast,N\n"; // west missing
        let err = read_hierarchy(&attr, text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("west"));
    }

    #[test]
    fn duplicate_category_rejected() {
        let attr = region();
        let text = "north,N\nnorth,S\neast,N\nwest,S\n";
        assert!(read_hierarchy(&attr, text.as_bytes()).is_err());
    }

    #[test]
    fn unknown_label_rejected() {
        let attr = region();
        let text = "north,N\nsouth,S\neast,N\nmars,X\n";
        assert!(matches!(
            read_hierarchy(&attr, text.as_bytes()),
            Err(DatasetError::UnknownCategory { .. })
        ));
    }

    #[test]
    fn ragged_rows_rejected() {
        let attr = region();
        let text = "north,N,all\nsouth,S\neast,N,all\nwest,S,all\n";
        assert!(matches!(
            read_hierarchy(&attr, text.as_bytes()),
            Err(DatasetError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn base_only_rows_rejected() {
        let attr = region();
        let text = "north\nsouth\neast\nwest\n";
        assert!(read_hierarchy(&attr, text.as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped_and_path_round_trip() {
        let attr = region();
        let dir = std::env::temp_dir().join("cdp_hierarchy_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.csv");
        std::fs::write(&path, "north,N\n\nsouth,S\neast,N\nwest,S\n").unwrap();
        let h = read_hierarchy_path(&attr, &path).unwrap();
        assert_eq!(h.n_levels(), 2);
        let out = dir.join("region_out.csv");
        write_hierarchy_path(&attr, &h, &out).unwrap();
        assert_eq!(read_hierarchy_path(&attr, &out).unwrap(), h);
    }

    #[test]
    fn comma_label_rejected_on_write() {
        let attr = Attribute::new("X", AttrKind::Nominal, vec!["a,b".into(), "c".into()]).unwrap();
        let h = Hierarchy::identity(&attr);
        let mut buf = Vec::new();
        assert!(write_hierarchy(&attr, &h, &mut buf).is_err());
    }
}
