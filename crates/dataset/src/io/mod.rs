//! Reading and writing categorical microdata files.
//!
//! Only one interchange format is supported — header-carrying CSV — which is
//! what the original experiments consumed (protected files produced by SDC
//! tooling). Schemas can either be inferred from the file (all attributes
//! nominal, categories interned in order of first appearance) or imposed,
//! in which case unknown labels are an error.

mod csv;
mod hierarchy;
mod schema;

pub use csv::{read_table, read_table_path, write_table, write_table_path, SchemaSource};
pub use hierarchy::{read_hierarchy, read_hierarchy_path, write_hierarchy, write_hierarchy_path};
pub use schema::{read_schema, read_schema_path, write_schema, write_schema_path};
