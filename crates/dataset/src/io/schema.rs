//! Schema sidecar files: declaring attribute kinds and dictionaries.
//!
//! CSV inference (see [`super::SchemaSource::Infer`]) has two limits: every
//! attribute comes out nominal, and the category order is first-appearance
//! order — wrong for ordinal attributes, whose order drives the rank-based
//! measures (DBIL, interval disclosure, rank swapping) and the merged-run
//! hierarchies. A sidecar file fixes both. One attribute per line:
//!
//! ```text
//! AGE,ordinal,young|middle|old
//! CITY,nominal,north|south|east|west
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Category labels may
//! not contain `,`, `|`, `"` or newlines.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::{AttrKind, Attribute, DatasetError, Result, Schema};

/// Parse a schema sidecar.
///
/// # Errors
/// [`DatasetError::Parse`] on malformed lines or unknown kinds,
/// [`DatasetError::Empty`] when no attribute lines are present.
pub fn read_schema<R: BufRead>(input: R) -> Result<Schema> {
    let mut attrs = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(3, ',');
        let (name, kind_raw, cats_raw) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(k), Some(c)) if !n.is_empty() => (n, k, c),
            _ => {
                return Err(DatasetError::Parse {
                    line: idx + 1,
                    msg: "expected `name,kind,cat|cat|...`".into(),
                })
            }
        };
        let kind = match kind_raw {
            "ordinal" => AttrKind::Ordinal,
            "nominal" => AttrKind::Nominal,
            other => {
                return Err(DatasetError::Parse {
                    line: idx + 1,
                    msg: format!("unknown kind `{other}` (ordinal, nominal)"),
                })
            }
        };
        let categories: Vec<String> = cats_raw.split('|').map(str::to_string).collect();
        if categories.iter().any(String::is_empty) {
            return Err(DatasetError::Parse {
                line: idx + 1,
                msg: "empty category label".into(),
            });
        }
        attrs.push(Attribute::new(name, kind, categories)?);
    }
    if attrs.is_empty() {
        return Err(DatasetError::Empty("schema file".into()));
    }
    Schema::new(attrs)
}

/// Read a schema from a file path.
pub fn read_schema_path<P: AsRef<Path>>(path: P) -> Result<Schema> {
    let f = File::open(path)?;
    read_schema(BufReader::new(f))
}

/// Serialize a schema in the sidecar format.
///
/// # Errors
/// I/O failures, or [`DatasetError::Parse`] when a label would corrupt the
/// format.
pub fn write_schema<W: Write>(schema: &Schema, out: &mut W) -> Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# name,kind,categories (|-separated, in order)")?;
    for attr in schema.attrs() {
        for label in attr
            .categories()
            .iter()
            .chain(std::iter::once(&attr.name().to_string()))
        {
            if label.contains(',')
                || label.contains('|')
                || label.contains('\n')
                || label.contains('"')
            {
                return Err(DatasetError::Parse {
                    line: 0,
                    msg: format!("label `{label}` cannot be written in schema format"),
                });
            }
        }
        let kind = match attr.kind() {
            AttrKind::Ordinal => "ordinal",
            AttrKind::Nominal => "nominal",
        };
        writeln!(
            w,
            "{},{},{}",
            attr.name(),
            kind,
            attr.categories().join("|")
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Write a schema to a file path.
pub fn write_schema_path<P: AsRef<Path>>(schema: &Schema, path: P) -> Result<()> {
    let mut f = File::create(path)?;
    write_schema(schema, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kinds_and_dictionaries() {
        let text = "\
# comment
AGE,ordinal,young|middle|old

CITY,nominal,n|s|e|w
";
        let schema = read_schema(text.as_bytes()).unwrap();
        assert_eq!(schema.n_attrs(), 2);
        assert_eq!(schema.attr(0).kind(), AttrKind::Ordinal);
        assert_eq!(schema.attr(0).n_categories(), 3);
        assert_eq!(schema.attr(0).label(1), "middle");
        assert_eq!(schema.attr(1).kind(), AttrKind::Nominal);
        assert_eq!(schema.attr(1).code_of("w"), Some(3));
    }

    #[test]
    fn round_trips() {
        let text = "A,ordinal,1|2|3\nB,nominal,x|y\n";
        let schema = read_schema(text.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_schema(&schema, &mut buf).unwrap();
        let again = read_schema(buf.as_slice()).unwrap();
        assert_eq!(again.n_attrs(), 2);
        for j in 0..2 {
            assert_eq!(again.attr(j).name(), schema.attr(j).name());
            assert_eq!(again.attr(j).kind(), schema.attr(j).kind());
            assert_eq!(again.attr(j).categories(), schema.attr(j).categories());
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "A,ordinal",      // missing categories
            "A,diagonal,x|y", // unknown kind
            "A,nominal,x||y", // empty category
            ",nominal,x|y",   // empty name
        ] {
            assert!(read_schema(bad.as_bytes()).is_err(), "{bad} should fail");
        }
        assert!(read_schema("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "A,ordinal,1|2\nB,diagonal,x\n";
        match read_schema(text.as_bytes()) {
            Err(DatasetError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join("cdp_schema_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("schema.txt");
        let schema = read_schema("X,nominal,a|b\n".as_bytes()).unwrap();
        write_schema_path(&schema, &path).unwrap();
        let again = read_schema_path(&path).unwrap();
        assert_eq!(again.attr(0).name(), "X");
    }

    #[test]
    fn pipe_in_label_rejected_on_write() {
        let schema = Schema::new(vec![Attribute::new(
            "X",
            AttrKind::Nominal,
            vec!["a|b".into(), "c".into()],
        )
        .unwrap()])
        .unwrap();
        let mut buf = Vec::new();
        assert!(write_schema(&schema, &mut buf).is_err());
    }
}
