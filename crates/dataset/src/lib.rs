#![warn(missing_docs)]

//! # cdp-dataset
//!
//! Categorical microdata model for the reproduction of Marés & Torra,
//! *"An Evolutionary Optimization Approach for Categorical Data Protection"*
//! (PAIS/EDBT 2012).
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`Attribute`] / [`Schema`] — categorical variables (nominal or ordinal)
//!   with interned category dictionaries. Cell values are stored as compact
//!   [`Code`] integers, never as strings, so the hot paths of the
//!   evolutionary algorithm and the information-loss / disclosure-risk
//!   measures are allocation-free.
//! * [`Table`] — a column-major categorical data file (the paper's
//!   "original file X"), backed by one contiguous code arena.
//! * [`SubTable`] — the columns of the attributes selected for protection
//!   (the paper protects 3 attributes per dataset); this is the genotype the
//!   evolutionary algorithm manipulates. Same contiguous columnar arena.
//! * [`PatternIndex`] — dictionary-encoded deduplication of rows into
//!   distinct patterns with multiplicities and per-attribute inverted
//!   postings; the substrate for the blocked (sub-quadratic) record-linkage
//!   scans in `cdp-metrics`.
//! * [`Hierarchy`] — generalization hierarchies used by global recoding and
//!   top/bottom coding.
//! * [`generators`] — seeded synthetic generators for the four UCI-shaped
//!   datasets of the paper's evaluation (US Housing '93, German Credit,
//!   Solar Flare, Adult). The real UCI files are not redistributed; the
//!   generators match record counts, attribute counts and the paper's
//!   category cardinalities exactly (see DESIGN.md §5).
//! * [`io`] — CSV reading/writing with dictionary building.
//!
//! ## Quick example
//!
//! ```
//! use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
//!
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(42));
//! assert_eq!(ds.table.n_rows(), 1000);
//! assert_eq!(ds.table.n_attrs(), 8);
//! // The paper protects EDUCATION (16), MARITAL-STATUS (7), OCCUPATION (14).
//! let cats: Vec<usize> = ds
//!     .protected
//!     .iter()
//!     .map(|&a| ds.table.schema().attr(a).n_categories())
//!     .collect();
//! assert_eq!(cats, vec![16, 7, 14]);
//! ```

mod attribute;
mod error;
mod hierarchy;
mod pattern;
mod schema;
mod subtable;
mod table;

pub mod generators;
pub mod io;
pub mod sample;
pub mod stats;

pub use attribute::{AttrKind, Attribute};
pub use error::{DatasetError, Result};
pub use hierarchy::{Hierarchy, HierarchyLevel};
pub use pattern::{PatternId, PatternIndex};
pub use schema::Schema;
pub use subtable::SubTable;
pub use table::Table;

/// Interned category code. Category dictionaries in this domain are tiny
/// (the paper's largest attribute has 25 categories), so `u16` is more than
/// enough and halves the memory traffic of the evolutionary hot loop
/// compared to `u32`.
pub type Code = u16;
