//! Pattern index: dictionary-encoded deduplication of rows into distinct
//! value patterns.
//!
//! Categorical files have far fewer *distinct* protected-attribute patterns
//! than records — at most `Π_k c_k` (1568 for the paper's Adult selection of
//! 16 × 7 × 14 categories) regardless of row count. A [`PatternIndex`] maps
//! each row to the id of its distinct pattern and keeps, per pattern, the
//! codes, the multiplicity (how many rows currently carry it) and
//! per-attribute inverted postings. Any per-record computation whose result
//! depends only on the record's own values then costs `O(p)` pattern
//! evaluations plus an `O(n)` fan-out instead of `O(n)` full evaluations —
//! this is what turns the all-pairs `O(n²·a)` linkage scans of the metrics
//! crate into `O(n·a + p_m·p_o·a)` blocked scans.
//!
//! # Invariants
//!
//! * **Stable ids.** A pattern id, once assigned to a code tuple, is never
//!   reused for a different tuple — a pattern whose multiplicity drops to 0
//!   keeps its id (a tombstone, skipped by [`PatternIndex::iter_live`]) and
//!   revives with the same id when a row moves back onto it. Caches keyed by
//!   pattern id therefore stay valid across arbitrary [`PatternIndex::move_row`]
//!   sequences.
//! * **First-occurrence order.** Ids are assigned in order of first
//!   appearance, and [`PatternIndex::iter_live`] yields live patterns in id
//!   order. Consumers that must replay a row-order scan deterministically
//!   (e.g. bit-exact tie-breaking in record linkage) rely on this.
//! * **Exact multiplicities.** `Σ multiplicity(live patterns) == n_rows` at
//!   all times; [`PatternIndex::move_row`] maintains this incrementally in
//!   `O(a)` hash work per call.

use std::collections::HashMap;

use crate::{Code, DatasetError, Result, SubTable};

/// Id of a distinct pattern inside a [`PatternIndex`].
pub type PatternId = u32;

/// Distinct-row index over a [`SubTable`]: pattern dictionary, row → pattern
/// map, multiplicities and per-attribute inverted postings.
///
/// See the module docs for the id-stability and ordering invariants.
#[derive(Debug, Clone)]
pub struct PatternIndex {
    n_attrs: usize,
    /// Pattern codes, `n_attrs` per pattern: pattern `p` is
    /// `codes[p*n_attrs .. (p+1)*n_attrs]`.
    codes: Vec<Code>,
    /// Rows currently carrying each pattern (0 = tombstone).
    mult: Vec<u32>,
    /// Pattern id of each row.
    row_pid: Vec<PatternId>,
    /// Code tuple → pattern id.
    lookup: HashMap<Vec<Code>, PatternId>,
    /// `postings[k][v]` = ids of every pattern (live or tombstoned) whose
    /// attribute `k` carries code `v`. Append-only; filter by multiplicity.
    postings: Vec<Vec<Vec<PatternId>>>,
    /// Number of patterns with non-zero multiplicity.
    n_live: usize,
}

impl PatternIndex {
    /// Index every row of `sub`. `O(n·a)` expected time.
    pub fn build(sub: &SubTable) -> Self {
        let n = sub.n_rows();
        let a = sub.n_attrs();
        let postings = (0..a)
            .map(|k| vec![Vec::new(); sub.attr(k).n_categories()])
            .collect();
        let mut idx = PatternIndex {
            n_attrs: a,
            codes: Vec::new(),
            mult: Vec::new(),
            row_pid: Vec::with_capacity(n),
            lookup: HashMap::new(),
            postings,
            n_live: 0,
        };
        let mut buf = vec![0 as Code; a];
        for row in 0..n {
            sub.read_row(row, &mut buf);
            let pid = idx.intern(&buf);
            idx.mult[pid as usize] += 1;
            if idx.mult[pid as usize] == 1 {
                idx.n_live += 1;
            }
            idx.row_pid.push(pid);
        }
        idx
    }

    /// Rebuild an index from its serialized parts: the flat pattern
    /// dictionary (`n_attrs` codes per pattern), the per-pattern
    /// multiplicities and the row → pattern map. `cats[k]` is the
    /// dictionary size of attribute `k`, used to size the postings.
    ///
    /// The derived structures (`lookup`, `postings`, `n_live`) are rebuilt
    /// by visiting the patterns in id order — exactly the order
    /// [`PatternIndex::build`] interned them in — so the result is
    /// bit-identical to the index the parts were taken from, posting order
    /// included.
    ///
    /// # Errors
    /// [`DatasetError::SchemaMismatch`] when the parts are inconsistent:
    /// ragged dictionary, out-of-range codes or pattern ids, duplicate
    /// patterns, or multiplicities that do not sum over the rows.
    pub fn from_parts(
        n_attrs: usize,
        codes: Vec<Code>,
        mult: Vec<u32>,
        row_pid: Vec<PatternId>,
        cats: &[usize],
    ) -> Result<Self> {
        let err = |what: String| DatasetError::SchemaMismatch(format!("pattern index: {what}"));
        if n_attrs == 0 || cats.len() != n_attrs {
            return Err(err(format!(
                "{} category counts for {n_attrs} attributes",
                cats.len()
            )));
        }
        if codes.len() != mult.len() * n_attrs {
            return Err(err(format!(
                "{} codes for {} patterns of {n_attrs} attributes",
                codes.len(),
                mult.len()
            )));
        }
        let n_patterns = mult.len();
        let mut postings: Vec<Vec<Vec<PatternId>>> =
            cats.iter().map(|&c| vec![Vec::new(); c]).collect();
        let mut lookup = HashMap::with_capacity(n_patterns);
        for pid in 0..n_patterns {
            let tuple = &codes[pid * n_attrs..(pid + 1) * n_attrs];
            for (k, &v) in tuple.iter().enumerate() {
                if (v as usize) >= cats[k] {
                    return Err(err(format!(
                        "pattern {pid} carries code {v} on attribute {k} (dictionary size {})",
                        cats[k]
                    )));
                }
                postings[k][v as usize].push(pid as PatternId);
            }
            if lookup.insert(tuple.to_vec(), pid as PatternId).is_some() {
                return Err(err(format!("pattern {pid} duplicates an earlier tuple")));
            }
        }
        let mut counted = vec![0u32; n_patterns];
        for &pid in &row_pid {
            if (pid as usize) >= n_patterns {
                return Err(err(format!("row maps to unknown pattern {pid}")));
            }
            counted[pid as usize] += 1;
        }
        if counted != mult {
            return Err(err("multiplicities do not match the row map".into()));
        }
        let n_live = mult.iter().filter(|&&m| m > 0).count();
        Ok(PatternIndex {
            n_attrs,
            codes,
            mult,
            row_pid,
            lookup,
            postings,
            n_live,
        })
    }

    /// The serialized parts of the index, as
    /// [`PatternIndex::from_parts`] expects them back: the flat pattern
    /// dictionary, the multiplicities and the row → pattern map. The
    /// derived `lookup`/`postings` are not part of the tuple — they rebuild
    /// deterministically.
    pub fn raw_parts(&self) -> (&[Code], &[u32], &[PatternId]) {
        (&self.codes, &self.mult, &self.row_pid)
    }

    /// Approximate heap footprint in bytes: dictionary, multiplicities,
    /// row map, postings and the lookup table's keys.
    pub fn approx_bytes(&self) -> usize {
        let codes = self.codes.len() * std::mem::size_of::<Code>();
        let mult = self.mult.len() * std::mem::size_of::<u32>();
        let rows = self.row_pid.len() * std::mem::size_of::<PatternId>();
        let postings: usize = self
            .postings
            .iter()
            .flatten()
            .map(|p| p.len() * std::mem::size_of::<PatternId>())
            .sum();
        // lookup: one boxed code tuple plus table overhead per pattern
        let lookup = self.lookup.len()
            * (self.n_attrs * std::mem::size_of::<Code>() + std::mem::size_of::<usize>() * 2);
        codes + mult + rows + postings + lookup
    }

    /// Number of attributes per pattern.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Number of indexed rows.
    pub fn n_rows(&self) -> usize {
        self.row_pid.len()
    }

    /// Number of pattern ids ever assigned (live + tombstones). Caches keyed
    /// by pattern id should be sized by this.
    pub fn n_patterns(&self) -> usize {
        self.mult.len()
    }

    /// Number of patterns currently carried by at least one row.
    pub fn n_live(&self) -> usize {
        self.n_live
    }

    /// Pattern id of `row`.
    #[inline]
    pub fn pattern_of(&self, row: usize) -> PatternId {
        self.row_pid[row]
    }

    /// The code tuple of pattern `pid`.
    #[inline]
    pub fn codes_of(&self, pid: PatternId) -> &[Code] {
        let p = pid as usize * self.n_attrs;
        &self.codes[p..p + self.n_attrs]
    }

    /// How many rows currently carry pattern `pid` (0 for a tombstone).
    #[inline]
    pub fn multiplicity(&self, pid: PatternId) -> u32 {
        self.mult[pid as usize]
    }

    /// Live patterns as `(id, codes, multiplicity)`, in id order — which is
    /// first-occurrence order for ids assigned by [`PatternIndex::build`].
    pub fn iter_live(&self) -> impl Iterator<Item = (PatternId, &[Code], u32)> + '_ {
        self.mult
            .iter()
            .enumerate()
            .filter(|(_, &m)| m > 0)
            .map(move |(p, &m)| (p as PatternId, self.codes_of(p as PatternId), m))
    }

    /// Ids of every pattern (live or dead) whose attribute `k` carries code
    /// `v` — the inverted posting list. Filter by [`PatternIndex::multiplicity`].
    pub fn postings(&self, k: usize, v: Code) -> &[PatternId] {
        &self.postings[k][v as usize]
    }

    /// Re-home `row` onto the pattern described by `new_codes` (its current
    /// values in the underlying sub-table). Returns `(old_pid, new_pid)`;
    /// the two are equal when the row's pattern did not actually change.
    /// `O(a)` expected time.
    pub fn move_row(&mut self, row: usize, new_codes: &[Code]) -> (PatternId, PatternId) {
        debug_assert_eq!(new_codes.len(), self.n_attrs);
        let old = self.row_pid[row];
        if self.codes_of(old) == new_codes {
            return (old, old);
        }
        let new = self.intern(new_codes);
        self.mult[old as usize] -= 1;
        if self.mult[old as usize] == 0 {
            self.n_live -= 1;
        }
        self.mult[new as usize] += 1;
        if self.mult[new as usize] == 1 {
            self.n_live += 1;
        }
        self.row_pid[row] = new;
        (old, new)
    }

    /// Look up (or create, with multiplicity 0) the id of a code tuple.
    fn intern(&mut self, codes: &[Code]) -> PatternId {
        if let Some(&pid) = self.lookup.get(codes) {
            return pid;
        }
        let pid = self.mult.len() as PatternId;
        self.codes.extend_from_slice(codes);
        self.mult.push(0);
        self.lookup.insert(codes.to_vec(), pid);
        for (k, &v) in codes.iter().enumerate() {
            self.postings[k][v as usize].push(pid);
        }
        pid
    }

    /// Clone-from with allocation reuse, mirroring `Clone::clone_from` but
    /// spelled out so scratch evaluators don't re-allocate per generation.
    pub fn clone_from_reuse(&mut self, source: &Self) {
        self.n_attrs = source.n_attrs;
        self.codes.clone_from(&source.codes);
        self.mult.clone_from(&source.mult);
        self.row_pid.clone_from(&source.row_pid);
        self.lookup.clone_from(&source.lookup);
        self.postings.clone_from(&source.postings);
        self.n_live = source.n_live;
    }

    /// Check the internal invariants (test helper): multiplicities match the
    /// row map, every row's codes match its pattern, postings cover every
    /// pattern exactly once per attribute.
    pub fn check_consistent(&self, sub: &SubTable) {
        assert_eq!(self.n_rows(), sub.n_rows());
        let mut counts = vec![0u32; self.n_patterns()];
        let mut buf = vec![0 as Code; self.n_attrs];
        for row in 0..sub.n_rows() {
            let pid = self.row_pid[row];
            sub.read_row(row, &mut buf);
            assert_eq!(self.codes_of(pid), &buf[..], "row {row} codes drifted");
            counts[pid as usize] += 1;
        }
        assert_eq!(counts, self.mult, "multiplicities drifted");
        assert_eq!(
            self.n_live,
            self.mult.iter().filter(|&&m| m > 0).count(),
            "live count drifted"
        );
        for (k, per_code) in self.postings.iter().enumerate() {
            let mut seen = vec![0u32; self.n_patterns()];
            for (v, pids) in per_code.iter().enumerate() {
                for &pid in pids {
                    assert_eq!(self.codes_of(pid)[k], v as Code, "posting misfiled");
                    seen[pid as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "postings not a partition");
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::{Attribute, Schema};

    fn sub(rows: &[[Code; 2]]) -> SubTable {
        let schema = Arc::new(
            Schema::new(vec![Attribute::ordinal("A", 5), Attribute::nominal("B", 4)]).unwrap(),
        );
        let cols = vec![
            rows.iter().map(|r| r[0]).collect(),
            rows.iter().map(|r| r[1]).collect(),
        ];
        SubTable::new(schema, vec![0, 1], cols).unwrap()
    }

    #[test]
    fn dedups_rows_into_first_occurrence_order() {
        let s = sub(&[[0, 1], [2, 3], [0, 1], [4, 0], [2, 3], [0, 1]]);
        let idx = PatternIndex::build(&s);
        assert_eq!(idx.n_rows(), 6);
        assert_eq!(idx.n_patterns(), 3);
        assert_eq!(idx.n_live(), 3);
        let live: Vec<_> = idx.iter_live().collect();
        assert_eq!(live[0], (0, &[0, 1][..], 3));
        assert_eq!(live[1], (1, &[2, 3][..], 2));
        assert_eq!(live[2], (2, &[4, 0][..], 1));
        assert_eq!(idx.pattern_of(4), 1);
        idx.check_consistent(&s);
    }

    #[test]
    fn postings_invert_the_dictionary() {
        let s = sub(&[[0, 1], [2, 3], [0, 3]]);
        let idx = PatternIndex::build(&s);
        assert_eq!(idx.postings(0, 0), &[0, 2]);
        assert_eq!(idx.postings(0, 2), &[1]);
        assert_eq!(idx.postings(1, 3), &[1, 2]);
        assert!(idx.postings(1, 0).is_empty());
    }

    #[test]
    fn move_row_keeps_ids_stable_and_revives_tombstones() {
        let mut s = sub(&[[0, 1], [2, 3], [0, 1]]);
        let mut idx = PatternIndex::build(&s);
        // move row 1 onto pattern [0,1]: [2,3] becomes a tombstone
        s.set(1, 0, 0);
        s.set(1, 1, 1);
        let (old, new) = idx.move_row(1, &[0, 1]);
        assert_eq!((old, new), (1, 0));
        assert_eq!(idx.multiplicity(1), 0);
        assert_eq!(idx.multiplicity(0), 3);
        assert_eq!(idx.n_live(), 1);
        assert_eq!(idx.n_patterns(), 2);
        idx.check_consistent(&s);
        // move it back: same id revives, no new pattern allocated
        s.set(1, 0, 2);
        s.set(1, 1, 3);
        let (old, new) = idx.move_row(1, &[2, 3]);
        assert_eq!((old, new), (0, 1));
        assert_eq!(idx.n_patterns(), 2);
        assert_eq!(idx.n_live(), 2);
        idx.check_consistent(&s);
    }

    #[test]
    fn move_to_same_pattern_is_a_noop() {
        let s = sub(&[[0, 1], [2, 3]]);
        let mut idx = PatternIndex::build(&s);
        let (old, new) = idx.move_row(0, &[0, 1]);
        assert_eq!(old, new);
        idx.check_consistent(&s);
    }

    #[test]
    fn incremental_moves_match_a_fresh_build() {
        // random walk: after arbitrary moves the partition equals a rebuild
        let mut s = sub(&[[0, 1], [1, 2], [2, 3], [3, 0], [4, 1], [0, 1]]);
        let mut idx = PatternIndex::build(&s);
        let moves: &[(usize, [Code; 2])] = &[
            (0, [1, 2]),
            (3, [0, 1]),
            (5, [4, 1]),
            (2, [2, 3]),
            (1, [0, 1]),
            (4, [3, 0]),
        ];
        for &(row, codes) in moves {
            s.set(row, 0, codes[0]);
            s.set(row, 1, codes[1]);
            idx.move_row(row, &codes);
            idx.check_consistent(&s);
        }
        let fresh = PatternIndex::build(&s);
        for row in 0..s.n_rows() {
            assert_eq!(
                idx.codes_of(idx.pattern_of(row)),
                fresh.codes_of(fresh.pattern_of(row))
            );
        }
        assert_eq!(idx.n_live(), fresh.n_live());
    }

    #[test]
    fn from_parts_round_trips_bit_identically() {
        let s = sub(&[[0, 1], [2, 3], [0, 1], [4, 0], [2, 3], [0, 1]]);
        let built = PatternIndex::build(&s);
        let (codes, mult, row_pid) = built.raw_parts();
        let rebuilt = PatternIndex::from_parts(
            built.n_attrs(),
            codes.to_vec(),
            mult.to_vec(),
            row_pid.to_vec(),
            &[5, 4],
        )
        .unwrap();
        rebuilt.check_consistent(&s);
        assert_eq!(rebuilt.n_live(), built.n_live());
        assert_eq!(rebuilt.n_patterns(), built.n_patterns());
        // postings rebuild in the same append order, element for element
        for k in 0..2 {
            for v in 0..s.attr(k).n_categories() as Code {
                assert_eq!(rebuilt.postings(k, v), built.postings(k, v));
            }
        }
        // tombstones survive the round trip with their ids: row 3 is the
        // only holder of pattern [4, 0] (pid 2), so moving it leaves a
        // zero-multiplicity entry
        let mut s2 = s.clone();
        let mut moved = built.clone();
        s2.set(3, 0, 0);
        s2.set(3, 1, 1);
        moved.move_row(3, &[0, 1]);
        let (codes, mult, row_pid) = moved.raw_parts();
        let rebuilt = PatternIndex::from_parts(
            moved.n_attrs(),
            codes.to_vec(),
            mult.to_vec(),
            row_pid.to_vec(),
            &[5, 4],
        )
        .unwrap();
        rebuilt.check_consistent(&s2);
        assert_eq!(rebuilt.multiplicity(2), 0, "tombstone survives");
        assert_eq!(rebuilt.n_live(), moved.n_live());
        assert_eq!(rebuilt.n_patterns(), moved.n_patterns());
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let s = sub(&[[0, 1], [2, 3]]);
        let idx = PatternIndex::build(&s);
        let (codes, mult, row_pid) = idx.raw_parts();
        let (codes, mult, row_pid) = (codes.to_vec(), mult.to_vec(), row_pid.to_vec());
        // ragged dictionary
        assert!(PatternIndex::from_parts(
            2,
            codes[1..].to_vec(),
            mult.clone(),
            row_pid.clone(),
            &[5, 4]
        )
        .is_err());
        // out-of-range code
        let mut bad = codes.clone();
        bad[0] = 99;
        assert!(PatternIndex::from_parts(2, bad, mult.clone(), row_pid.clone(), &[5, 4]).is_err());
        // row mapped to unknown pattern
        let mut bad_rows = row_pid.clone();
        bad_rows[0] = 7;
        assert!(
            PatternIndex::from_parts(2, codes.clone(), mult.clone(), bad_rows, &[5, 4]).is_err()
        );
        // multiplicities out of sync with the row map
        let mut bad_mult = mult.clone();
        bad_mult[0] += 1;
        assert!(
            PatternIndex::from_parts(2, codes.clone(), bad_mult, row_pid.clone(), &[5, 4]).is_err()
        );
        // duplicate pattern tuple
        let mut dup_codes = codes.clone();
        dup_codes.extend_from_slice(&codes[0..2]);
        let mut dup_mult = mult.clone();
        dup_mult.push(0);
        assert!(PatternIndex::from_parts(2, dup_codes, dup_mult, row_pid, &[5, 4]).is_err());
    }

    #[test]
    fn approx_bytes_counts_all_components() {
        let s = sub(&[[0, 1], [2, 3], [0, 1]]);
        let idx = PatternIndex::build(&s);
        let floor = idx.n_patterns() * 2 * std::mem::size_of::<Code>()
            + idx.n_patterns() * std::mem::size_of::<u32>()
            + idx.n_rows() * std::mem::size_of::<PatternId>();
        assert!(idx.approx_bytes() > floor, "postings and lookup counted");
    }

    #[test]
    fn clone_from_reuse_matches_clone() {
        let s = sub(&[[0, 1], [2, 3], [0, 1]]);
        let idx = PatternIndex::build(&s);
        let other = sub(&[[4, 0], [4, 0], [1, 1]]);
        let mut scratch = PatternIndex::build(&other);
        scratch.clone_from_reuse(&idx);
        scratch.check_consistent(&s);
        assert_eq!(scratch.n_patterns(), idx.n_patterns());
    }
}
