//! Sampling utilities used by the synthetic dataset generators.
//!
//! The generators need skewed, correlated categorical marginals that mimic
//! survey data. Three primitives cover everything:
//!
//! * [`zipf_weights`] — heavy-tailed marginals (rare categories exist, as in
//!   OCCUPATION or solar-flare CLASS);
//! * [`peaked_weights`] — unimodal ordinal marginals (most homes built in a
//!   middle decade, most credits of middling duration);
//! * [`correlated_code`] — a child ordinal value sampled around the parent's
//!   normalized position, producing the inter-attribute association real
//!   microdata shows (e.g. EDUCATION ↔ OCCUPATION).

use rand::Rng;

use crate::Code;

/// Zipf-like weights `1 / (i + 1)^s` for `n` categories.
///
/// # Panics
/// Panics when `n == 0`.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf_weights needs at least one category");
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Discretized triangular-ish weights peaking at `peak` (a fraction of the
/// range, `0.0..=1.0`) with exponential decay controlled by `spread`
/// (larger = flatter).
///
/// # Panics
/// Panics when `n == 0` or `spread <= 0`.
pub fn peaked_weights(n: usize, peak: f64, spread: f64) -> Vec<f64> {
    assert!(n > 0, "peaked_weights needs at least one category");
    assert!(spread > 0.0, "spread must be positive");
    let peak_pos = peak.clamp(0.0, 1.0) * (n.saturating_sub(1)) as f64;
    (0..n)
        .map(|i| (-((i as f64 - peak_pos).abs()) / (spread * n as f64)).exp())
        .collect()
}

/// Draw an index proportional to `weights`.
///
/// Hand-rolled cumulative scan: the weight vectors here have ≤ 25 entries,
/// so a linear scan beats building a `WeightedIndex` table per draw.
///
/// # Panics
/// Panics when `weights` is empty or sums to zero.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Sample a child category correlated with a parent category.
///
/// The parent's normalized position (`parent_code / (parent_cats - 1)`) is
/// projected onto the child range and the child code is drawn from a peaked
/// distribution centred there; `spread` ∈ (0, 1] controls how tight the
/// association is (small = tight).
pub fn correlated_code<R: Rng + ?Sized>(
    parent_code: Code,
    parent_cats: usize,
    child_cats: usize,
    spread: f64,
    rng: &mut R,
) -> Code {
    if child_cats <= 1 {
        return 0;
    }
    let frac = if parent_cats <= 1 {
        0.5
    } else {
        parent_code as f64 / (parent_cats - 1) as f64
    };
    let weights = peaked_weights(child_cats, frac, spread.max(1e-3));
    weighted_index(&weights, rng) as Code
}

/// Generate a full column of `n` values drawn independently from `weights`.
pub fn column_from_weights<R: Rng + ?Sized>(weights: &[f64], n: usize, rng: &mut R) -> Vec<Code> {
    (0..n)
        .map(|_| weighted_index(weights, rng) as Code)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_decreasing() {
        let w = zipf_weights(10, 1.2);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
    }

    #[test]
    fn peaked_peaks_at_requested_position() {
        let w = peaked_weights(11, 0.5, 0.1);
        let argmax = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 5);
    }

    #[test]
    fn weighted_index_respects_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(weighted_index(&w, &mut rng), 2);
        }
    }

    #[test]
    fn weighted_index_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = [1.0, 1.0, 1.0, 1.0];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[weighted_index(&w, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn correlated_code_tracks_parent() {
        let mut rng = StdRng::seed_from_u64(3);
        // tight association: low parent -> low child on average
        let mut low_sum = 0u64;
        let mut high_sum = 0u64;
        for _ in 0..500 {
            low_sum += correlated_code(0, 10, 20, 0.05, &mut rng) as u64;
            high_sum += correlated_code(9, 10, 20, 0.05, &mut rng) as u64;
        }
        assert!(low_sum < high_sum, "low parents must yield lower children");
    }

    #[test]
    fn correlated_code_single_child() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(correlated_code(3, 5, 1, 0.2, &mut rng), 0);
    }

    #[test]
    fn column_has_requested_length_and_valid_codes() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = zipf_weights(6, 1.0);
        let col = column_from_weights(&w, 256, &mut rng);
        assert_eq!(col.len(), 256);
        assert!(col.iter().all(|&c| (c as usize) < 6));
    }

    #[test]
    fn deterministic_under_seed() {
        let w = zipf_weights(8, 0.9);
        let a = column_from_weights(&w, 64, &mut StdRng::seed_from_u64(7));
        let b = column_from_weights(&w, 64, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
