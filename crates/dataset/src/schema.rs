//! Table schemas: an ordered list of attributes.

use crate::{Attribute, DatasetError, Result};

/// The schema of a categorical microdata file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes.
    ///
    /// # Errors
    /// Returns [`DatasetError::Empty`] for an empty attribute list and
    /// [`DatasetError::SchemaMismatch`] when two attributes share a name.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        if attrs.is_empty() {
            return Err(DatasetError::Empty("schema".into()));
        }
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                if attrs[i].name() == attrs[j].name() {
                    return Err(DatasetError::SchemaMismatch(format!(
                        "duplicate attribute name `{}`",
                        attrs[i].name()
                    )));
                }
            }
        }
        Ok(Schema { attrs })
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute at `index`.
    ///
    /// # Panics
    /// Panics on out-of-range indices; use [`Schema::try_attr`] for untrusted
    /// input.
    pub fn attr(&self, index: usize) -> &Attribute {
        &self.attrs[index]
    }

    /// Fallible accessor mirror of [`Schema::attr`].
    pub fn try_attr(&self, index: usize) -> Result<&Attribute> {
        self.attrs.get(index).ok_or(DatasetError::AttrOutOfRange {
            index,
            n_attrs: self.attrs.len(),
        })
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Resolve an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name() == name)
    }

    /// Sum over attributes of `log2(n_categories)`: the per-record entropy
    /// capacity of the schema. Used to normalize the entropy-based
    /// information loss measure.
    pub fn entropy_capacity(&self) -> f64 {
        self.attrs
            .iter()
            .map(|a| (a.n_categories() as f64).log2())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrKind;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::ordinal("A", 4),
            Attribute::nominal("B", 3),
            Attribute::ordinal("C", 2),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = schema3();
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("Z"), None);
        assert_eq!(s.attr(0).kind(), AttrKind::Ordinal);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![Attribute::ordinal("A", 2), Attribute::nominal("A", 3)]);
        assert!(err.is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn try_attr_bounds() {
        let s = schema3();
        assert!(s.try_attr(2).is_ok());
        assert!(matches!(
            s.try_attr(3),
            Err(DatasetError::AttrOutOfRange {
                index: 3,
                n_attrs: 3
            })
        ));
    }

    #[test]
    fn entropy_capacity_sums_logs() {
        let s = schema3();
        let expected = 4f64.log2() + 3f64.log2() + 2f64.log2();
        assert!((s.entropy_capacity() - expected).abs() < 1e-12);
    }
}
