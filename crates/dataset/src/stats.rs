//! Descriptive statistics for categorical columns.
//!
//! Used by the generators' own tests (to verify the synthetic data carries
//! the skew and associations the substitution argument relies on), by the
//! examples, and by anyone assessing a protected file beyond the paper's
//! seven measures.

use crate::{Code, SubTable, Table};

/// Marginal counts of one column.
pub fn marginal_counts(column: &[Code], n_categories: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_categories];
    for &c in column {
        counts[c as usize] += 1;
    }
    counts
}

/// Shannon entropy (bits) of a column's empirical distribution.
pub fn entropy(column: &[Code], n_categories: usize) -> f64 {
    let n = column.len();
    if n == 0 {
        return 0.0;
    }
    marginal_counts(column, n_categories)
        .into_iter()
        .filter(|&c| c > 0)
        .map(|c| {
            let p = c as f64 / n as f64;
            -p * p.log2()
        })
        .sum()
}

/// Pearson chi-square statistic of the joint distribution of two columns.
pub fn chi_square(a: &[Code], ca: usize, b: &[Code], cb: usize) -> f64 {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    if n == 0 {
        return 0.0;
    }
    let mut joint = vec![0usize; ca * cb];
    for (&x, &y) in a.iter().zip(b.iter()) {
        joint[x as usize * cb + y as usize] += 1;
    }
    let ma = marginal_counts(a, ca);
    let mb = marginal_counts(b, cb);
    let mut chi2 = 0.0;
    for i in 0..ca {
        for j in 0..cb {
            let expected = ma[i] as f64 * mb[j] as f64 / n as f64;
            if expected > 0.0 {
                let observed = joint[i * cb + j] as f64;
                chi2 += (observed - expected).powi(2) / expected;
            }
        }
    }
    chi2
}

/// Cramér's V association between two columns, in `[0, 1]`
/// (0 = independent, 1 = perfectly associated).
pub fn cramers_v(a: &[Code], ca: usize, b: &[Code], cb: usize) -> f64 {
    let n = a.len();
    if n == 0 || ca < 2 || cb < 2 {
        return 0.0;
    }
    let chi2 = chi_square(a, ca, b, cb);
    let k = (ca.min(cb) - 1) as f64;
    (chi2 / (n as f64 * k)).sqrt().min(1.0)
}

/// Cramér's V between two attributes of a table.
pub fn table_association(table: &Table, i: usize, j: usize) -> f64 {
    cramers_v(
        table.column(i),
        table.schema().attr(i).n_categories(),
        table.column(j),
        table.schema().attr(j).n_categories(),
    )
}

/// Share of records that are *unique* on the given sub-table's attribute
/// combination — the classic uniqueness-based disclosure indicator: a
/// unique record is trivially re-identifiable by anyone holding the
/// original attribute values.
pub fn uniqueness(sub: &SubTable) -> f64 {
    let n = sub.n_rows();
    if n == 0 {
        return 0.0;
    }
    let mut keys: Vec<Vec<Code>> = (0..n)
        .map(|r| (0..sub.n_attrs()).map(|k| sub.get(r, k)).collect())
        .collect();
    keys.sort_unstable();
    let mut unique = 0usize;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && keys[j] == keys[i] {
            j += 1;
        }
        if j - i == 1 {
            unique += 1;
        }
        i = j;
    }
    unique as f64 / n as f64
}

/// Smallest equivalence-class size over the sub-table's attribute
/// combination — the `k` in k-anonymity (`1` means unique records exist).
pub fn k_anonymity(sub: &SubTable) -> usize {
    let n = sub.n_rows();
    if n == 0 {
        return 0;
    }
    let mut keys: Vec<Vec<Code>> = (0..n)
        .map(|r| (0..sub.n_attrs()).map(|k| sub.get(r, k)).collect())
        .collect();
    keys.sort_unstable();
    let mut min_class = usize::MAX;
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && keys[j] == keys[i] {
            j += 1;
        }
        min_class = min_class.min(j - i);
        i = j;
    }
    min_class
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{DatasetKind, GeneratorConfig};
    use crate::{Attribute, Schema};
    use std::sync::Arc;

    #[test]
    fn entropy_of_constant_and_uniform() {
        let constant = vec![0u16; 64];
        assert_eq!(entropy(&constant, 4), 0.0);
        let uniform: Vec<Code> = (0..64).map(|i| (i % 4) as Code).collect();
        assert!((entropy(&uniform, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cramers_v_detects_perfect_association() {
        let a: Vec<Code> = (0..100).map(|i| (i % 3) as Code).collect();
        let b = a.clone();
        assert!((cramers_v(&a, 3, &b, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cramers_v_near_zero_for_independent_columns() {
        let a: Vec<Code> = (0..1000).map(|i| (i % 2) as Code).collect();
        let b: Vec<Code> = (0..1000).map(|i| ((i / 2) % 2) as Code).collect();
        assert!(cramers_v(&a, 2, &b, 2) < 0.05);
    }

    #[test]
    fn generated_adult_links_education_to_occupation() {
        let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1));
        let v_linked = table_association(&ds.table, 1, 3); // EDUCATION vs OCCUPATION
        let v_free = table_association(&ds.table, 5, 6); // RACE vs SEX (independent)
        assert!(
            v_linked > v_free + 0.1,
            "linked {v_linked:.3} vs free {v_free:.3}"
        );
    }

    fn tiny_sub(columns: Vec<Vec<Code>>) -> SubTable {
        let attrs = (0..columns.len())
            .map(|i| Attribute::ordinal(format!("A{i}"), 4))
            .collect();
        let schema = Arc::new(Schema::new(attrs).unwrap());
        SubTable::new(schema, (0..columns.len()).collect(), columns).unwrap()
    }

    #[test]
    fn uniqueness_counts_singletons() {
        // rows: (0,0), (0,0), (1,1), (2,2) -> two unique of four
        let sub = tiny_sub(vec![vec![0, 0, 1, 2], vec![0, 0, 1, 2]]);
        assert!((uniqueness(&sub) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_anonymity_is_min_class_size() {
        let sub = tiny_sub(vec![vec![0, 0, 0, 1, 1], vec![0, 0, 0, 1, 1]]);
        assert_eq!(k_anonymity(&sub), 2);
        let all_same = tiny_sub(vec![vec![1; 6], vec![2; 6]]);
        assert_eq!(k_anonymity(&all_same), 6);
        let has_unique = tiny_sub(vec![vec![0, 1], vec![0, 1]]);
        assert_eq!(k_anonymity(&has_unique), 1);
    }

    #[test]
    fn chi_square_zero_when_one_category() {
        let a = vec![0u16; 10];
        let b: Vec<Code> = (0..10).map(|i| (i % 2) as Code).collect();
        assert_eq!(chi_square(&a, 1, &b, 2), 0.0);
        assert_eq!(cramers_v(&a, 1, &b, 2), 0.0);
    }
}
