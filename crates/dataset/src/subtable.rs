//! Sub-tables: the protected columns of a file, i.e. the genotype that the
//! evolutionary algorithm mutates and recombines.
//!
//! # Columnar layout
//!
//! The cells live in **one contiguous code arena** laid out
//! structure-of-arrays: attribute `k` occupies the slice
//! `arena[k·n .. (k+1)·n]` (`n` = number of rows). A whole column is a
//! single cache-friendly slice, which is what every measure that scans one
//! attribute at a time (contingency tables, midranks, pattern dedup) wants;
//! a cell access is one multiply-add away. Codes stay [`Code`] (`u16`) —
//! category dictionaries in this domain are tiny, and half-width codes halve
//! the memory traffic of the evolutionary hot loop.
//!
//! The external API is unchanged apart from [`SubTable::column_mut`], which
//! now hands out a `&mut [Code]` slice of the arena instead of a
//! `&mut Vec<Code>` (columns can no longer be resized independently).

use std::sync::Arc;

use crate::{Code, DatasetError, Result, Schema};

/// The columns of the attributes selected for protection, detached from the
/// full table.
///
/// The paper represents an individual as an entire protected file; since the
/// genetic operators and all IL/DR measures only ever touch the protected
/// attributes (3 per dataset in the evaluation), storing just those columns
/// makes individuals ~4× smaller without changing semantics. The flattening
/// used by the 2-point crossover is **row-major** over the protected
/// columns — position `p` maps to `(row, attr) = (p / a, p % a)` — matching
/// the paper's view of a file as a linear sequence of values read record by
/// record. (The flattening is a *view*; the storage itself is the
/// column-major arena described in the module docs.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubTable {
    schema: Arc<Schema>,
    /// Indices of the protected attributes inside `schema`.
    attr_indices: Vec<usize>,
    /// Contiguous column-major cell arena: attribute `k`, row `r` lives at
    /// `arena[k * n_rows + r]`.
    arena: Vec<Code>,
    n_attrs: usize,
    n_rows: usize,
}

impl SubTable {
    /// Assemble a sub-table; validates lengths and code ranges.
    ///
    /// # Errors
    /// Same contract as [`crate::Table::from_columns`].
    pub fn new(
        schema: Arc<Schema>,
        attr_indices: Vec<usize>,
        columns: Vec<Vec<Code>>,
    ) -> Result<Self> {
        if attr_indices.len() != columns.len() {
            return Err(DatasetError::SchemaMismatch(format!(
                "{} attribute indices vs {} columns",
                attr_indices.len(),
                columns.len()
            )));
        }
        if attr_indices.is_empty() {
            return Err(DatasetError::Empty("sub-table attribute list".into()));
        }
        let n_rows = columns[0].len();
        let n_attrs = columns.len();
        let mut arena = Vec::with_capacity(n_rows * n_attrs);
        for (k, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(DatasetError::RaggedColumns {
                    expected: n_rows,
                    got: col.len(),
                    column: k,
                });
            }
            let attr = schema.try_attr(attr_indices[k])?;
            for &code in col {
                attr.check(code)?;
            }
            arena.extend_from_slice(col);
        }
        Ok(SubTable {
            schema,
            attr_indices,
            arena,
            n_attrs,
            n_rows,
        })
    }

    /// Schema of the full file this sub-table belongs to.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Indices of the protected attributes in the full schema.
    pub fn attr_indices(&self) -> &[usize] {
        &self.attr_indices
    }

    /// The full-schema attribute behind local column `k`.
    pub fn attr(&self, k: usize) -> &crate::Attribute {
        self.schema.attr(self.attr_indices[k])
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of protected attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Total number of cells; the length of the flattened genome.
    pub fn flat_len(&self) -> usize {
        self.n_rows * self.n_attrs
    }

    /// Column `k` (local index) as a contiguous slice of the arena.
    pub fn column(&self, k: usize) -> &[Code] {
        &self.arena[k * self.n_rows..(k + 1) * self.n_rows]
    }

    /// Mutable column `k`. Callers are responsible for writing valid codes;
    /// [`SubTable::validate`] re-checks the invariant.
    pub fn column_mut(&mut self, k: usize) -> &mut [Code] {
        let n = self.n_rows;
        &mut self.arena[k * n..(k + 1) * n]
    }

    /// The whole cell arena (column-major, attribute-contiguous).
    pub fn arena(&self) -> &[Code] {
        &self.arena
    }

    /// Cell accessor.
    #[inline]
    pub fn get(&self, row: usize, k: usize) -> Code {
        self.arena[k * self.n_rows + row]
    }

    /// Cell mutator (unchecked code; see [`SubTable::validate`]).
    #[inline]
    pub fn set(&mut self, row: usize, k: usize, code: Code) {
        self.arena[k * self.n_rows + row] = code;
    }

    /// Copy record `row` into `out` (one code per attribute, attribute
    /// order). `out.len()` must equal [`SubTable::n_attrs`].
    #[inline]
    pub fn read_row(&self, row: usize, out: &mut [Code]) {
        debug_assert_eq!(out.len(), self.n_attrs);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.arena[k * self.n_rows + row];
        }
    }

    /// `(row, attr)` coordinates of flattened position `p`.
    #[inline]
    pub fn coords_of_flat(&self, p: usize) -> (usize, usize) {
        let a = self.n_attrs;
        (p / a, p % a)
    }

    /// Read the cell at flattened position `p`.
    #[inline]
    pub fn get_flat(&self, p: usize) -> Code {
        let (row, k) = self.coords_of_flat(p);
        self.get(row, k)
    }

    /// Write the cell at flattened position `p`.
    #[inline]
    pub fn set_flat(&mut self, p: usize, code: Code) {
        let (row, k) = self.coords_of_flat(p);
        self.set(row, k, code);
    }

    /// Swap the flattened range `[s, r]` (inclusive, the paper's 2-point
    /// crossover segment) between `self` and `other`.
    ///
    /// # Panics
    /// Panics when the two sub-tables have different shapes or the range is
    /// out of bounds — programming errors in the caller, not data errors.
    pub fn swap_flat_range(&mut self, other: &mut SubTable, s: usize, r: usize) {
        assert_eq!(self.flat_len(), other.flat_len(), "shape mismatch");
        assert!(s <= r && r < self.flat_len(), "range out of bounds");
        for p in s..=r {
            let (row, k) = self.coords_of_flat(p);
            let idx = k * self.n_rows + row;
            std::mem::swap(&mut self.arena[idx], &mut other.arena[idx]);
        }
    }

    /// Number of cells where `self` and `other` differ (genotypic distance
    /// used by distance-paired deterministic crowding).
    pub fn hamming(&self, other: &SubTable) -> usize {
        debug_assert_eq!(self.flat_len(), other.flat_len());
        self.arena
            .iter()
            .zip(other.arena.iter())
            .filter(|(x, y)| x != y)
            .count()
    }

    /// Re-validate every cell against the dictionaries — used by tests and
    /// after bulk mutation through [`SubTable::column_mut`].
    pub fn validate(&self) -> Result<()> {
        for k in 0..self.n_attrs {
            let attr = self.schema.attr(self.attr_indices[k]);
            for &code in self.column(k) {
                attr.check(code)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Attribute::ordinal("A", 4),
                Attribute::nominal("B", 3),
                Attribute::ordinal("C", 5),
            ])
            .unwrap(),
        )
    }

    fn sub() -> SubTable {
        SubTable::new(
            schema(),
            vec![0, 2],
            vec![vec![0, 1, 2, 3], vec![4, 3, 2, 1]],
        )
        .unwrap()
    }

    #[test]
    fn flat_round_trip() {
        let s = sub();
        assert_eq!(s.flat_len(), 8);
        // row-major: pos 3 -> (row 1, attr 1) -> column C, row 1 = 3
        assert_eq!(s.coords_of_flat(3), (1, 1));
        assert_eq!(s.get_flat(3), 3);
        let mut s2 = s.clone();
        s2.set_flat(3, 0);
        assert_eq!(s2.get(1, 1), 0);
    }

    #[test]
    fn arena_is_column_major_and_contiguous() {
        let s = sub();
        assert_eq!(s.arena(), &[0, 1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(s.column(0), &[0, 1, 2, 3]);
        assert_eq!(s.column(1), &[4, 3, 2, 1]);
        let mut row = [0; 2];
        s.read_row(2, &mut row);
        assert_eq!(row, [2, 2]);
    }

    #[test]
    fn swap_range_swaps_exactly_the_segment() {
        let mut a = sub();
        let mut b = sub();
        for p in 0..b.flat_len() {
            let (row, k) = b.coords_of_flat(p);
            // make b distinguishable but valid (A has 4 cats, C has 5)
            let cap = if k == 0 { 4 } else { 5 };
            b.set(row, k, ((p as u16) + 1) % cap);
        }
        let before_a = a.clone();
        let before_b = b.clone();
        a.swap_flat_range(&mut b, 2, 5);
        for p in 0..a.flat_len() {
            if (2..=5).contains(&p) {
                assert_eq!(a.get_flat(p), before_b.get_flat(p));
                assert_eq!(b.get_flat(p), before_a.get_flat(p));
            } else {
                assert_eq!(a.get_flat(p), before_a.get_flat(p));
                assert_eq!(b.get_flat(p), before_b.get_flat(p));
            }
        }
    }

    #[test]
    fn single_point_swap() {
        let mut a = sub();
        let mut b = sub();
        b.set_flat(4, 0);
        a.swap_flat_range(&mut b, 4, 4);
        assert_eq!(a.get_flat(4), 0);
    }

    #[test]
    fn hamming_counts_differences() {
        let a = sub();
        let mut b = sub();
        assert_eq!(a.hamming(&b), 0);
        b.set_flat(0, 3);
        b.set_flat(7, 0);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn invalid_code_rejected_at_build() {
        let res = SubTable::new(schema(), vec![0], vec![vec![9]]);
        assert!(res.is_err());
    }

    #[test]
    fn validate_catches_bulk_corruption() {
        let mut s = sub();
        s.column_mut(0)[0] = 99;
        assert!(s.validate().is_err());
    }

    #[test]
    fn attr_maps_to_global_schema() {
        let s = sub();
        assert_eq!(s.attr(1).name(), "C");
        assert_eq!(s.attr_indices(), &[0, 2]);
    }
}
