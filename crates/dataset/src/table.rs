//! Column-major categorical tables (the paper's data files).
//!
//! Like [`SubTable`], a [`Table`] stores its cells in one contiguous
//! column-major code arena (attribute `j` is the slice
//! `arena[j·n .. (j+1)·n]`) so per-attribute scans — contingency tables,
//! rank computations, swapping — run over cache-friendly contiguous memory,
//! which is where the fitness function (by far the dominant cost reported by
//! the paper) spends its time.

use std::sync::Arc;

use crate::{Code, DatasetError, Result, Schema, SubTable};

/// A categorical microdata file: an immutable, column-major matrix of
/// interned category codes plus its schema.
///
/// Cells live in a single contiguous arena (see the module docs); the
/// accessors below present the conventional per-column view.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    /// Column-major cell arena: attribute `j`, row `r` at `arena[j*n_rows + r]`.
    arena: Vec<Code>,
    n_attrs: usize,
    n_rows: usize,
}

impl Table {
    /// Build a table from per-attribute columns.
    ///
    /// # Errors
    /// * [`DatasetError::SchemaMismatch`] when the column count differs from
    ///   the schema;
    /// * [`DatasetError::RaggedColumns`] when columns disagree in length;
    /// * [`DatasetError::InvalidCode`] when a cell is outside its dictionary.
    pub fn from_columns(schema: Arc<Schema>, columns: Vec<Vec<Code>>) -> Result<Self> {
        if columns.len() != schema.n_attrs() {
            return Err(DatasetError::SchemaMismatch(format!(
                "{} columns for a schema of {} attributes",
                columns.len(),
                schema.n_attrs()
            )));
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        let n_attrs = columns.len();
        let mut arena = Vec::with_capacity(n_rows * n_attrs);
        for (j, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(DatasetError::RaggedColumns {
                    expected: n_rows,
                    got: col.len(),
                    column: j,
                });
            }
            let attr = schema.attr(j);
            for &code in col {
                attr.check(code)?;
            }
            arena.extend_from_slice(col);
        }
        Ok(Table {
            schema,
            arena,
            n_attrs,
            n_rows,
        })
    }

    /// Build a table from row tuples.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<Code>]) -> Result<Self> {
        let a = schema.n_attrs();
        let mut columns: Vec<Vec<Code>> = (0..a).map(|_| Vec::with_capacity(rows.len())).collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != a {
                return Err(DatasetError::Parse {
                    line: i + 1,
                    msg: format!("row has {} fields, schema has {a}", row.len()),
                });
            }
            for (j, &code) in row.iter().enumerate() {
                columns[j].push(code);
            }
        }
        Table::from_columns(schema, columns)
    }

    /// The schema, shared.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// Column of attribute `j` as a contiguous slice of the arena.
    pub fn column(&self, j: usize) -> &[Code] {
        &self.arena[j * self.n_rows..(j + 1) * self.n_rows]
    }

    /// Cell accessor.
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> Code {
        self.arena[attr * self.n_rows + row]
    }

    /// Materialize row `i` into `buf` (cleared first). Reusing one buffer
    /// across calls avoids per-row allocation.
    pub fn row_into(&self, i: usize, buf: &mut Vec<Code>) {
        buf.clear();
        buf.extend((0..self.n_attrs).map(|j| self.value(i, j)));
    }

    /// Extract an owned [`SubTable`] of the given attributes — the genotype
    /// of the evolutionary algorithm is the sub-table of protected columns.
    ///
    /// # Errors
    /// [`DatasetError::AttrOutOfRange`] for invalid indices.
    pub fn subtable(&self, attrs: &[usize]) -> Result<SubTable> {
        for &a in attrs {
            self.schema.try_attr(a)?;
        }
        let columns = attrs.iter().map(|&a| self.column(a).to_vec()).collect();
        SubTable::new(Arc::clone(&self.schema), attrs.to_vec(), columns)
    }

    /// Produce a copy of this table with the protected columns replaced by a
    /// masked sub-table (e.g. to export a protected file).
    ///
    /// # Errors
    /// [`DatasetError::SchemaMismatch`] when `sub` was not derived from this
    /// table's schema or row count.
    pub fn with_subtable(&self, sub: &SubTable) -> Result<Table> {
        if !Arc::ptr_eq(sub.schema(), &self.schema) && **sub.schema() != *self.schema {
            return Err(DatasetError::SchemaMismatch(
                "sub-table built against a different schema".into(),
            ));
        }
        if sub.n_rows() != self.n_rows {
            return Err(DatasetError::SchemaMismatch(format!(
                "sub-table has {} rows, table has {}",
                sub.n_rows(),
                self.n_rows
            )));
        }
        let mut columns: Vec<Vec<Code>> =
            (0..self.n_attrs).map(|j| self.column(j).to_vec()).collect();
        for (k, &a) in sub.attr_indices().iter().enumerate() {
            columns[a] = sub.column(k).to_vec();
        }
        Table::from_columns(Arc::clone(&self.schema), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttrKind, Attribute};

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Attribute::ordinal("A", 3),
                Attribute::nominal("B", 2),
                Attribute::ordinal("C", 4),
            ])
            .unwrap(),
        )
    }

    fn table() -> Table {
        Table::from_rows(
            schema(),
            &[vec![0, 1, 3], vec![1, 0, 2], vec![2, 1, 0], vec![1, 1, 1]],
        )
        .unwrap()
    }

    #[test]
    fn rows_and_columns_agree() {
        let t = table();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_attrs(), 3);
        assert_eq!(t.column(2), &[3, 2, 0, 1]);
        assert_eq!(t.value(1, 0), 1);
        let mut buf = Vec::new();
        t.row_into(2, &mut buf);
        assert_eq!(buf, vec![2, 1, 0]);
    }

    #[test]
    fn invalid_code_rejected() {
        let res = Table::from_rows(schema(), &[vec![0, 5, 0]]);
        assert!(matches!(res, Err(DatasetError::InvalidCode { .. })));
    }

    #[test]
    fn ragged_columns_rejected() {
        let res = Table::from_columns(schema(), vec![vec![0, 1], vec![1], vec![0, 0]]);
        assert!(matches!(res, Err(DatasetError::RaggedColumns { .. })));
    }

    #[test]
    fn wrong_arity_rejected() {
        let res = Table::from_rows(schema(), &[vec![0, 1]]);
        assert!(res.is_err());
    }

    #[test]
    fn subtable_round_trip() {
        let t = table();
        let sub = t.subtable(&[0, 2]).unwrap();
        assert_eq!(sub.n_attrs(), 2);
        assert_eq!(sub.column(1), t.column(2));
        let back = t.with_subtable(&sub).unwrap();
        assert_eq!(back.column(0), t.column(0));
        assert_eq!(back.column(1), t.column(1));
    }

    #[test]
    fn with_subtable_applies_masked_values() {
        let t = table();
        let mut sub = t.subtable(&[1]).unwrap();
        sub.set(0, 0, 0);
        let masked = t.with_subtable(&sub).unwrap();
        assert_eq!(masked.value(0, 1), 0);
        // untouched column preserved
        assert_eq!(masked.column(0), t.column(0));
    }

    #[test]
    fn subtable_bad_index() {
        let t = table();
        assert!(t.subtable(&[7]).is_err());
    }

    #[test]
    fn kind_preserved_through_schema() {
        let t = table();
        assert_eq!(t.schema().attr(1).kind(), AttrKind::Nominal);
    }
}
