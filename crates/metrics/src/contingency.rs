//! Dense contingency tables of order 1 and 2 over the protected attributes.
//!
//! The category dictionaries in this domain are tiny (≤ 25 categories), so
//! pairwise tables are a few hundred cells and dense `u32` vectors beat any
//! sparse structure. Tables support O(#attrs) in-place updates after a
//! single-cell mutation, which the incremental evaluator relies on.

use cdp_dataset::{Code, SubTable};

/// Borrowed serialized parts of [`ContingencyTables`]:
/// `(singles, pairs, cats)`.
pub(crate) type RawTableParts<'a> = (&'a [Vec<u32>], &'a [(usize, usize, Vec<u32>)], &'a [usize]);

/// Order-1 and order-2 contingency tables of one sub-table.
#[derive(Debug, PartialEq, Eq)]
pub struct ContingencyTables {
    /// `singles[k][v]` = number of records with value `v` on attribute `k`.
    singles: Vec<Vec<u32>>,
    /// For each pair `(i, j)` with `i < j`: flattened `c_i × c_j` counts.
    pairs: Vec<(usize, usize, Vec<u32>)>,
    /// Category count per attribute (for flattening).
    cats: Vec<usize>,
    n_rows: usize,
}

impl Clone for ContingencyTables {
    fn clone(&self) -> Self {
        ContingencyTables {
            singles: self.singles.clone(),
            pairs: self.pairs.clone(),
            cats: self.cats.clone(),
            n_rows: self.n_rows,
        }
    }

    /// Buffer-reusing copy: when the shapes match (the only case on the
    /// evaluator's hot path, where scratch states all describe one schema),
    /// no heap allocation is performed.
    fn clone_from(&mut self, src: &Self) {
        self.singles.clone_from(&src.singles);
        self.cats.clone_from(&src.cats);
        self.n_rows = src.n_rows;
        if self.pairs.len() == src.pairs.len() {
            for (dst, s) in self.pairs.iter_mut().zip(&src.pairs) {
                dst.0 = s.0;
                dst.1 = s.1;
                dst.2.clone_from(&s.2);
            }
        } else {
            self.pairs.clone_from(&src.pairs);
        }
    }
}

impl ContingencyTables {
    /// Build tables from a sub-table.
    pub fn build(sub: &SubTable) -> Self {
        let a = sub.n_attrs();
        let cats: Vec<usize> = (0..a).map(|k| sub.attr(k).n_categories()).collect();
        let mut singles: Vec<Vec<u32>> = cats.iter().map(|&c| vec![0u32; c]).collect();
        for (k, single) in singles.iter_mut().enumerate() {
            for &v in sub.column(k) {
                single[v as usize] += 1;
            }
        }
        let mut pairs = Vec::new();
        for i in 0..a {
            for j in (i + 1)..a {
                let mut table = vec![0u32; cats[i] * cats[j]];
                let (ci, cj) = (sub.column(i), sub.column(j));
                for r in 0..sub.n_rows() {
                    table[ci[r] as usize * cats[j] + cj[r] as usize] += 1;
                }
                pairs.push((i, j, table));
            }
        }
        ContingencyTables {
            singles,
            pairs,
            cats,
            n_rows: sub.n_rows(),
        }
    }

    /// Reassemble tables from their serialized parts (the snapshot codec's
    /// constructor). The caller is responsible for consistency — snapshot
    /// loads guard the payload with checksums and a content hash instead of
    /// re-validating cell sums here.
    pub(crate) fn from_parts(
        singles: Vec<Vec<u32>>,
        pairs: Vec<(usize, usize, Vec<u32>)>,
        cats: Vec<usize>,
        n_rows: usize,
    ) -> Self {
        ContingencyTables {
            singles,
            pairs,
            cats,
            n_rows,
        }
    }

    /// The serialized parts: `(singles, pairs, cats)`; `n_rows` is
    /// [`ContingencyTables::n_rows`].
    pub(crate) fn raw_parts(&self) -> RawTableParts<'_> {
        (&self.singles, &self.pairs, &self.cats)
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let cell = std::mem::size_of::<u32>();
        let singles: usize = self.singles.iter().map(|s| s.len() * cell).sum();
        let pairs: usize = self.pairs.iter().map(|(_, _, t)| t.len() * cell).sum();
        singles + pairs + self.cats.len() * std::mem::size_of::<usize>()
    }

    /// Number of tables (singles + pairs).
    pub fn n_tables(&self) -> usize {
        self.singles.len() + self.pairs.len()
    }

    /// Number of records the tables were built from.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Update the tables after one cell of `masked` changed: record `row`,
    /// attribute `k`, previous code `old` (the new code is read from
    /// `masked`). O(#attrs).
    pub fn apply_mutation(&mut self, masked: &SubTable, row: usize, k: usize, old: Code) {
        self.apply_row_patch(masked, row, &[(k, old)]);
    }

    /// Update the tables after several cells of *one* record changed at
    /// once: `changed` lists `(attribute, previous code)` pairs, the new
    /// codes are read from `masked`. Handling a whole row in one call keeps
    /// the pair tables exact when two attributes of the same record change
    /// together (per-cell updates would mis-credit the intermediate pair).
    /// O(#attrs²).
    pub fn apply_row_patch(&mut self, masked: &SubTable, row: usize, changed: &[(usize, Code)]) {
        let old_of = |k: usize| {
            changed
                .iter()
                .find(|&&(kk, _)| kk == k)
                .map_or_else(|| masked.get(row, k), |&(_, old)| old)
        };
        for &(k, old) in changed {
            let new = masked.get(row, k);
            if new == old {
                continue;
            }
            self.singles[k][old as usize] -= 1;
            self.singles[k][new as usize] += 1;
        }
        for (i, j, table) in &mut self.pairs {
            let (oi, oj) = (old_of(*i) as usize, old_of(*j) as usize);
            let (ni, nj) = (masked.get(row, *i) as usize, masked.get(row, *j) as usize);
            if (oi, oj) == (ni, nj) {
                continue;
            }
            table[oi * self.cats[*j] + oj] -= 1;
            table[ni * self.cats[*j] + nj] += 1;
        }
    }

    /// Normalized total-variation distance to another set of tables,
    /// averaged over tables and scaled to `[0, 100]`:
    /// `100 · Σ_t Σ_cells |a − b| / (2·n·T)`.
    ///
    /// # Panics
    /// Panics when the two table sets have different shapes (programming
    /// error: both sides must come from the same schema).
    pub fn distance(&self, other: &ContingencyTables) -> f64 {
        assert_eq!(self.cats, other.cats, "tables from different schemas");
        assert_eq!(self.n_rows, other.n_rows, "tables from different sizes");
        let mut sum = 0u64;
        for (a, b) in self.singles.iter().zip(other.singles.iter()) {
            for (&x, &y) in a.iter().zip(b.iter()) {
                sum += u64::from(x.abs_diff(y));
            }
        }
        for ((_, _, a), (_, _, b)) in self.pairs.iter().zip(other.pairs.iter()) {
            for (&x, &y) in a.iter().zip(b.iter()) {
                sum += u64::from(x.abs_diff(y));
            }
        }
        let denom = 2.0 * self.n_rows as f64 * self.n_tables() as f64;
        if denom == 0.0 {
            0.0
        } else {
            100.0 * sum as f64 / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

    fn sub() -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(1).with_records(80))
            .protected_subtable()
    }

    #[test]
    fn identical_tables_have_zero_distance() {
        let s = sub();
        let a = ContingencyTables::build(&s);
        let b = ContingencyTables::build(&s);
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn table_count_for_three_attrs() {
        let t = ContingencyTables::build(&sub());
        assert_eq!(t.n_tables(), 3 + 3); // 3 singles + 3 pairs
    }

    #[test]
    fn distance_grows_with_changes() {
        let s = sub();
        let base = ContingencyTables::build(&s);
        let mut one = s.clone();
        one.set(
            0,
            0,
            (one.get(0, 0) + 1) % one.attr(0).n_categories() as Code,
        );
        let mut many = one.clone();
        for r in 1..20 {
            many.set(
                r,
                1,
                (many.get(r, 1) + 1) % many.attr(1).n_categories() as Code,
            );
        }
        let d1 = base.distance(&ContingencyTables::build(&one));
        let d2 = base.distance(&ContingencyTables::build(&many));
        assert!(d1 > 0.0);
        assert!(d2 > d1);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let s = sub();
        let mut m = s.clone();
        for r in 0..s.n_rows() {
            m.set(r, 2, 0);
        }
        let a = ContingencyTables::build(&s);
        let b = ContingencyTables::build(&m);
        let d = a.distance(&b);
        assert!((d - b.distance(&a)).abs() < 1e-12);
        assert!((0.0..=100.0).contains(&d));
    }

    #[test]
    fn apply_mutation_matches_rebuild() {
        let s = sub();
        let mut tables = ContingencyTables::build(&s);
        let mut m = s.clone();
        // a chain of mutations, table updated in place each time
        let muts = [(0usize, 0usize, 5u16), (3, 1, 2), (7, 2, 9), (0, 0, 1)];
        for &(row, k, new) in &muts {
            let new = new % m.attr(k).n_categories() as Code;
            let old = m.get(row, k);
            m.set(row, k, new);
            tables.apply_mutation(&m, row, k, old);
        }
        assert_eq!(tables, ContingencyTables::build(&m));
    }

    #[test]
    fn apply_row_patch_matches_rebuild_when_two_attrs_of_one_row_change() {
        let s = sub();
        let mut tables = ContingencyTables::build(&s);
        let mut m = s.clone();
        let old0 = m.get(4, 0);
        let old2 = m.get(4, 2);
        m.set(4, 0, (old0 + 3) % m.attr(0).n_categories() as Code);
        m.set(4, 2, (old2 + 5) % m.attr(2).n_categories() as Code);
        tables.apply_row_patch(&m, 4, &[(0, old0), (2, old2)]);
        assert_eq!(tables, ContingencyTables::build(&m));
    }

    #[test]
    fn clone_from_reuses_matching_shape() {
        let s = sub();
        let a = ContingencyTables::build(&s);
        let mut m = s.clone();
        m.set(0, 0, (m.get(0, 0) + 1) % m.attr(0).n_categories() as Code);
        let mut b = ContingencyTables::build(&m);
        b.clone_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_mutation_noop_when_code_unchanged() {
        let s = sub();
        let mut tables = ContingencyTables::build(&s);
        let before = tables.clone();
        tables.apply_mutation(&s, 0, 0, s.get(0, 0));
        assert_eq!(tables, before);
    }
}
