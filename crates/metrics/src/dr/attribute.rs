//! Attribute disclosure (extension).
//!
//! The paper's §2.3.2 follows identity disclosure but explicitly names the
//! alternative: "attribute disclosure ... when the intruder can improve
//! his knowledge about a particular attribute of an individual without
//! linking any record to this particular individual. E.g., have a rough
//! estimation of the income of Lois Lane in Metropolis."
//!
//! This module implements that attack: for a target attribute `t`, the
//! intruder knows a respondent's *original* values on the other protected
//! attributes, selects all masked records agreeing with them, and predicts
//! the modal masked value of `t` among the matches. The measure is the
//! share of records whose true value is predicted this way (ordinal
//! predictions are credited inside the same ±interval used by interval
//! disclosure). It is **not** part of the paper's DR aggregate — it plugs
//! into experiments through [`crate::MetricConfig`]-independent calls and
//! the diagnostics tooling.

use cdp_dataset::{Code, SubTable};

use crate::prepared::PreparedOriginal;

/// Attribute disclosure of target attribute `target` in `[0, 100]`.
/// `fraction` is the ordinal credit window (as in interval disclosure).
pub fn attribute_disclosure(
    prep: &PreparedOriginal,
    masked: &SubTable,
    target: usize,
    fraction: f64,
) -> f64 {
    let n = prep.n_rows();
    let a = prep.n_attrs();
    if n == 0 || a < 2 {
        return 0.0;
    }
    let c = prep.cats(target);
    let window = if prep.is_ordinal(target) {
        (((fraction * (c.saturating_sub(1)) as f64).round() as u16).max(1)) as u32
    } else {
        0
    };

    let mut disclosed = 0usize;
    let mut votes = vec![0u32; c];
    for i in 0..n {
        votes.iter_mut().for_each(|v| *v = 0);
        let mut any = false;
        'records: for j in 0..n {
            for k in 0..a {
                if k == target {
                    continue;
                }
                if masked.get(j, k) != prep.orig().get(i, k) {
                    continue 'records;
                }
            }
            votes[masked.get(j, target) as usize] += 1;
            any = true;
        }
        if !any {
            continue;
        }
        let predicted = votes
            .iter()
            .enumerate()
            .max_by_key(|&(code, &cnt)| (cnt, std::cmp::Reverse(code)))
            .map(|(code, _)| code as Code)
            .expect("non-empty votes");
        let truth = prep.orig().get(i, target);
        let hit = if prep.is_ordinal(target) {
            u32::from(truth.abs_diff(predicted)) <= window
        } else {
            truth == predicted
        };
        if hit {
            disclosed += 1;
        }
    }
    100.0 * disclosed as f64 / n as f64
}

/// Attribute disclosure averaged over every protected attribute as target.
pub fn attribute_disclosure_avg(prep: &PreparedOriginal, masked: &SubTable, fraction: f64) -> f64 {
    let a = prep.n_attrs();
    if a == 0 {
        return 0.0;
    }
    (0..a)
        .map(|t| attribute_disclosure(prep, masked, t, fraction))
        .sum::<f64>()
        / a as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub() -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::German
            .generate(&GeneratorConfig::seeded(17).with_records(200))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_discloses_attributes_strongly() {
        let (p, s) = prep_and_sub();
        let v = attribute_disclosure_avg(&p, &s, 0.1);
        assert!(v > 50.0, "got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn randomizing_the_target_reduces_disclosure() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        // scramble only attribute 0 (the target); the intruder's join keys
        // (attributes 1, 2) stay intact
        let c = p.cats(0) as Code;
        for r in 0..m.n_rows() {
            m.set(r, 0, rng.gen_range(0..c));
        }
        let clear = attribute_disclosure(&p, &s, 0, 0.1);
        let noisy = attribute_disclosure(&p, &m, 0, 0.1);
        assert!(noisy < clear, "noisy {noisy} vs clear {clear}");
    }

    #[test]
    fn breaking_the_join_keys_also_reduces_disclosure() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        for k in 1..m.n_attrs() {
            let c = p.cats(k) as Code;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        let clear = attribute_disclosure(&p, &s, 0, 0.1);
        let broken = attribute_disclosure(&p, &m, 0, 0.1);
        assert!(broken <= clear);
    }

    #[test]
    fn constant_target_discloses_the_modal_share() {
        // if the published target is constant, the intruder predicts that
        // constant; records truly near it count as disclosed
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            m.set(r, 0, 2);
        }
        let v = attribute_disclosure(&p, &m, 0, 0.1);
        // EXISTACC is ordinal with 5 categories, window 1: disclosed share
        // = fraction of originals in {1, 2, 3} among records with matches
        let near: usize = s
            .column(0)
            .iter()
            .filter(|&&x| (1..=3).contains(&x))
            .count();
        let upper = 100.0 * near as f64 / s.n_rows() as f64;
        assert!(v <= upper + 1e-9, "v = {v}, upper = {upper}");
    }

    #[test]
    fn values_bounded() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as Code;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.5) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        for t in 0..p.n_attrs() {
            let v = attribute_disclosure(&p, &m, t, 0.1);
            assert!((0.0..=100.0).contains(&v));
        }
    }
}
