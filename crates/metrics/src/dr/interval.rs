//! Interval disclosure (ID).
//!
//! Domingo-Ferrer & Torra (2001): an intruder who sees a masked value
//! brackets it with an interval and checks whether the true value falls
//! inside. For ordinal attributes the interval is ±`fraction` of the
//! category range around the masked code; for nominal attributes the
//! interval degenerates to exact equality. The measure is the share of
//! cells disclosed this way, averaged over attributes, in `[0, 100]`.

use cdp_dataset::{Code, SubTable};

use crate::prepared::PreparedOriginal;

/// Width in category steps of the ordinal disclosure interval.
fn window(prep: &PreparedOriginal, k: usize, fraction: f64) -> u16 {
    let c = prep.cats(k);
    if c <= 1 {
        return 0;
    }
    ((fraction * (c - 1) as f64).round() as u16).max(1)
}

/// Is one cell disclosed? (`orig` within the interval around `masked`.)
pub fn cell_disclosed(
    prep: &PreparedOriginal,
    k: usize,
    orig: Code,
    masked: Code,
    fraction: f64,
) -> bool {
    if prep.is_ordinal(k) {
        orig.abs_diff(masked) <= window(prep, k, fraction)
    } else {
        orig == masked
    }
}

/// Disclosed-cell counts per attribute.
pub fn disclosed_counts(prep: &PreparedOriginal, masked: &SubTable, fraction: f64) -> Vec<u32> {
    (0..prep.n_attrs())
        .map(|k| {
            let (o, m) = (prep.orig().column(k), masked.column(k));
            if prep.is_ordinal(k) {
                let w = window(prep, k, fraction);
                o.iter()
                    .zip(m.iter())
                    .filter(|(&x, &y)| x.abs_diff(y) <= w)
                    .count() as u32
            } else {
                o.iter().zip(m.iter()).filter(|(x, y)| x == y).count() as u32
            }
        })
        .collect()
}

/// Convert per-attribute disclosed counts into the ID value.
pub fn id_value(prep: &PreparedOriginal, counts: &[u32]) -> f64 {
    let n = prep.n_rows();
    if n == 0 || counts.is_empty() {
        return 0.0;
    }
    let per_attr: f64 =
        counts.iter().map(|&c| f64::from(c) / n as f64).sum::<f64>() / counts.len() as f64;
    100.0 * per_attr
}

/// Interval disclosure of a masked file.
pub fn interval_disclosure(prep: &PreparedOriginal, masked: &SubTable, fraction: f64) -> f64 {
    id_value(prep, &disclosed_counts(prep, masked, fraction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub() -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(6).with_records(150))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_discloses_everything() {
        let (p, s) = prep_and_sub();
        assert_eq!(interval_disclosure(&p, &s, 0.1), 100.0);
    }

    #[test]
    fn random_masking_discloses_little_on_nominal() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        // randomize the 14-category nominal OCCUPATION only
        for r in 0..m.n_rows() {
            m.set(r, 2, rng.gen_range(0..14));
        }
        let full = interval_disclosure(&p, &s, 0.1);
        let masked = interval_disclosure(&p, &m, 0.1);
        assert!(masked < full);
    }

    #[test]
    fn wider_fraction_discloses_more() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        // shift the ordinal attribute by 2 categories
        for r in 0..m.n_rows() {
            let v = m.get(r, 0);
            m.set(r, 0, (v + 2).min(15));
        }
        let narrow = interval_disclosure(&p, &m, 0.05);
        let wide = interval_disclosure(&p, &m, 0.3);
        assert!(wide > narrow);
    }

    #[test]
    fn small_ordinal_shift_still_discloses() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            let v = m.get(r, 0);
            m.set(r, 0, if v == 15 { 14 } else { v + 1 });
        }
        // one step is inside the default 10% window of a 16-category range
        let counts = disclosed_counts(&p, &m, 0.1);
        assert_eq!(counts[0] as usize, p.n_rows());
    }

    #[test]
    fn cell_level_agrees_with_bulk() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as Code;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.3) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let counts = disclosed_counts(&p, &m, 0.1);
        for (k, &count) in counts.iter().enumerate() {
            let manual = (0..p.n_rows())
                .filter(|&r| cell_disclosed(&p, k, p.orig().get(r, k), m.get(r, k), 0.1))
                .count() as u32;
            assert_eq!(count, manual);
        }
    }
}
