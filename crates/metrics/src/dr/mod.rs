//! Disclosure-risk measures that are not record-linkage based.
//!
//! The record-linkage measures (DBRL, PRL, RSRL) live in
//! [`crate::linkage`]; this module hosts interval disclosure (part of the
//! paper's DR aggregate) and attribute disclosure (the alternative risk
//! notion the paper names but does not evaluate — an extension here).

mod attribute;
mod interval;

pub use attribute::{attribute_disclosure, attribute_disclosure_avg};
pub use interval::{cell_disclosed, disclosed_counts, id_value, interval_disclosure};
