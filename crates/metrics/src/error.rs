//! Error type of the metrics crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MetricError>;

/// Errors raised while preparing or applying measures.
#[derive(Debug)]
pub enum MetricError {
    /// The masked sub-table does not match the original's shape/schema.
    ShapeMismatch(String),
    /// A configuration value outside its admissible range.
    InvalidConfig(String),
    /// A malformed objective-set specification (unknown key, duplicate,
    /// missing canonical prefix, or too many objectives).
    InvalidObjectives(String),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            MetricError::InvalidConfig(msg) => write!(f, "invalid metric config: {msg}"),
            MetricError::InvalidObjectives(msg) => write!(f, "invalid objectives: {msg}"),
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MetricError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid metric config"));
        assert!(MetricError::ShapeMismatch("y".into())
            .to_string()
            .contains("shape mismatch"));
        assert!(MetricError::InvalidObjectives("z".into())
            .to_string()
            .contains("invalid objectives"));
    }
}
