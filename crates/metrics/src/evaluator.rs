//! The fitness evaluator: one struct owning every cached statistic needed
//! to assess a masked file, plus a patch-based delta-evaluation engine
//! whose results are **bit-identical** to a full assessment.
//!
//! The paper reports that fitness evaluation consumes 99.98% of a
//! generation's wall time and names faster IL/DR computation as future
//! work. Four levers are implemented here:
//!
//! 1. **Original-side caching** — ranks, marginals, contingency tables and
//!    chance-agreement probabilities of the original file are computed once
//!    per experiment ([`PreparedOriginal`]), and shared across every
//!    evaluation against that original.
//! 2. **Patch-based re-assessment** — [`Evaluator::reassess`] updates an
//!    [`EvalState`] after an arbitrary [`Patch`] of cell changes (a
//!    mutation's single cell, or a crossover's flattened segment) instead
//!    of re-scoring the whole file. Every measure derives from *integer*
//!    sufficient statistics that admit exact deltas: CTBIL/DBIL/EBIL/ID
//!    per changed cell (pair tables are corrected per touched *row* so
//!    simultaneous changes to two attributes of one record stay exact),
//!    DBRL by relinking the touched records (links are per-masked-record
//!    independent), PRL from per-record agreement-pattern histograms
//!    ([`crate::linkage::PatternCensus`]: touched rows rebuild in O(n·a),
//!    the Fellegi–Sunter model refits from the summed census — identical
//!    to a from-scratch fit — and all credits recompute in O(n·2^a)), and
//!    RSRL by re-crediting exactly the records whose rank windows moved
//!    ([`MaskedStats::apply_patch`] reports every midrank shift, touched
//!    row or not). A patched state therefore equals the full recompute
//!    bit for bit — no frozen-weights or stale-midrank approximation, no
//!    drift to bound.
//! 3. **Scratch reuse** — [`Evaluator::reassess_into`] writes the updated
//!    state into a caller-owned scratch [`EvalState`] whose buffers are
//!    recycled (`clone_from` is allocation-free once shapes match), so the
//!    per-offspring cost is a handful of `memcpy`s plus the delta work —
//!    not five fresh n-sized vectors per iteration.
//! 4. **Blocked linkage** — with [`LinkageMode::Blocked`] (the default),
//!    DBRL and RSRL scan the *distinct patterns* of a [`PatternIndex`]
//!    instead of all `n²` record pairs, and the PRL census is built the
//!    same way; the state carries a masked-side index that every patch
//!    moves rows through ([`PatternIndex::move_row`]), so the delta path
//!    and the full path stay on the same sufficient statistics. Credits
//!    are `assert_eq!`-identical to [`LinkageMode::Pairs`] — see
//!    [`crate::linkage`] for the exactness argument.
//!
//! [`Evaluator::reassess_mutation`] remains as the single-cell
//! convenience wrapper over the patch engine.

use std::collections::HashMap;

use cdp_dataset::{Code, PatternId, PatternIndex, SubTable};

use crate::contingency::ContingencyTables;
use crate::dr::{cell_disclosed, disclosed_counts, id_value};
use crate::il::{
    build_confusion, dbil_accs, dbil_sum_from_accs, dbil_value, ebil_from_confusion,
    update_confusion,
};
use crate::linkage::{
    compatible_categories, count_candidates, credits_value, dbrl_credit, dbrl_credits,
    dbrl_credits_blocked, pattern_link, pattern_to_row_distance, rsrl_credit, rsrl_credits,
    rsrl_credits_blocked, self_compatible, PatternCensus, PrlModel, DIST_EPS,
};
use crate::patch::{Patch, PatchCell};
use crate::prepared::{MaskedStats, MovedCategory, PreparedOriginal};
use crate::score::ScoreAggregator;
use crate::{MetricError, Result};

/// Which implementation computes the DBRL and RSRL credits.
///
/// Both produce `assert_eq!`-identical credits (the blocked scans are
/// property-tested against the all-pairs references, patch path included);
/// the choice only trades scan shape:
///
/// * [`LinkageMode::Pairs`] — the textbook `O(n²·a)` scans over all
///   original–masked record pairs;
/// * [`LinkageMode::Blocked`] — the [`PatternIndex`]-based scans over
///   *distinct* patterns, `O(n·a + p_m·p_o·a)` with `p ≤ Π_k c_k`
///   independent of the row count.
///
/// PRL always derives from the pattern census (itself index-built — the
/// census is identical integers either way), so this knob does not affect
/// it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LinkageMode {
    /// All-pairs reference scans.
    Pairs,
    /// Pattern-index (blocked) scans — the default.
    #[default]
    Blocked,
}

/// Tunable measure parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricConfig {
    /// Interval-disclosure half-width as a fraction of the category range.
    pub interval_fraction: f64,
    /// The RSRL intruder's assumed swap window, fraction of records.
    pub rsrl_window_fraction: f64,
    /// EM iterations for the Fellegi–Sunter fit.
    pub prl_em_iters: usize,
    /// DBRL/RSRL scan implementation (identical results either way).
    pub linkage: LinkageMode,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            interval_fraction: 0.1,
            rsrl_window_fraction: 0.05,
            prl_em_iters: 15,
            linkage: LinkageMode::default(),
        }
    }
}

impl MetricConfig {
    fn validate(&self) -> Result<()> {
        if !(self.interval_fraction > 0.0 && self.interval_fraction < 1.0) {
            return Err(MetricError::InvalidConfig(format!(
                "interval_fraction must lie in (0,1), got {}",
                self.interval_fraction
            )));
        }
        if !(self.rsrl_window_fraction > 0.0 && self.rsrl_window_fraction <= 1.0) {
            return Err(MetricError::InvalidConfig(format!(
                "rsrl_window_fraction must lie in (0,1], got {}",
                self.rsrl_window_fraction
            )));
        }
        if self.prl_em_iters == 0 {
            return Err(MetricError::InvalidConfig(
                "prl_em_iters must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The three information-loss components, each in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlBreakdown {
    /// Contingency-table-based IL.
    pub ctbil: f64,
    /// Distance-based IL.
    pub dbil: f64,
    /// Entropy-based IL.
    pub ebil: f64,
}

impl IlBreakdown {
    /// The paper's IL: the mean of the three measures.
    pub fn value(&self) -> f64 {
        (self.ctbil + self.dbil + self.ebil) / 3.0
    }
}

/// The four disclosure-risk components, each in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrBreakdown {
    /// Interval disclosure.
    pub id: f64,
    /// Distance-based record linkage.
    pub dbrl: f64,
    /// Probabilistic record linkage.
    pub prl: f64,
    /// Rank-swapping-aware record linkage.
    pub rsrl: f64,
}

impl DrBreakdown {
    /// The paper's DR: the mean of the four measures.
    pub fn value(&self) -> f64 {
        (self.id + self.dbrl + self.prl + self.rsrl) / 4.0
    }
}

/// A complete (IL, DR) assessment of one masked file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Information-loss components.
    pub il_parts: IlBreakdown,
    /// Disclosure-risk components.
    pub dr_parts: DrBreakdown,
}

impl Assessment {
    /// Aggregated information loss.
    pub fn il(&self) -> f64 {
        self.il_parts.value()
    }

    /// Aggregated disclosure risk.
    pub fn dr(&self) -> f64 {
        self.dr_parts.value()
    }

    /// Fitness score under an aggregator.
    pub fn score(&self, agg: ScoreAggregator) -> f64 {
        agg.score(self.il(), self.dr())
    }
}

/// An assessment together with the sufficient statistics that make
/// patch-based updates cheap.
///
/// Memory: dominated by the PRL pattern histograms, `n_rows · 2^a` `u32`s
/// (`a` = protected attributes; 32 KB per state at the paper's 1000×3
/// shape). The histograms also serve the *full* assessment — credits sweep
/// them in O(n·2^a) instead of re-scanning all n² pairs — so the footprint
/// buys speed even in `inc=off` runs that never patch.
#[derive(Debug)]
pub struct EvalState {
    /// The headline numbers.
    pub assessment: Assessment,
    masked_tables: ContingencyTables,
    dbil_accs: Vec<u64>,
    confusion: Vec<Vec<u32>>,
    id_counts: Vec<u32>,
    masked_stats: MaskedStats,
    /// Distinct-pattern index of the masked file, patched row-by-row as
    /// cells change. Maintained in both linkage modes: the PRL census is
    /// keyed by its pattern ids.
    masked_index: PatternIndex,
    pattern_census: PatternCensus,
    prl_model: PrlModel,
    dbrl_credits: Vec<f64>,
    prl_credits: Vec<f64>,
    rsrl_credits: Vec<f64>,
}

impl EvalState {
    /// The per-attribute original→masked confusion matrices
    /// (`conf[k][o*c + v]`, `c` = category count of attribute `k`) — the
    /// channel view the ε-leakage objective reads.
    pub(crate) fn confusion(&self) -> &[Vec<u32>] {
        &self.confusion
    }

    /// The masked file's contingency tables — the training side of the
    /// task-utility objective.
    pub(crate) fn masked_tables(&self) -> &ContingencyTables {
        &self.masked_tables
    }
}

impl Clone for EvalState {
    fn clone(&self) -> Self {
        EvalState {
            assessment: self.assessment,
            masked_tables: self.masked_tables.clone(),
            dbil_accs: self.dbil_accs.clone(),
            confusion: self.confusion.clone(),
            id_counts: self.id_counts.clone(),
            masked_stats: self.masked_stats.clone(),
            masked_index: self.masked_index.clone(),
            pattern_census: self.pattern_census.clone(),
            prl_model: self.prl_model.clone(),
            dbrl_credits: self.dbrl_credits.clone(),
            prl_credits: self.prl_credits.clone(),
            rsrl_credits: self.rsrl_credits.clone(),
        }
    }

    /// Field-wise buffer reuse: copying one state over another of the same
    /// shape performs no heap allocation. [`Evaluator::reassess_into`]
    /// relies on this to keep the evolution loop allocation-free.
    fn clone_from(&mut self, src: &Self) {
        self.assessment = src.assessment;
        self.masked_tables.clone_from(&src.masked_tables);
        self.dbil_accs.clone_from(&src.dbil_accs);
        self.confusion.clone_from(&src.confusion);
        self.id_counts.clone_from(&src.id_counts);
        self.masked_stats.clone_from(&src.masked_stats);
        self.masked_index.clone_from_reuse(&src.masked_index);
        self.pattern_census.clone_from(&src.pattern_census);
        self.prl_model.clone_from(&src.prl_model);
        self.dbrl_credits.clone_from(&src.dbrl_credits);
        self.prl_credits.clone_from(&src.prl_credits);
        self.rsrl_credits.clone_from(&src.rsrl_credits);
    }
}

/// Fitness evaluator bound to one original file.
#[derive(Debug, Clone)]
pub struct Evaluator {
    prep: PreparedOriginal,
    cfg: MetricConfig,
}

impl Evaluator {
    /// Prepare the evaluator for an original protected sub-table.
    ///
    /// # Errors
    /// [`MetricError::InvalidConfig`] for out-of-range parameters.
    pub fn new(original: &SubTable, cfg: MetricConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Evaluator {
            prep: PreparedOriginal::new(original),
            cfg,
        })
    }

    /// Bind an already-prepared original (a snapshot rehydration) to a
    /// configuration. The config is re-validated; the preparation is
    /// adopted verbatim, so an evaluator rebuilt this way assesses
    /// bit-identically to one built by [`Evaluator::new`].
    pub(crate) fn from_prepared(prep: PreparedOriginal, cfg: MetricConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Evaluator { prep, cfg })
    }

    /// Approximate heap footprint of the retained preparation, in bytes
    /// (see [`PreparedOriginal::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.prep.approx_bytes()
    }

    /// The prepared original statistics.
    pub fn prepared(&self) -> &PreparedOriginal {
        &self.prep
    }

    /// The original protected columns.
    pub fn original(&self) -> &SubTable {
        self.prep.orig()
    }

    /// The active configuration.
    pub fn config(&self) -> &MetricConfig {
        &self.cfg
    }

    /// The intruder's RSRL rank window in absolute positions.
    fn rsrl_window(&self) -> f64 {
        (self.cfg.rsrl_window_fraction * self.prep.n_rows() as f64).max(1.0)
    }

    /// Full assessment without retaining caches.
    ///
    /// # Panics
    /// Panics when `masked` has a different shape than the original — use
    /// [`PreparedOriginal::check_compatible`] on untrusted input.
    pub fn evaluate(&self, masked: &SubTable) -> Assessment {
        self.assess(masked).assessment
    }

    /// Full assessment, retaining the sufficient statistics for
    /// [`Evaluator::reassess_mutation`].
    pub fn assess(&self, masked: &SubTable) -> EvalState {
        debug_assert!(self.prep.check_compatible(masked).is_ok());
        let prep = &self.prep;

        let masked_tables = ContingencyTables::build(masked);
        let accs = dbil_accs(prep, masked);
        let confusion = build_confusion(prep, masked);
        let id_counts = disclosed_counts(prep, masked, self.cfg.interval_fraction);
        let masked_stats = MaskedStats::build(prep, masked);
        let masked_index = PatternIndex::build(masked);
        let pattern_census = PatternCensus::build(prep, masked, &masked_index);
        let prl_model =
            PrlModel::fit_from_counts(prep, pattern_census.counts(), self.cfg.prl_em_iters);

        let dbrl_cr = match self.cfg.linkage {
            LinkageMode::Pairs => dbrl_credits(prep, masked),
            LinkageMode::Blocked => dbrl_credits_blocked(prep, masked, &masked_index),
        };
        let prl_cr = pattern_census.credits(&prl_model, &masked_index);
        let rsrl_cr = match self.cfg.linkage {
            LinkageMode::Pairs => rsrl_credits(prep, &masked_stats, masked, self.rsrl_window()),
            LinkageMode::Blocked => {
                rsrl_credits_blocked(prep, &masked_stats, &masked_index, self.rsrl_window())
            }
        };

        let assessment = Assessment {
            il_parts: IlBreakdown {
                ctbil: prep.tables().distance(&masked_tables),
                dbil: dbil_value(
                    dbil_sum_from_accs(prep, &accs),
                    prep.n_rows(),
                    prep.n_attrs(),
                ),
                ebil: ebil_from_confusion(prep, &confusion),
            },
            dr_parts: DrBreakdown {
                id: id_value(prep, &id_counts),
                dbrl: credits_value(&dbrl_cr),
                prl: credits_value(&prl_cr),
                rsrl: credits_value(&rsrl_cr),
            },
        };
        EvalState {
            assessment,
            masked_tables,
            dbil_accs: accs,
            confusion,
            id_counts,
            masked_stats,
            masked_index,
            pattern_census,
            prl_model,
            dbrl_credits: dbrl_cr,
            prl_credits: prl_cr,
            rsrl_credits: rsrl_cr,
        }
    }

    /// Re-assess after a single-cell mutation: the single-cell wrapper
    /// over [`Evaluator::reassess`].
    ///
    /// `masked` must already contain the new value at `(row, k)`; `old` is
    /// the value it replaced. A no-op mutation (`new == old`) short-circuits
    /// before any patch machinery runs and hands back a plain copy of
    /// `prev` (use [`Evaluator::reassess_into`] to avoid even that copy's
    /// allocations via scratch reuse).
    pub fn reassess_mutation(
        &self,
        prev: &EvalState,
        masked: &SubTable,
        row: usize,
        k: usize,
        old: Code,
    ) -> EvalState {
        if masked.get(row, k) == old {
            return prev.clone();
        }
        self.reassess(prev, masked, &Patch::cell(row, k, old))
    }

    /// Re-assess after an arbitrary set of cell changes.
    ///
    /// `masked` must already contain the new values; `patch` names the
    /// changed cells with their previous values. Every measure is updated
    /// exactly — the result is bit-identical to [`Evaluator::assess`] on
    /// the same file (see the module docs for how each linkage measure
    /// achieves this). Cells whose old value equals the masked value are
    /// skipped, so crossover segments may be handed over verbatim.
    pub fn reassess(&self, prev: &EvalState, masked: &SubTable, patch: &Patch) -> EvalState {
        let mut out = prev.clone();
        self.apply_patch(masked, patch, &mut out);
        out
    }

    /// [`Evaluator::reassess`] with scratch reuse: `out` is overwritten
    /// with the updated state, recycling its buffers (no heap allocation
    /// beyond the patch bookkeeping once shapes match). `out` may hold a
    /// state of any provenance — its previous content is discarded.
    pub fn reassess_into(
        &self,
        prev: &EvalState,
        masked: &SubTable,
        patch: &Patch,
        out: &mut EvalState,
    ) {
        out.clone_from(prev);
        self.apply_patch(masked, patch, out);
    }

    /// One changed cell's exact integer deltas: DBIL accumulator, the EBIL
    /// confusion channel, and interval disclosure.
    fn apply_cell_deltas(&self, state: &mut EvalState, row: usize, k: usize, old: Code, new: Code) {
        let prep = &self.prep;
        let orig = prep.orig().get(row, k);
        if prep.is_ordinal(k) {
            state.dbil_accs[k] += u64::from(orig.abs_diff(new));
            state.dbil_accs[k] -= u64::from(orig.abs_diff(old));
        } else {
            state.dbil_accs[k] += u64::from(orig != new);
            state.dbil_accs[k] -= u64::from(orig != old);
        }
        update_confusion(&mut state.confusion, prep, row, k, old, new);
        let was = cell_disclosed(prep, k, orig, old, self.cfg.interval_fraction);
        let is = cell_disclosed(prep, k, orig, new, self.cfg.interval_fraction);
        match (was, is) {
            (true, false) => state.id_counts[k] -= 1,
            (false, true) => state.id_counts[k] += 1,
            _ => {}
        }
    }

    /// Move every touched row to its new bucket in the masked pattern
    /// index, shifting the PRL census by the corresponding histogram
    /// differences. Must run *after* `masked` holds the new values and
    /// before [`Evaluator::relink`] reads the index.
    fn repattern(&self, masked: &SubTable, touched_rows: &[usize], state: &mut EvalState) {
        let prep = &self.prep;
        let mut buf = vec![0 as Code; prep.n_attrs()];
        for &row in touched_rows {
            masked.read_row(row, &mut buf);
            let (old_pid, new_pid) = state.masked_index.move_row(row, &buf);
            state.pattern_census.row_moved(
                prep,
                masked,
                &state.masked_index,
                row,
                old_pid,
                new_pid,
            );
        }
    }

    /// Exact relinking after the sufficient statistics (including the
    /// masked pattern index and census — see [`Evaluator::repattern`])
    /// moved: PRL refits from the census and re-credits every record from
    /// integer pattern data, DBRL relinks the touched rows, and RSRL
    /// re-credits the touched rows plus every record holding a category
    /// whose rank window changed. DBRL/RSRL re-credits go through the
    /// configured [`LinkageMode`] backend; in blocked mode, touched rows
    /// sharing a masked pattern share one pattern-level link.
    fn relink(
        &self,
        masked: &SubTable,
        touched_rows: &[usize],
        moved: &[MovedCategory],
        state: &mut EvalState,
    ) {
        let prep = &self.prep;

        // PRL: the census already moved with the index; an EM refit over
        // 2^a patterns and an O(n·2^a) credit sweep — bit-identical to a
        // full fit+link, because census and histograms are identical
        // integers
        state.prl_model.refit_from_counts(
            prep,
            state.pattern_census.counts(),
            self.cfg.prl_em_iters,
        );
        state.pattern_census.credits_into(
            &state.prl_model,
            &state.masked_index,
            &mut state.prl_credits,
        );

        // DBRL: per-masked-record independent, touched rows only
        match self.cfg.linkage {
            LinkageMode::Pairs => {
                for &row in touched_rows {
                    state.dbrl_credits[row] = dbrl_credit(prep, masked, row);
                }
            }
            LinkageMode::Blocked => {
                let mut links: HashMap<PatternId, (f64, u64)> = HashMap::new();
                let mut q = vec![0 as Code; prep.n_attrs()];
                for &row in touched_rows {
                    masked.read_row(row, &mut q);
                    let pid = state.masked_index.pattern_of(row);
                    let (best, ties) = *links.entry(pid).or_insert_with(|| pattern_link(prep, &q));
                    let d_self = pattern_to_row_distance(prep, &q, row);
                    state.dbrl_credits[row] = if (d_self - best).abs() <= DIST_EPS && ties > 0 {
                        1.0 / ties as f64
                    } else {
                        0.0
                    };
                }
            }
        }

        // RSRL: a midrank move only matters when it changes the window's
        // category-compatibility set; re-credit exactly the holders of the
        // categories whose set changed (plus the touched rows themselves)
        let window = self.rsrl_window();
        let mut recredit = vec![false; prep.n_rows()];
        for &row in touched_rows {
            recredit[row] = true;
        }
        for mc in moved {
            let unchanged = (mc.old_midrank.is_nan() && mc.new_midrank.is_nan())
                || mc.old_midrank == mc.new_midrank;
            if unchanged {
                continue;
            }
            let before = compatible_categories(prep, mc.attr, mc.old_midrank, window);
            let after = compatible_categories(prep, mc.attr, mc.new_midrank, window);
            if before == after {
                continue;
            }
            for (i, &v) in masked.column(mc.attr).iter().enumerate() {
                if v == mc.cat {
                    recredit[i] = true;
                }
            }
        }
        match self.cfg.linkage {
            LinkageMode::Pairs => {
                for (i, &due) in recredit.iter().enumerate() {
                    if due {
                        state.rsrl_credits[i] =
                            rsrl_credit(prep, &state.masked_stats, masked, i, window);
                    }
                }
            }
            LinkageMode::Blocked => {
                let mut pools: HashMap<PatternId, (u64, Vec<Vec<bool>>)> = HashMap::new();
                for (i, &due) in recredit.iter().enumerate() {
                    if !due {
                        continue;
                    }
                    let pid = state.masked_index.pattern_of(i);
                    let (candidates, compat) = pools.entry(pid).or_insert_with(|| {
                        let q = state.masked_index.codes_of(pid);
                        let compat: Vec<Vec<bool>> = (0..prep.n_attrs())
                            .map(|k| {
                                compatible_categories(
                                    prep,
                                    k,
                                    state.masked_stats.midrank(k, q[k]),
                                    window,
                                )
                            })
                            .collect();
                        (count_candidates(prep, &compat), compat)
                    });
                    state.rsrl_credits[i] = if *candidates > 0 && self_compatible(prep, compat, i) {
                        1.0 / *candidates as f64
                    } else {
                        0.0
                    };
                }
            }
        }

        self.refresh_assessment(state);
    }

    /// Single-cell fast path: the mutation operator's shape, taken every
    /// iteration of an `incremental_mutation` run, so it skips the general
    /// engine's resolve/sort/group bookkeeping entirely.
    fn apply_single_cell(&self, masked: &SubTable, cell: PatchCell, state: &mut EvalState) {
        let prep = &self.prep;
        let PatchCell { row, attr: k, old } = cell;
        let new = masked.get(row, k);
        if new == old {
            return;
        }
        self.apply_cell_deltas(state, row, k, old, new);
        state
            .masked_tables
            .apply_row_patch(masked, row, &[(k, old)]);
        let moved = state.masked_stats.apply_patch(prep, [(k, old, new)]);
        self.repattern(masked, &[row], state);
        self.relink(masked, &[row], &moved, state);
    }

    /// The patch engine: update `state` (already a copy of the pre-patch
    /// state) in place.
    fn apply_patch(&self, masked: &SubTable, patch: &Patch, state: &mut EvalState) {
        let prep = &self.prep;
        if let Some(cell) = patch.single_cell(prep.n_attrs()) {
            self.apply_single_cell(masked, cell, state);
            return;
        }
        let mut cells = patch.resolve(prep.n_attrs());
        cells.sort_unstable_by_key(|c| (c.row, c.attr));
        // a duplicated cell would double-apply every integer delta below,
        // silently corrupting counts that the bit-exactness contract builds
        // on — the cells are already sorted, so the check is one cheap pass
        assert!(
            cells
                .windows(2)
                .all(|w| (w[0].row, w[0].attr) != (w[1].row, w[1].attr)),
            "patch names the same cell twice"
        );

        // effective changes only: a patch may name cells that kept their value
        let changed: Vec<(usize, usize, Code, Code)> = cells
            .iter()
            .filter_map(|c| {
                let new = masked.get(c.row, c.attr);
                (new != c.old).then_some((c.row, c.attr, c.old, new))
            })
            .collect();
        if changed.is_empty() {
            return;
        }

        // exact per-cell updates: DBIL, the EBIL confusion channel, and
        // interval disclosure
        for &(row, k, old, new) in &changed {
            self.apply_cell_deltas(state, row, k, old, new);
        }

        // exact contingency updates, one batched call per touched row (so
        // two attributes changing in one record keep the pair tables exact)
        let mut touched_rows: Vec<usize> = Vec::new();
        let mut row_buf: Vec<(usize, Code)> = Vec::with_capacity(prep.n_attrs());
        let mut i = 0;
        while i < changed.len() {
            let row = changed[i].0;
            row_buf.clear();
            while i < changed.len() && changed[i].0 == row {
                row_buf.push((changed[i].1, changed[i].2));
                i += 1;
            }
            state.masked_tables.apply_row_patch(masked, row, &row_buf);
            touched_rows.push(row);
        }

        // masked-side rank statistics: one rank rebuild per touched
        // attribute, reporting every midrank that moved
        let moved = state
            .masked_stats
            .apply_patch(prep, changed.iter().map(|&(_, k, old, new)| (k, old, new)));

        self.repattern(masked, &touched_rows, state);
        self.relink(masked, &touched_rows, &moved, state);
    }

    /// Recompute the headline numbers from the (already updated)
    /// sufficient statistics.
    fn refresh_assessment(&self, state: &mut EvalState) {
        let prep = &self.prep;
        state.assessment = Assessment {
            il_parts: IlBreakdown {
                ctbil: prep.tables().distance(&state.masked_tables),
                dbil: dbil_value(
                    dbil_sum_from_accs(prep, &state.dbil_accs),
                    prep.n_rows(),
                    prep.n_attrs(),
                ),
                ebil: ebil_from_confusion(prep, &state.confusion),
            },
            dr_parts: DrBreakdown {
                id: id_value(prep, &state.id_counts),
                dbrl: credits_value(&state.dbrl_credits),
                prl: credits_value(&state.prl_credits),
                rsrl: credits_value(&state.rsrl_credits),
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patch::PatchCell;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (Evaluator, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(10).with_records(n))
            .protected_subtable();
        let ev = Evaluator::new(&s, MetricConfig::default()).unwrap();
        (ev, s)
    }

    #[test]
    fn identity_extremes() {
        let (ev, s) = setup(120);
        let a = ev.evaluate(&s);
        assert!(a.il() < 1e-9, "identity IL must be 0, got {}", a.il());
        assert!(a.dr() > 50.0, "identity DR must be high, got {}", a.dr());
        assert_eq!(a.dr_parts.id, 100.0);
    }

    #[test]
    fn all_measures_stay_in_range() {
        let (ev, s) = setup(100);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = ev.prepared().cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.5) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let a = ev.evaluate(&m);
        for v in [
            a.il_parts.ctbil,
            a.il_parts.dbil,
            a.il_parts.ebil,
            a.dr_parts.id,
            a.dr_parts.dbrl,
            a.dr_parts.prl,
            a.dr_parts.rsrl,
        ] {
            assert!((0.0..=100.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn randomization_trades_il_for_dr() {
        let (ev, s) = setup(100);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = ev.prepared().cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        let clear = ev.evaluate(&s);
        let noisy = ev.evaluate(&m);
        assert!(noisy.il() > clear.il());
        assert!(noisy.dr() < clear.dr());
    }

    #[test]
    fn score_uses_aggregator() {
        let (ev, s) = setup(80);
        let a = ev.evaluate(&s);
        assert!((a.score(ScoreAggregator::Mean) - (a.il() + a.dr()) / 2.0).abs() < 1e-12);
        assert!((a.score(ScoreAggregator::Max) - a.il().max(a.dr())).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_rejected() {
        let (_, s) = setup(40);
        for cfg in [
            MetricConfig {
                interval_fraction: 0.0,
                ..MetricConfig::default()
            },
            MetricConfig {
                rsrl_window_fraction: 0.0,
                ..MetricConfig::default()
            },
            MetricConfig {
                prl_em_iters: 0,
                ..MetricConfig::default()
            },
        ] {
            assert!(Evaluator::new(&s, cfg).is_err());
        }
    }

    #[test]
    fn incremental_il_and_id_are_exact() {
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = s.clone();
        let mut state = ev.assess(&m);
        for _ in 0..25 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = ev.prepared().cats(k) as u16;
            let old = m.get(row, k);
            m.set(row, k, rng.gen_range(0..c));
            state = ev.reassess_mutation(&state, &m, row, k, old);
        }
        let full = ev.assess(&m);
        // every measure is bit-identical after a 25-mutation chain
        assert_eq!(state.assessment, full.assessment);
    }

    #[test]
    fn incremental_linkage_matches_full_exactly() {
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = s.clone();
        let mut state = ev.assess(&m);
        for _ in 0..10 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = ev.prepared().cats(k) as u16;
            let old = m.get(row, k);
            m.set(row, k, rng.gen_range(0..c));
            state = ev.reassess_mutation(&state, &m, row, k, old);
        }
        let full = ev.assess(&m);
        // PRL refits from the patched census and RSRL re-credits every
        // record whose rank window moved: zero drift, bit for bit
        assert_eq!(state.assessment.dr_parts.prl, full.assessment.dr_parts.prl);
        assert_eq!(
            state.assessment.dr_parts.rsrl,
            full.assessment.dr_parts.rsrl
        );
        assert_eq!(state.assessment, full.assessment);
    }

    #[test]
    fn noop_mutation_changes_nothing() {
        let (ev, s) = setup(60);
        let state = ev.assess(&s);
        let same = ev.reassess_mutation(&state, &s, 5, 1, s.get(5, 1));
        assert_eq!(state.assessment, same.assessment);
    }

    #[test]
    fn multi_cell_patch_matches_full_exactly() {
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(11);
        let mut m = s.clone();
        let state = ev.assess(&m);
        // one patch carrying 30 random cell changes, including same-row pairs
        let mut cells = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while cells.len() < 30 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            if !seen.insert((row, k)) {
                continue;
            }
            let c = ev.prepared().cats(k) as u16;
            let old = m.get(row, k);
            m.set(row, k, rng.gen_range(0..c));
            cells.push(PatchCell { row, attr: k, old });
        }
        let patched = ev.reassess(&state, &m, &Patch::from_cells(cells));
        let full = ev.assess(&m);
        assert_eq!(patched.assessment, full.assessment);
    }

    #[test]
    fn patch_that_empties_categories_stays_exact() {
        // drive whole categories out of (and back into) the masked file in
        // one patch: the midrank of an absent category is a NaN sentinel,
        // and the moved-category report must still re-credit exactly the
        // right records
        let (ev, s) = setup(80);
        let mut m = s.clone();
        let state = ev.assess(&m);
        let mut cells = Vec::new();
        for row in 0..m.n_rows() {
            let old = m.get(row, 0);
            if old != 0 {
                m.set(row, 0, 0);
                cells.push(PatchCell { row, attr: 0, old });
            }
        }
        assert!(!cells.is_empty(), "attribute 0 must have spread values");
        let collapsed = ev.reassess(&state, &m, &Patch::from_cells(cells));
        assert_eq!(collapsed.assessment, ev.assess(&m).assessment);
    }

    #[test]
    fn reassess_into_matches_reassess_and_reuses_scratch() {
        let (ev, s) = setup(70);
        let mut rng = StdRng::seed_from_u64(12);
        let mut m = s.clone();
        let state = ev.assess(&m);
        let old = m.get(3, 0);
        m.set(3, 0, (old + 5) % ev.prepared().cats(0) as u16);
        let patch = Patch::cell(3, 0, old);
        let owned = ev.reassess(&state, &m, &patch);
        // scratch starts as an arbitrary other state and must be overwritten
        let mut scratch = ev.assess(&s);
        ev.reassess_into(&state, &m, &patch, &mut scratch);
        assert_eq!(owned.assessment, scratch.assessment);
        // reuse the same scratch for a second, different patch
        let old2 = m.get(9, 2);
        m.set(9, 2, (old2 + 1) % ev.prepared().cats(2) as u16);
        let state2 = owned;
        let patch2 = Patch::cell(9, 2, old2);
        ev.reassess_into(&state2, &m, &patch2, &mut scratch);
        assert_eq!(
            ev.reassess(&state2, &m, &patch2).assessment,
            scratch.assessment
        );
        let _ = rng.gen::<u64>();
    }

    #[test]
    fn crossover_segment_patch_matches_full_exactly() {
        // mirror of incremental_linkage_matches_full_exactly for the
        // segment shape: swap a flattened range in from a second file,
        // reassess via a flat-range patch, compare against the full
        // recompute — bit for bit, linkage measures included
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(13);
        let mut other = s.clone();
        for k in 0..other.n_attrs() {
            let c = ev.prepared().cats(k) as u16;
            for r in 0..other.n_rows() {
                if rng.gen_bool(0.5) {
                    other.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let state = ev.assess(&s);
        let flat = s.flat_len();
        let (a, b) = (flat / 5, flat / 2);
        let old_values: Vec<Code> = (a..=b).map(|p| s.get_flat(p)).collect();
        let mut child = s.clone();
        for p in a..=b {
            child.set_flat(p, other.get_flat(p));
        }
        let patched = ev.reassess(&state, &child, &Patch::flat_range(a, b, old_values));
        let full = ev.assess(&child);
        assert_eq!(patched.assessment, full.assessment);
    }

    #[test]
    fn all_noop_patch_returns_prev_exactly() {
        let (ev, s) = setup(50);
        let state = ev.assess(&s);
        let old_values: Vec<Code> = (0..6).map(|p| s.get_flat(p)).collect();
        let same = ev.reassess(&state, &s, &Patch::flat_range(0, 5, old_values));
        assert_eq!(state.assessment, same.assessment);
    }

    #[test]
    fn breakdown_values_average_components() {
        let il = IlBreakdown {
            ctbil: 30.0,
            dbil: 60.0,
            ebil: 90.0,
        };
        assert!((il.value() - 60.0).abs() < 1e-12);
        let dr = DrBreakdown {
            id: 10.0,
            dbrl: 20.0,
            prl: 30.0,
            rsrl: 40.0,
        };
        assert!((dr.value() - 25.0).abs() < 1e-12);
    }
}
