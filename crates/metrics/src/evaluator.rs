//! The fitness evaluator: one struct owning every cached statistic needed
//! to assess a masked file, plus an incremental path for single-cell
//! mutations.
//!
//! The paper reports that fitness evaluation consumes 99.98% of a
//! generation's wall time and names faster IL/DR computation as future
//! work. Two levers are implemented here:
//!
//! 1. **Original-side caching** — ranks, marginals, contingency tables and
//!    chance-agreement probabilities of the original file are computed once
//!    per experiment ([`PreparedOriginal`]).
//! 2. **Incremental re-assessment** — [`Evaluator::reassess_mutation`]
//!    updates an [`EvalState`] after a one-cell mutation: CTBIL/DBIL/EBIL/ID
//!    are updated *exactly* (their sufficient statistics admit O(c) deltas)
//!    while the three linkage measures relink only the mutated record,
//!    which is exact for DBRL (links are per-masked-record independent) and
//!    an approximation for PRL (the EM weights are frozen) and RSRL (other
//!    records' midranks shift by at most one position). The approximation
//!    error is measured in `cdp-bench`'s ablation suite.

use cdp_dataset::{Code, SubTable};

use crate::contingency::ContingencyTables;
use crate::dr::{cell_disclosed, disclosed_counts, id_value};
use crate::il::{build_confusion, dbil_sum, dbil_value, ebil_from_confusion, update_confusion};
use crate::linkage::{
    credits_value, dbrl_credit, dbrl_credits, prl_credit, prl_credits, rsrl_credit, rsrl_credits,
    PrlModel,
};
use crate::prepared::{MaskedStats, PreparedOriginal};
use crate::score::ScoreAggregator;
use crate::{MetricError, Result};

/// Tunable measure parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricConfig {
    /// Interval-disclosure half-width as a fraction of the category range.
    pub interval_fraction: f64,
    /// The RSRL intruder's assumed swap window, fraction of records.
    pub rsrl_window_fraction: f64,
    /// EM iterations for the Fellegi–Sunter fit.
    pub prl_em_iters: usize,
}

impl Default for MetricConfig {
    fn default() -> Self {
        MetricConfig {
            interval_fraction: 0.1,
            rsrl_window_fraction: 0.05,
            prl_em_iters: 15,
        }
    }
}

impl MetricConfig {
    fn validate(&self) -> Result<()> {
        if !(self.interval_fraction > 0.0 && self.interval_fraction < 1.0) {
            return Err(MetricError::InvalidConfig(format!(
                "interval_fraction must lie in (0,1), got {}",
                self.interval_fraction
            )));
        }
        if !(self.rsrl_window_fraction > 0.0 && self.rsrl_window_fraction <= 1.0) {
            return Err(MetricError::InvalidConfig(format!(
                "rsrl_window_fraction must lie in (0,1], got {}",
                self.rsrl_window_fraction
            )));
        }
        if self.prl_em_iters == 0 {
            return Err(MetricError::InvalidConfig(
                "prl_em_iters must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The three information-loss components, each in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlBreakdown {
    /// Contingency-table-based IL.
    pub ctbil: f64,
    /// Distance-based IL.
    pub dbil: f64,
    /// Entropy-based IL.
    pub ebil: f64,
}

impl IlBreakdown {
    /// The paper's IL: the mean of the three measures.
    pub fn value(&self) -> f64 {
        (self.ctbil + self.dbil + self.ebil) / 3.0
    }
}

/// The four disclosure-risk components, each in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrBreakdown {
    /// Interval disclosure.
    pub id: f64,
    /// Distance-based record linkage.
    pub dbrl: f64,
    /// Probabilistic record linkage.
    pub prl: f64,
    /// Rank-swapping-aware record linkage.
    pub rsrl: f64,
}

impl DrBreakdown {
    /// The paper's DR: the mean of the four measures.
    pub fn value(&self) -> f64 {
        (self.id + self.dbrl + self.prl + self.rsrl) / 4.0
    }
}

/// A complete (IL, DR) assessment of one masked file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Information-loss components.
    pub il_parts: IlBreakdown,
    /// Disclosure-risk components.
    pub dr_parts: DrBreakdown,
}

impl Assessment {
    /// Aggregated information loss.
    pub fn il(&self) -> f64 {
        self.il_parts.value()
    }

    /// Aggregated disclosure risk.
    pub fn dr(&self) -> f64 {
        self.dr_parts.value()
    }

    /// Fitness score under an aggregator.
    pub fn score(&self, agg: ScoreAggregator) -> f64 {
        agg.score(self.il(), self.dr())
    }
}

/// An assessment together with the sufficient statistics that make
/// single-mutation updates cheap.
#[derive(Debug, Clone)]
pub struct EvalState {
    /// The headline numbers.
    pub assessment: Assessment,
    masked_tables: ContingencyTables,
    dbil_sum: f64,
    confusion: Vec<Vec<u32>>,
    id_counts: Vec<u32>,
    masked_stats: MaskedStats,
    prl_model: PrlModel,
    dbrl_credits: Vec<f64>,
    prl_credits: Vec<f64>,
    rsrl_credits: Vec<f64>,
}

/// Fitness evaluator bound to one original file.
#[derive(Debug, Clone)]
pub struct Evaluator {
    prep: PreparedOriginal,
    cfg: MetricConfig,
}

impl Evaluator {
    /// Prepare the evaluator for an original protected sub-table.
    ///
    /// # Errors
    /// [`MetricError::InvalidConfig`] for out-of-range parameters.
    pub fn new(original: &SubTable, cfg: MetricConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Evaluator {
            prep: PreparedOriginal::new(original),
            cfg,
        })
    }

    /// The prepared original statistics.
    pub fn prepared(&self) -> &PreparedOriginal {
        &self.prep
    }

    /// The original protected columns.
    pub fn original(&self) -> &SubTable {
        self.prep.orig()
    }

    /// The active configuration.
    pub fn config(&self) -> &MetricConfig {
        &self.cfg
    }

    /// The intruder's RSRL rank window in absolute positions.
    fn rsrl_window(&self) -> f64 {
        (self.cfg.rsrl_window_fraction * self.prep.n_rows() as f64).max(1.0)
    }

    /// Full assessment without retaining caches.
    ///
    /// # Panics
    /// Panics when `masked` has a different shape than the original — use
    /// [`PreparedOriginal::check_compatible`] on untrusted input.
    pub fn evaluate(&self, masked: &SubTable) -> Assessment {
        self.assess(masked).assessment
    }

    /// Full assessment, retaining the sufficient statistics for
    /// [`Evaluator::reassess_mutation`].
    pub fn assess(&self, masked: &SubTable) -> EvalState {
        debug_assert!(self.prep.check_compatible(masked).is_ok());
        let prep = &self.prep;

        let masked_tables = ContingencyTables::build(masked);
        let dbil_total = dbil_sum(prep, masked);
        let confusion = build_confusion(prep, masked);
        let id_counts = disclosed_counts(prep, masked, self.cfg.interval_fraction);
        let masked_stats = MaskedStats::build(prep, masked);
        let prl_model = PrlModel::fit(prep, masked, self.cfg.prl_em_iters);

        let dbrl_cr = dbrl_credits(prep, masked);
        let prl_cr = prl_credits(&prl_model, prep, masked);
        let rsrl_cr = rsrl_credits(prep, &masked_stats, masked, self.rsrl_window());

        let assessment = Assessment {
            il_parts: IlBreakdown {
                ctbil: prep.tables().distance(&masked_tables),
                dbil: dbil_value(dbil_total, prep.n_rows(), prep.n_attrs()),
                ebil: ebil_from_confusion(prep, &confusion),
            },
            dr_parts: DrBreakdown {
                id: id_value(prep, &id_counts),
                dbrl: credits_value(&dbrl_cr),
                prl: credits_value(&prl_cr),
                rsrl: credits_value(&rsrl_cr),
            },
        };
        EvalState {
            assessment,
            masked_tables,
            dbil_sum: dbil_total,
            confusion,
            id_counts,
            masked_stats,
            prl_model,
            dbrl_credits: dbrl_cr,
            prl_credits: prl_cr,
            rsrl_credits: rsrl_cr,
        }
    }

    /// Re-assess after a single-cell mutation.
    ///
    /// `masked` must already contain the new value at `(row, k)`; `old` is
    /// the value it replaced. IL and interval disclosure are updated
    /// exactly; the linkage measures relink only record `row` (exact for
    /// DBRL, approximate for PRL/RSRL — see module docs).
    pub fn reassess_mutation(
        &self,
        prev: &EvalState,
        masked: &SubTable,
        row: usize,
        k: usize,
        old: Code,
    ) -> EvalState {
        let prep = &self.prep;
        let new = masked.get(row, k);
        let mut state = prev.clone();
        if new == old {
            return state;
        }

        // exact IL updates
        state.masked_tables.apply_mutation(masked, row, k, old);
        state.dbil_sum += prep.cell_distance(k, prep.orig().get(row, k), new)
            - prep.cell_distance(k, prep.orig().get(row, k), old);
        update_confusion(&mut state.confusion, prep, row, k, old, new);

        // exact interval-disclosure update
        let was = cell_disclosed(
            prep,
            k,
            prep.orig().get(row, k),
            old,
            self.cfg.interval_fraction,
        );
        let is = cell_disclosed(
            prep,
            k,
            prep.orig().get(row, k),
            new,
            self.cfg.interval_fraction,
        );
        match (was, is) {
            (true, false) => state.id_counts[k] -= 1,
            (false, true) => state.id_counts[k] += 1,
            _ => {}
        }

        // masked-side rank stats, then record-local relinking
        state.masked_stats.apply_mutation(prep, k, old, new);
        state.dbrl_credits[row] = dbrl_credit(prep, masked, row);
        state.prl_credits[row] = prl_credit(&state.prl_model, prep, masked, row);
        state.rsrl_credits[row] =
            rsrl_credit(prep, &state.masked_stats, masked, row, self.rsrl_window());

        state.assessment = Assessment {
            il_parts: IlBreakdown {
                ctbil: prep.tables().distance(&state.masked_tables),
                dbil: dbil_value(state.dbil_sum, prep.n_rows(), prep.n_attrs()),
                ebil: ebil_from_confusion(prep, &state.confusion),
            },
            dr_parts: DrBreakdown {
                id: id_value(prep, &state.id_counts),
                dbrl: credits_value(&state.dbrl_credits),
                prl: credits_value(&state.prl_credits),
                rsrl: credits_value(&state.rsrl_credits),
            },
        };
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (Evaluator, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(10).with_records(n))
            .protected_subtable();
        let ev = Evaluator::new(&s, MetricConfig::default()).unwrap();
        (ev, s)
    }

    #[test]
    fn identity_extremes() {
        let (ev, s) = setup(120);
        let a = ev.evaluate(&s);
        assert!(a.il() < 1e-9, "identity IL must be 0, got {}", a.il());
        assert!(a.dr() > 50.0, "identity DR must be high, got {}", a.dr());
        assert_eq!(a.dr_parts.id, 100.0);
    }

    #[test]
    fn all_measures_stay_in_range() {
        let (ev, s) = setup(100);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = ev.prepared().cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.5) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let a = ev.evaluate(&m);
        for v in [
            a.il_parts.ctbil,
            a.il_parts.dbil,
            a.il_parts.ebil,
            a.dr_parts.id,
            a.dr_parts.dbrl,
            a.dr_parts.prl,
            a.dr_parts.rsrl,
        ] {
            assert!((0.0..=100.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn randomization_trades_il_for_dr() {
        let (ev, s) = setup(100);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = ev.prepared().cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        let clear = ev.evaluate(&s);
        let noisy = ev.evaluate(&m);
        assert!(noisy.il() > clear.il());
        assert!(noisy.dr() < clear.dr());
    }

    #[test]
    fn score_uses_aggregator() {
        let (ev, s) = setup(80);
        let a = ev.evaluate(&s);
        assert!((a.score(ScoreAggregator::Mean) - (a.il() + a.dr()) / 2.0).abs() < 1e-12);
        assert!((a.score(ScoreAggregator::Max) - a.il().max(a.dr())).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_rejected() {
        let (_, s) = setup(40);
        for cfg in [
            MetricConfig {
                interval_fraction: 0.0,
                ..MetricConfig::default()
            },
            MetricConfig {
                rsrl_window_fraction: 0.0,
                ..MetricConfig::default()
            },
            MetricConfig {
                prl_em_iters: 0,
                ..MetricConfig::default()
            },
        ] {
            assert!(Evaluator::new(&s, cfg).is_err());
        }
    }

    #[test]
    fn incremental_il_and_id_are_exact() {
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = s.clone();
        let mut state = ev.assess(&m);
        for _ in 0..25 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = ev.prepared().cats(k) as u16;
            let old = m.get(row, k);
            m.set(row, k, rng.gen_range(0..c));
            state = ev.reassess_mutation(&state, &m, row, k, old);
        }
        let full = ev.assess(&m);
        let (a, b) = (state.assessment, full.assessment);
        assert!((a.il_parts.ctbil - b.il_parts.ctbil).abs() < 1e-9);
        assert!((a.il_parts.dbil - b.il_parts.dbil).abs() < 1e-9);
        assert!((a.il_parts.ebil - b.il_parts.ebil).abs() < 1e-9);
        assert!((a.dr_parts.id - b.dr_parts.id).abs() < 1e-9);
        assert!(
            (a.dr_parts.dbrl - b.dr_parts.dbrl).abs() < 1e-9,
            "DBRL relink is exact"
        );
    }

    #[test]
    fn incremental_linkage_is_close_to_full() {
        let (ev, s) = setup(90);
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = s.clone();
        let mut state = ev.assess(&m);
        for _ in 0..10 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = ev.prepared().cats(k) as u16;
            let old = m.get(row, k);
            m.set(row, k, rng.gen_range(0..c));
            state = ev.reassess_mutation(&state, &m, row, k, old);
        }
        let full = ev.assess(&m);
        // PRL/RSRL are approximations: allow a small drift after 10 mutations
        assert!(
            (state.assessment.dr() - full.assessment.dr()).abs() < 5.0,
            "incremental DR drifted: {} vs {}",
            state.assessment.dr(),
            full.assessment.dr()
        );
    }

    #[test]
    fn noop_mutation_changes_nothing() {
        let (ev, s) = setup(60);
        let state = ev.assess(&s);
        let same = ev.reassess_mutation(&state, &s, 5, 1, s.get(5, 1));
        assert_eq!(state.assessment, same.assessment);
    }

    #[test]
    fn breakdown_values_average_components() {
        let il = IlBreakdown {
            ctbil: 30.0,
            dbil: 60.0,
            ebil: 90.0,
        };
        assert!((il.value() - 60.0).abs() < 1e-12);
        let dr = DrBreakdown {
            id: 10.0,
            dbrl: 20.0,
            prl: 30.0,
            rsrl: 40.0,
        };
        assert!((dr.value() - 25.0).abs() < 1e-12);
    }
}
