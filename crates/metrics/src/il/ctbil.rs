//! Contingency-table-based information loss (CTBIL).
//!
//! Torra & Domingo-Ferrer (2001): compare the contingency tables of the
//! original and masked files. We build all tables of order 1 and 2 over the
//! protected attributes and report the mean total-variation distance scaled
//! to `[0, 100]` (see [`ContingencyTables::distance`]).

use cdp_dataset::SubTable;

use crate::contingency::ContingencyTables;
use crate::prepared::PreparedOriginal;

/// CTBIL of a masked file against the prepared original.
pub fn ctbil(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    prep.tables().distance(&ContingencyTables::build(masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::Code;

    fn prep_and_sub() -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::German
            .generate(&GeneratorConfig::seeded(3).with_records(120))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_has_zero_ctbil() {
        let (p, s) = prep_and_sub();
        assert_eq!(ctbil(&p, &s), 0.0);
    }

    #[test]
    fn constant_masking_has_large_ctbil() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            for r in 0..m.n_rows() {
                m.set(r, k, 0);
            }
        }
        let v = ctbil(&p, &m);
        assert!(v > 20.0, "constant masking should hurt, got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn monotone_in_number_of_changes() {
        let (p, s) = prep_and_sub();
        let mut few = s.clone();
        let mut many = s.clone();
        for r in 0..5 {
            few.set(r, 0, (few.get(r, 0) + 1) % p.cats(0) as Code);
        }
        for r in 0..60 {
            many.set(r, 0, (many.get(r, 0) + 1) % p.cats(0) as Code);
        }
        assert!(ctbil(&p, &few) > 0.0);
        assert!(ctbil(&p, &many) > ctbil(&p, &few));
    }

    #[test]
    fn permuting_records_keeps_marginals_low() {
        // swapping two records' values only affects pair tables, not singles
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        let (a, b) = (m.get(0, 0), m.get(1, 0));
        m.set(0, 0, b);
        m.set(1, 0, a);
        let v = ctbil(&p, &m);
        assert!(v < 1.0, "tiny swap should barely move CTBIL, got {v}");
    }
}
