//! Distance-based information loss (DBIL).
//!
//! The mean per-cell categorical distance between original and masked
//! values: normalized code distance `|x − x′| / (c − 1)` for ordinal
//! attributes, 0/1 disagreement for nominal ones; scaled to `[0, 100]`.

use cdp_dataset::SubTable;

use crate::prepared::PreparedOriginal;

/// Per-attribute integer distance accumulators — DBIL's sufficient
/// statistic. Ordinal attributes accumulate the summed code distance
/// `Σ |x − x′|`, nominal ones the disagreement count. Keeping the
/// accumulators in integers is what makes the incremental evaluator's DBIL
/// *bit-identical* to a full pass: cell deltas are exact integer
/// arithmetic, and the float conversion happens once, in the same order as
/// [`dbil_sum`].
pub fn dbil_accs(prep: &PreparedOriginal, masked: &SubTable) -> Vec<u64> {
    (0..prep.n_attrs())
        .map(|k| {
            let (o, m) = (prep.orig().column(k), masked.column(k));
            if prep.is_ordinal(k) {
                o.iter()
                    .zip(m.iter())
                    .map(|(&x, &y)| u64::from(x.abs_diff(y)))
                    .sum()
            } else {
                o.iter().zip(m.iter()).filter(|(x, y)| x != y).count() as u64
            }
        })
        .collect()
}

/// Convert per-attribute accumulators (see [`dbil_accs`]) into the
/// distance sum, scaling each ordinal attribute by `1/(c−1)` in attribute
/// order.
pub fn dbil_sum_from_accs(prep: &PreparedOriginal, accs: &[u64]) -> f64 {
    let mut sum = 0.0;
    for (k, &acc) in accs.iter().enumerate() {
        if prep.is_ordinal(k) {
            sum += acc as f64 * prep.inv_span(k);
        } else {
            sum += acc as f64;
        }
    }
    sum
}

/// Sum of per-cell distances (the quantity cached for incremental updates).
pub fn dbil_sum(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    dbil_sum_from_accs(prep, &dbil_accs(prep, masked))
}

/// Convert a distance sum into the `[0, 100]` DBIL value.
pub fn dbil_value(sum: f64, n_rows: usize, n_attrs: usize) -> f64 {
    let cells = (n_rows * n_attrs) as f64;
    if cells == 0.0 {
        0.0
    } else {
        100.0 * sum / cells
    }
}

/// DBIL of a masked file.
pub fn dbil(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    dbil_value(dbil_sum(prep, masked), prep.n_rows(), prep.n_attrs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

    fn prep_and_sub() -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(4).with_records(100))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_is_zero() {
        let (p, s) = prep_and_sub();
        assert_eq!(dbil(&p, &s), 0.0);
    }

    #[test]
    fn single_ordinal_step_is_small() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        // EDUCATION ordinal with 16 categories: one step = 1/15 of a cell
        let v = m.get(0, 0);
        m.set(0, 0, if v == 0 { 1 } else { v - 1 });
        let expected = 100.0 * (1.0 / 15.0) / (100.0 * 3.0);
        assert!((dbil(&p, &m) - expected).abs() < 1e-9);
    }

    #[test]
    fn nominal_changes_cost_full_cell() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        // MARITAL nominal: any change costs 1 cell
        let v = m.get(0, 1);
        m.set(0, 1, if v == 0 { 1 } else { 0 });
        let expected = 100.0 * 1.0 / (100.0 * 3.0);
        assert!((dbil(&p, &m) - expected).abs() < 1e-9);
    }

    #[test]
    fn maximal_distortion_approaches_100() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            // push every ordinal cell to the opposite end, flip nominal cells
            let e = m.get(r, 0);
            m.set(r, 0, if e < 8 { 15 } else { 0 });
            m.set(r, 1, (m.get(r, 1) + 1) % 7);
            m.set(r, 2, (m.get(r, 2) + 1) % 14);
        }
        let v = dbil(&p, &m);
        assert!(v > 50.0);
        assert!(v <= 100.0);
    }

    #[test]
    fn sum_and_value_agree_with_direct() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for r in (0..m.n_rows()).step_by(3) {
            m.set(r, 2, (m.get(r, 2) + 3) % 14);
        }
        let direct = dbil(&p, &m);
        let via_sum = dbil_value(dbil_sum(&p, &m), p.n_rows(), p.n_attrs());
        assert!((direct - via_sum).abs() < 1e-12);
    }
}
