//! Entropy-based information loss (EBIL).
//!
//! Kooiman, Willenborg & Gouweleeuw (1998): model the masking as a noisy
//! channel per attribute. From the empirical confusion matrix
//! `M[orig][masked]` estimate `P(orig | masked)` and charge each published
//! cell the conditional entropy `H(orig | masked = v′)` — the number of
//! bits an analyst is missing about the true value. The total is normalized
//! by the schema's entropy capacity `n · Σ_k log2(c_k)` and scaled to
//! `[0, 100]`.

use cdp_dataset::{Code, SubTable};

use crate::prepared::PreparedOriginal;

/// Per-attribute confusion matrices, flattened `c × c`
/// (`conf[k][orig · c + masked]`).
pub fn build_confusion(prep: &PreparedOriginal, masked: &SubTable) -> Vec<Vec<u32>> {
    (0..prep.n_attrs())
        .map(|k| {
            let c = prep.cats(k);
            let mut m = vec![0u32; c * c];
            for (&o, &v) in prep.orig().column(k).iter().zip(masked.column(k).iter()) {
                m[o as usize * c + v as usize] += 1;
            }
            m
        })
        .collect()
}

/// Update a confusion matrix set after one masked cell of attribute `k`
/// changed from `old` to `new` (record `row` of the original provides the
/// true value).
pub fn update_confusion(
    confusion: &mut [Vec<u32>],
    prep: &PreparedOriginal,
    row: usize,
    k: usize,
    old: Code,
    new: Code,
) {
    if old == new {
        return;
    }
    let c = prep.cats(k);
    let o = prep.orig().get(row, k) as usize;
    confusion[k][o * c + old as usize] -= 1;
    confusion[k][o * c + new as usize] += 1;
}

/// EBIL from confusion matrices.
pub fn ebil_from_confusion(prep: &PreparedOriginal, confusion: &[Vec<u32>]) -> f64 {
    let n = prep.n_rows();
    if n == 0 {
        return 0.0;
    }
    let mut capacity = 0.0;
    let mut bits = 0.0;
    for (k, conf) in confusion.iter().enumerate().take(prep.n_attrs()) {
        let c = prep.cats(k);
        capacity += (c as f64).log2();
        if c <= 1 {
            continue;
        }
        // column sums: how many records were published with value l
        for l in 0..c {
            let col_sum: u32 = (0..c).map(|o| conf[o * c + l]).sum();
            if col_sum == 0 {
                continue;
            }
            let mut h = 0.0;
            for o in 0..c {
                let m = conf[o * c + l];
                if m > 0 {
                    let p = f64::from(m) / f64::from(col_sum);
                    h -= p * p.log2();
                }
            }
            bits += f64::from(col_sum) * h;
        }
    }
    let denom = n as f64 * capacity;
    if denom == 0.0 {
        0.0
    } else {
        100.0 * bits / denom
    }
}

/// EBIL of a masked file.
pub fn ebil(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    ebil_from_confusion(prep, &build_confusion(prep, masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub() -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Flare
            .generate(&GeneratorConfig::seeded(5).with_records(200))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_is_zero() {
        let (p, s) = prep_and_sub();
        assert_eq!(ebil(&p, &s), 0.0);
    }

    #[test]
    fn any_deterministic_bijection_is_zero() {
        // relabeling categories injectively loses no information in the
        // entropy sense: the original is perfectly recoverable
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        let c = p.cats(0) as Code;
        for r in 0..m.n_rows() {
            m.set(r, 0, (m.get(r, 0) + 1) % c);
        }
        assert!(ebil(&p, &m) < 1e-9);
    }

    #[test]
    fn random_masking_loses_information() {
        let (p, s) = prep_and_sub();
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as Code;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        let v = ebil(&p, &m);
        assert!(v > 10.0, "random channel must lose bits, got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn collapsing_to_constant_loses_marginal_entropy() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            for r in 0..m.n_rows() {
                m.set(r, k, 0);
            }
        }
        // publishing a constant leaves H(orig) bits missing per cell
        let v = ebil(&p, &m);
        assert!(v > 15.0, "got {v}");
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let (p, s) = prep_and_sub();
        let mut m = s.clone();
        let mut conf = build_confusion(&p, &m);
        let muts = [(0usize, 0usize, 3u16), (9, 1, 2), (20, 2, 4), (0, 0, 0)];
        for &(row, k, new) in &muts {
            let new = new % p.cats(k) as Code;
            let old = m.get(row, k);
            m.set(row, k, new);
            update_confusion(&mut conf, &p, row, k, old, new);
        }
        assert_eq!(conf, build_confusion(&p, &m));
        let a = ebil_from_confusion(&p, &conf);
        let b = ebil(&p, &m);
        assert!((a - b).abs() < 1e-12);
    }
}
