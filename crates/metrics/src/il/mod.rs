//! Information-loss measures.
//!
//! The paper uses three published measures, normalized here to `[0, 100]`,
//! and averages them into the final IL value:
//!
//! * [`ctbil`] — contingency-table-based IL: total-variation distance
//!   between the original and masked contingency tables of orders 1 and 2;
//! * [`dbil`] — distance-based IL: mean per-cell categorical distance;
//! * [`ebil`] — entropy-based IL: expected bits needed to recover the
//!   original value from the masked one, per Kooiman et al. (1998).

mod ctbil;
mod dbil;
mod ebil;

pub use ctbil::ctbil;
pub use dbil::{dbil, dbil_accs, dbil_sum, dbil_sum_from_accs, dbil_value};
pub use ebil::{build_confusion, ebil, ebil_from_confusion, update_confusion};
