#![warn(missing_docs)]

//! # cdp-metrics
//!
//! Information-loss and disclosure-risk measures for categorical microdata,
//! the two halves of the paper's fitness function.
//!
//! **Information loss** (how much analytic utility the masking destroyed):
//! * [`il::ctbil`] — contingency-table-based IL (Torra & Domingo-Ferrer 2001);
//! * [`il::dbil`] — distance-based IL;
//! * [`il::ebil`] — entropy-based IL (Kooiman et al. 1998).
//!
//! **Disclosure risk** (how much an intruder can re-identify):
//! * [`dr::interval_disclosure`] — rank/interval disclosure (Domingo-Ferrer &
//!   Torra 2001);
//! * [`linkage::dbrl`] — distance-based record linkage;
//! * [`linkage::prl`] — probabilistic record linkage (Fellegi–Sunter with EM);
//! * [`linkage::rsrl`] — rank-swapping-aware record linkage (Nin et al. 2008).
//!
//! All seven measures are normalized to `[0, 100]`. The paper aggregates
//! `IL = (CTBIL + DBIL + EBIL) / 3` and `DR = (ID + DBRL + PRL + RSRL) / 4`,
//! then scores an individual by [`ScoreAggregator::Mean`] (Eq. 1) or
//! [`ScoreAggregator::Max`] (Eq. 2).
//!
//! The [`Evaluator`] caches every original-side statistic (ranks, marginals,
//! contingency tables, Fellegi–Sunter weights) so that evaluating one masked
//! file — the dominant cost the paper reports (99.98% of generation time) —
//! touches the original data only through precomputed tables. On top of
//! that, a *delta-evaluation engine* ([`Evaluator::reassess`] /
//! [`Evaluator::reassess_into`]) updates a cached [`EvalState`] after an
//! arbitrary [`Patch`] of cell changes — a mutation's single cell or a
//! crossover's flattened segment — updating IL and interval disclosure
//! exactly and relinking only the touched records, addressing the paper's
//! future-work item on fitness cost (ablated in `cdp-bench`).
//!
//! The prepared state also persists across processes: the [`snapshot`]
//! module serializes it to a versioned binary file keyed by a content hash
//! of `(original, config)`, so a later session rehydrates the evaluator
//! with a near-memcpy load instead of re-preparing.
//!
//! ```
//! use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
//! use cdp_metrics::{Evaluator, MetricConfig, ScoreAggregator};
//!
//! let ds = DatasetKind::Adult.generate(&GeneratorConfig::seeded(1).with_records(100));
//! let original = ds.protected_subtable();
//! let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
//! // identity masking: no information loss, maximal linkage risk
//! let a = ev.evaluate(&original);
//! assert!(a.il() < 1e-9);
//! assert!(a.dr() > 50.0);
//! assert_eq!(a.score(ScoreAggregator::Max), a.dr());
//! ```

mod contingency;
mod error;
mod evaluator;
mod objective;
mod patch;
mod prepared;
mod score;

pub mod dr;
pub mod il;
pub mod linkage;
pub mod snapshot;

pub use contingency::ContingencyTables;
pub use error::{MetricError, Result};
pub use evaluator::{
    Assessment, DrBreakdown, EvalState, Evaluator, IlBreakdown, LinkageMode, MetricConfig,
};
pub use objective::{
    objective_by_key, Objective, ObjectiveContext, ObjectiveSet, ObjectiveVector, MAX_OBJECTIVES,
};
pub use patch::{Patch, PatchCell};
pub use prepared::{MaskedStats, MovedCategory, PreparedOriginal};
pub use score::ScoreAggregator;
