//! Distance-based record linkage (DBRL).
//!
//! Domingo-Ferrer & Torra (2002): link every masked record to the original
//! record(s) at minimal distance. A masked record is re-identified when its
//! true source is among the nearest originals; ties are credited
//! fractionally (`1/|ties|`), the standard correction when the intruder
//! must pick among equally close candidates.
//!
//! # Two implementations, one result
//!
//! The `*_blocked` functions compute the same credits over the
//! [`PatternIndex`] of *distinct* patterns instead of all `n²` record
//! pairs: each distinct masked pattern is compared against each distinct
//! original pattern (a tie expands by the original pattern's multiplicity),
//! and the per-record pass only computes the record's self-distance —
//! `O(n·a + p_m·p_o·a)` against the scan's `O(n²·a)`, with `p ≤ Π_k c_k`
//! bounded by the category-combination count regardless of row count.
//!
//! **Exactness contract.** Blocked credits are `assert_eq!`-identical to
//! the all-pairs scan (property-tested in `tests/properties.rs`). The
//! argument: per-attribute distances are multiples of `1/(c−1)` (or 0/1),
//! so two a-term distance sums are either exactly equal or separated by
//! far more than [`DIST_EPS`] — "within eps" coincides with "equal", the
//! tie set is scan-order-independent, and grouping duplicates changes
//! nothing. Both paths fold per-attribute distances in the same attribute
//! order, so even the floating-point representative of each sum is the
//! same bit pattern.
//!
//! **Pruning.** The blocked scan abandons an original pattern as soon as a
//! lower bound on its final distance exceeds `best + DIST_EPS`. The bound
//! continues the *same left-to-right fold* with each remaining attribute
//! replaced by its minimum possible cell distance
//! ([`PreparedOriginal::min_cell_dist`]); since IEEE-754 addition of
//! non-negative terms is monotone, the bound never exceeds the true folded
//! distance, so no pattern that could enter the tie set is ever skipped.

use cdp_dataset::{Code, PatternIndex, SubTable};

use crate::linkage::{credits_value, DIST_EPS};
use crate::prepared::PreparedOriginal;

/// Re-identification credit of masked record `i` (0, or `1/|ties|`).
pub fn dbrl_credit(prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let n = prep.n_rows();
    let a = prep.n_attrs();
    let mut best = f64::INFINITY;
    let mut ties = 0usize;
    let mut self_is_best = false;
    for j in 0..n {
        let mut d = 0.0;
        for k in 0..a {
            d += prep.cell_distance(k, masked.get(i, k), prep.orig().get(j, k));
        }
        if d + DIST_EPS < best {
            best = d;
            ties = 1;
            self_is_best = j == i;
        } else if (d - best).abs() <= DIST_EPS {
            ties += 1;
            self_is_best |= j == i;
        }
    }
    if self_is_best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Credits for every masked record (all-pairs reference scan).
pub fn dbrl_credits(prep: &PreparedOriginal, masked: &SubTable) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| dbrl_credit(prep, masked, i))
        .collect()
}

/// Distance of masked pattern `q` to original record `j`, folded in
/// attribute order — the same fold the all-pairs scan performs.
#[inline]
pub(crate) fn pattern_to_row_distance(prep: &PreparedOriginal, q: &[Code], j: usize) -> f64 {
    let mut d = 0.0;
    for (k, &x) in q.iter().enumerate() {
        d += prep.cell_distance(k, x, prep.orig().get(j, k));
    }
    d
}

/// `(best distance, tie mass)` of masked pattern `q` against the distinct
/// original patterns, ties weighted by pattern multiplicity. Patterns are
/// visited in first-occurrence order and pruned with the fold-continuation
/// lower bound described in the module docs.
pub(crate) fn pattern_link(prep: &PreparedOriginal, q: &[Code]) -> (f64, u64) {
    let a = q.len();
    let mut best = f64::INFINITY;
    let mut ties = 0u64;
    for (_, p, mult) in prep.pattern_index().iter_live() {
        let mut d = 0.0;
        let mut pruned = false;
        for k in 0..a {
            d += prep.cell_distance(k, q[k], p[k]);
            // continue the fold with per-attribute minima: a true lower
            // bound on the final distance (monotone f64 addition)
            let mut lb = d;
            for (k2, &x) in q.iter().enumerate().skip(k + 1) {
                lb += prep.min_cell_dist(k2, x);
            }
            if lb > best + DIST_EPS {
                pruned = true;
                break;
            }
        }
        if pruned {
            continue;
        }
        if d + DIST_EPS < best {
            best = d;
            ties = u64::from(mult);
        } else if (d - best).abs() <= DIST_EPS {
            ties += u64::from(mult);
        }
    }
    (best, ties)
}

/// Blocked equivalent of [`dbrl_credit`]: compares record `i`'s pattern
/// against the distinct original patterns. `O(p_o·a)` instead of `O(n·a)`.
pub fn dbrl_credit_blocked(prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let a = prep.n_attrs();
    let mut q = vec![0 as Code; a];
    masked.read_row(i, &mut q);
    let (best, ties) = pattern_link(prep, &q);
    let d_self = pattern_to_row_distance(prep, &q, i);
    if (d_self - best).abs() <= DIST_EPS && ties > 0 {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Blocked equivalent of [`dbrl_credits`], sharing one pattern-vs-pattern
/// link per distinct masked pattern of `index` (which must index `masked`).
pub fn dbrl_credits_blocked(
    prep: &PreparedOriginal,
    masked: &SubTable,
    index: &PatternIndex,
) -> Vec<f64> {
    let a = prep.n_attrs();
    let mut link: Vec<Option<(f64, u64)>> = vec![None; index.n_patterns()];
    for (pid, q, _) in index.iter_live() {
        link[pid as usize] = Some(pattern_link(prep, q));
    }
    let mut q = vec![0 as Code; a];
    (0..prep.n_rows())
        .map(|i| {
            let (best, ties) = link[index.pattern_of(i) as usize].expect("live pattern");
            masked.read_row(i, &mut q);
            let d_self = pattern_to_row_distance(prep, &q, i);
            if (d_self - best).abs() <= DIST_EPS && ties > 0 {
                1.0 / ties as f64
            } else {
                0.0
            }
        })
        .collect()
}

/// Top-`k` variant (extension, the LD-kNN attack): masked record `i` is
/// considered re-identified when its true source ranks among the `k`
/// nearest originals (fewer than `k` records strictly closer).
///
/// **`k = 1` reduction:** `dbrl_topk_disclosed(i, 1)` holds iff
/// `dbrl_credit(i) > 0` — nobody strictly closer than the true source means
/// the source is in the minimal-distance tie set, which is exactly the
/// positive-credit condition (the credit merely divides by the tie count).
/// Pinned by `top1_disclosure_iff_positive_credit` below, so the blocked
/// rewrite cannot silently change top-k semantics.
pub fn dbrl_topk_disclosed(prep: &PreparedOriginal, masked: &SubTable, i: usize, k: usize) -> bool {
    let n = prep.n_rows();
    let a = prep.n_attrs();
    let mut d_self = 0.0;
    for kx in 0..a {
        d_self += prep.cell_distance(kx, masked.get(i, kx), prep.orig().get(i, kx));
    }
    let mut strictly_closer = 0usize;
    for j in 0..n {
        if j == i {
            continue;
        }
        let mut d = 0.0;
        for kx in 0..a {
            d += prep.cell_distance(kx, masked.get(i, kx), prep.orig().get(j, kx));
        }
        if d + DIST_EPS < d_self {
            strictly_closer += 1;
            if strictly_closer >= k {
                return false;
            }
        }
    }
    true
}

/// Share of records disclosed by the top-`k` attack, in `[0, 100]`
/// (all-pairs reference scan).
pub fn dbrl_topk(prep: &PreparedOriginal, masked: &SubTable, k: usize) -> f64 {
    let n = prep.n_rows();
    if n == 0 {
        return 0.0;
    }
    let hits = (0..n)
        .filter(|&i| dbrl_topk_disclosed(prep, masked, i, k.max(1)))
        .count();
    100.0 * hits as f64 / n as f64
}

/// Blocked equivalent of [`dbrl_topk`]: per distinct masked pattern, the
/// multiplicity-weighted distances to the distinct original patterns are
/// sorted once; each record then answers "how many originals are strictly
/// closer than my source" with one binary search.
///
/// The strictly-closer count needs no self-exclusion: original record `i`
/// contributes distance `d_self` itself, and `d_self + DIST_EPS < d_self`
/// is never true — identical to the reference scan's `j != i` skip.
pub fn dbrl_topk_blocked(
    prep: &PreparedOriginal,
    masked: &SubTable,
    index: &PatternIndex,
    k: usize,
) -> f64 {
    let n = prep.n_rows();
    if n == 0 {
        return 0.0;
    }
    let k = k.max(1);
    let a = prep.n_attrs();
    // per masked pattern: distances to original patterns, sorted, with
    // cumulative multiplicity
    let mut table: Vec<Option<(Vec<f64>, Vec<u64>)>> = vec![None; index.n_patterns()];
    for (pid, q, _) in index.iter_live() {
        let mut dists: Vec<(f64, u64)> = prep
            .pattern_index()
            .iter_live()
            .map(|(_, p, mult)| {
                let mut d = 0.0;
                for k2 in 0..a {
                    d += prep.cell_distance(k2, q[k2], p[k2]);
                }
                (d, u64::from(mult))
            })
            .collect();
        dists.sort_by(|x, y| x.0.total_cmp(&y.0));
        let ds: Vec<f64> = dists.iter().map(|&(d, _)| d).collect();
        let mut cum = Vec::with_capacity(ds.len());
        let mut acc = 0u64;
        for &(_, m) in &dists {
            acc += m;
            cum.push(acc);
        }
        table[pid as usize] = Some((ds, cum));
    }
    let mut q = vec![0 as Code; a];
    let hits = (0..n)
        .filter(|&i| {
            let (ds, cum) = table[index.pattern_of(i) as usize]
                .as_ref()
                .expect("live pattern");
            masked.read_row(i, &mut q);
            let d_self = pattern_to_row_distance(prep, &q, i);
            // originals with d + eps < d_self form a sorted prefix
            let cut = ds.partition_point(|&d| d + DIST_EPS < d_self);
            let strictly_closer = if cut == 0 { 0 } else { cum[cut - 1] };
            (strictly_closer as usize) < k
        })
        .count();
    100.0 * hits as f64 / n as f64
}

/// DBRL of a masked file, in `[0, 100]` (all-pairs reference scan).
pub fn dbrl(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    credits_value(&dbrl_credits(prep, masked))
}

/// DBRL of a masked file via the blocked scan (builds a pattern index of
/// the masked file internally; callers with one at hand should prefer
/// [`dbrl_credits_blocked`]).
pub fn dbrl_blocked(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    let index = PatternIndex::build(masked);
    credits_value(&dbrl_credits_blocked(prep, masked, &index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(7).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    fn scrambled(prep: &PreparedOriginal, s: &SubTable, p_redraw: f64, seed: u64) -> SubTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = prep.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(p_redraw) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        m
    }

    #[test]
    fn identity_links_almost_everything() {
        let (p, s) = prep_and_sub(150);
        let v = dbrl(&p, &s);
        // every record is its own nearest neighbour (ties with duplicates)
        assert!(v > 50.0, "got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn heavy_randomization_breaks_links() {
        let (p, s) = prep_and_sub(150);
        let m = scrambled(&p, &s, 1.0, 1);
        let masked = dbrl(&p, &m);
        let clear = dbrl(&p, &s);
        assert!(masked < clear / 2.0, "masked {masked} vs clear {clear}");
    }

    #[test]
    fn duplicate_records_share_credit() {
        // two identical originals: a masked copy of either links with 1/2
        let (_p, s) = prep_and_sub(60);
        let mut dup = s.clone();
        for k in 0..dup.n_attrs() {
            let v = dup.get(0, k);
            dup.set(1, k, v);
        }
        let p2 = PreparedOriginal::new(&dup);
        let credit = dbrl_credit(&p2, &dup, 0);
        assert!(credit <= 0.5 + DIST_EPS);
        assert!(credit > 0.0);
    }

    #[test]
    fn per_record_credits_sum_to_value() {
        let (p, s) = prep_and_sub(80);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.4) {
                m.set(r, 0, rng.gen_range(0..16));
            }
        }
        let credits = dbrl_credits(&p, &m);
        let direct = dbrl(&p, &m);
        assert!((credits_value(&credits) - direct).abs() < 1e-12);
    }

    #[test]
    fn topk_widens_with_k() {
        let (p, s) = prep_and_sub(120);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.6) {
                m.set(r, 0, rng.gen_range(0..16));
            }
        }
        let k1 = dbrl_topk(&p, &m, 1);
        let k5 = dbrl_topk(&p, &m, 5);
        let k50 = dbrl_topk(&p, &m, 50);
        assert!(k1 <= k5 && k5 <= k50, "{k1} <= {k5} <= {k50} violated");
        assert!((0.0..=100.0).contains(&k50));
    }

    #[test]
    fn topk_identity_discloses_everything() {
        let (p, s) = prep_and_sub(80);
        // with k >= 1 every identity record has no one strictly closer
        assert_eq!(dbrl_topk(&p, &s, 1), 100.0);
    }

    #[test]
    fn top1_disclosure_iff_positive_credit() {
        // the k = 1 reduction stated in the dbrl_topk_disclosed docs:
        // disclosed at k = 1  <=>  the source is in the minimal tie set
        // <=>  dbrl_credit > 0
        let (p, s) = prep_and_sub(120);
        for seed in 0..3u64 {
            let m = scrambled(&p, &s, 0.5, 10 + seed);
            for i in 0..m.n_rows() {
                assert_eq!(
                    dbrl_topk_disclosed(&p, &m, i, 1),
                    dbrl_credit(&p, &m, i) > 0.0,
                    "record {i}, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn credit_is_record_local() {
        // changing record 5 must not change record 9's credit
        let (p, s) = prep_and_sub(80);
        let before = dbrl_credit(&p, &s, 9);
        let mut m = s.clone();
        m.set(5, 0, (m.get(5, 0) + 4) % 16);
        let after = dbrl_credit(&p, &m, 9);
        assert_eq!(before, after);
    }

    #[test]
    fn blocked_credits_match_all_pairs_exactly() {
        let (p, s) = prep_and_sub(140);
        for seed in 0..4u64 {
            let m = scrambled(&p, &s, 0.4, 20 + seed);
            let index = PatternIndex::build(&m);
            assert_eq!(dbrl_credits_blocked(&p, &m, &index), dbrl_credits(&p, &m));
        }
    }

    #[test]
    fn blocked_single_credit_matches_all_pairs_exactly() {
        let (p, s) = prep_and_sub(90);
        let m = scrambled(&p, &s, 0.5, 33);
        for i in 0..m.n_rows() {
            assert_eq!(dbrl_credit_blocked(&p, &m, i), dbrl_credit(&p, &m, i));
        }
    }

    #[test]
    fn blocked_topk_matches_all_pairs_exactly() {
        let (p, s) = prep_and_sub(130);
        for seed in 0..3u64 {
            let m = scrambled(&p, &s, 0.4, 40 + seed);
            let index = PatternIndex::build(&m);
            for k in [1, 3, 10, 100] {
                assert_eq!(dbrl_topk_blocked(&p, &m, &index, k), dbrl_topk(&p, &m, k));
            }
        }
    }

    #[test]
    fn blocked_value_matches_scan_value() {
        let (p, s) = prep_and_sub(110);
        let m = scrambled(&p, &s, 0.6, 55);
        assert_eq!(dbrl_blocked(&p, &m), dbrl(&p, &m));
    }
}
