//! Distance-based record linkage (DBRL).
//!
//! Domingo-Ferrer & Torra (2002): link every masked record to the original
//! record(s) at minimal distance. A masked record is re-identified when its
//! true source is among the nearest originals; ties are credited
//! fractionally (`1/|ties|`), the standard correction when the intruder
//! must pick among equally close candidates.

use cdp_dataset::SubTable;

use crate::linkage::credits_value;
use crate::prepared::PreparedOriginal;

/// Re-identification credit of masked record `i` (0, or `1/|ties|`).
pub fn dbrl_credit(prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let n = prep.n_rows();
    let a = prep.n_attrs();
    let mut best = f64::INFINITY;
    let mut ties = 0usize;
    let mut self_is_best = false;
    for j in 0..n {
        let mut d = 0.0;
        for k in 0..a {
            d += prep.cell_distance(k, masked.get(i, k), prep.orig().get(j, k));
        }
        if d + 1e-12 < best {
            best = d;
            ties = 1;
            self_is_best = j == i;
        } else if (d - best).abs() <= 1e-12 {
            ties += 1;
            self_is_best |= j == i;
        }
    }
    if self_is_best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Credits for every masked record.
pub fn dbrl_credits(prep: &PreparedOriginal, masked: &SubTable) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| dbrl_credit(prep, masked, i))
        .collect()
}

/// Top-`k` variant (extension, the LD-kNN attack): masked record `i` is
/// considered re-identified when its true source ranks among the `k`
/// nearest originals (fewer than `k` records strictly closer). Reduces to
/// a 0/1 version of [`dbrl_credit`] at `k = 1` minus tie credit.
pub fn dbrl_topk_disclosed(prep: &PreparedOriginal, masked: &SubTable, i: usize, k: usize) -> bool {
    let n = prep.n_rows();
    let a = prep.n_attrs();
    let mut d_self = 0.0;
    for kx in 0..a {
        d_self += prep.cell_distance(kx, masked.get(i, kx), prep.orig().get(i, kx));
    }
    let mut strictly_closer = 0usize;
    for j in 0..n {
        if j == i {
            continue;
        }
        let mut d = 0.0;
        for kx in 0..a {
            d += prep.cell_distance(kx, masked.get(i, kx), prep.orig().get(j, kx));
        }
        if d + 1e-12 < d_self {
            strictly_closer += 1;
            if strictly_closer >= k {
                return false;
            }
        }
    }
    true
}

/// Share of records disclosed by the top-`k` attack, in `[0, 100]`.
pub fn dbrl_topk(prep: &PreparedOriginal, masked: &SubTable, k: usize) -> f64 {
    let n = prep.n_rows();
    if n == 0 {
        return 0.0;
    }
    let hits = (0..n)
        .filter(|&i| dbrl_topk_disclosed(prep, masked, i, k.max(1)))
        .count();
    100.0 * hits as f64 / n as f64
}

/// DBRL of a masked file, in `[0, 100]`.
pub fn dbrl(prep: &PreparedOriginal, masked: &SubTable) -> f64 {
    credits_value(&dbrl_credits(prep, masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(7).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_links_almost_everything() {
        let (p, s) = prep_and_sub(150);
        let v = dbrl(&p, &s);
        // every record is its own nearest neighbour (ties with duplicates)
        assert!(v > 50.0, "got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn heavy_randomization_breaks_links() {
        let (p, s) = prep_and_sub(150);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        let masked = dbrl(&p, &m);
        let clear = dbrl(&p, &s);
        assert!(masked < clear / 2.0, "masked {masked} vs clear {clear}");
    }

    #[test]
    fn duplicate_records_share_credit() {
        // two identical originals: a masked copy of either links with 1/2
        let (_p, s) = prep_and_sub(60);
        let mut dup = s.clone();
        for k in 0..dup.n_attrs() {
            let v = dup.get(0, k);
            dup.set(1, k, v);
        }
        let p2 = PreparedOriginal::new(&dup);
        let credit = dbrl_credit(&p2, &dup, 0);
        assert!(credit <= 0.5 + 1e-12);
        assert!(credit > 0.0);
    }

    #[test]
    fn per_record_credits_sum_to_value() {
        let (p, s) = prep_and_sub(80);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.4) {
                m.set(r, 0, rng.gen_range(0..16));
            }
        }
        let credits = dbrl_credits(&p, &m);
        let direct = dbrl(&p, &m);
        assert!((credits_value(&credits) - direct).abs() < 1e-12);
    }

    #[test]
    fn topk_widens_with_k() {
        let (p, s) = prep_and_sub(120);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            if rng.gen_bool(0.6) {
                m.set(r, 0, rng.gen_range(0..16));
            }
        }
        let k1 = dbrl_topk(&p, &m, 1);
        let k5 = dbrl_topk(&p, &m, 5);
        let k50 = dbrl_topk(&p, &m, 50);
        assert!(k1 <= k5 && k5 <= k50, "{k1} <= {k5} <= {k50} violated");
        assert!((0.0..=100.0).contains(&k50));
    }

    #[test]
    fn topk_identity_discloses_everything() {
        let (p, s) = prep_and_sub(80);
        // with k >= 1 every identity record has no one strictly closer
        assert_eq!(dbrl_topk(&p, &s, 1), 100.0);
    }

    #[test]
    fn credit_is_record_local() {
        // changing record 5 must not change record 9's credit
        let (p, s) = prep_and_sub(80);
        let before = dbrl_credit(&p, &s, 9);
        let mut m = s.clone();
        m.set(5, 0, (m.get(5, 0) + 4) % 16);
        let after = dbrl_credit(&p, &m, 9);
        assert_eq!(before, after);
    }
}
