//! Record-linkage disclosure-risk measures.
//!
//! All three measures simulate an intruder who holds the original file and
//! tries to link each masked record back to its source:
//!
//! * [`dbrl`] — distance-based record linkage: nearest neighbour under the
//!   mixed ordinal/nominal distance;
//! * [`prl`] — probabilistic record linkage: Fellegi–Sunter agreement
//!   weights with EM-estimated `m`/`u` probabilities;
//! * [`rsrl`] — rank-swapping-aware linkage (Nin, Herranz & Torra 2008):
//!   intersects per-attribute rank-window candidate sets.
//!
//! Each measure exposes per-record credits (`1/|ties|` when the true record
//! is among the best candidates, else 0); the measure value is the mean
//! credit × 100. Per-record granularity is what allows the incremental
//! evaluator to relink *exactly* the records a patch affects:
//!
//! * DBRL credits depend only on the record's own masked values — touched
//!   records relink, nothing else can change;
//! * PRL credits are a function of integer agreement-pattern histograms
//!   ([`PatternCensus`]) — a touched record rebuilds its histogram, the
//!   Fellegi–Sunter model refits from the summed census (identical to a
//!   from-scratch fit), and every credit is recomputed from the histograms
//!   in O(n·2^a);
//! * RSRL credits depend on the masked midranks of the record's own
//!   values — `MaskedStats::apply_patch` reports every midrank that moved,
//!   and the holders of categories whose rank window changed re-credit.
//!
//! A patched evaluation is therefore bit-identical to a full one; there is
//! no frozen-weights or stale-midrank approximation left to bound.

mod distance;
mod probabilistic;
mod rankswap_aware;

pub use distance::{
    dbrl, dbrl_blocked, dbrl_credit, dbrl_credit_blocked, dbrl_credits, dbrl_credits_blocked,
    dbrl_topk, dbrl_topk_blocked, dbrl_topk_disclosed,
};
pub use probabilistic::{prl, prl_credit, prl_credits, PatternCensus, PrlModel};
pub use rankswap_aware::{
    compatible_categories, rsrl, rsrl_credit, rsrl_credit_blocked, rsrl_credits,
    rsrl_credits_blocked,
};

pub(crate) use distance::{pattern_link, pattern_to_row_distance};
pub(crate) use rankswap_aware::{count_candidates, self_compatible};

/// Tie tolerance of every linkage comparison (distances and Fellegi–Sunter
/// weights): two scores within `DIST_EPS` of each other are considered tied,
/// and a candidate must beat the incumbent by more than `DIST_EPS` to
/// dethrone it.
///
/// One shared constant — used identically by the all-pairs scans and the
/// blocked (pattern-index) scans — is part of the bit-exactness contract
/// between the two: with the measures' score lattices (cell distances are
/// multiples of `1/(c−1)` summed over ≤ a attributes), distinct scores
/// differ by far more than `1e-12`, so "tied within eps" coincides with
/// "exactly equal" and the grouped scan order cannot change any credit.
pub(crate) const DIST_EPS: f64 = 1e-12;

/// Mean per-record credit scaled to `[0, 100]`.
pub fn credits_value(credits: &[f64]) -> f64 {
    if credits.is_empty() {
        0.0
    } else {
        100.0 * credits.iter().sum::<f64>() / credits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_value_is_mean_percent() {
        assert_eq!(credits_value(&[1.0, 0.0, 1.0, 0.0]), 50.0);
        assert_eq!(credits_value(&[]), 0.0);
        assert_eq!(credits_value(&[0.5, 0.5]), 50.0);
    }
}
