//! Probabilistic record linkage (PRL), Fellegi–Sunter style.
//!
//! Each original–masked pair is summarized by its per-attribute agreement
//! pattern. The match (`m_k`) and non-match (`u_k`) agreement probabilities
//! are estimated by EM over the pattern counts (patterns are few — `2^a`
//! with `a = 3` protected attributes — so EM is cheap even though the
//! pattern census is O(n²·a)). A pair's match weight is
//! `Σ_k δ_k·log2(m_k/u_k) + (1−δ_k)·log2((1−m_k)/(1−u_k))`; every masked
//! record links to the original(s) with maximal weight, and the measure is
//! the tie-credited share of correct links × 100.
//!
//! Because a pair's weight is a function of its agreement pattern alone,
//! the whole measure is determined by *integer pattern data*: a
//! [`PatternCensus`] keeps one `2^a`-bin histogram per masked record (plus
//! their global sum), and a record's credit needs only its histogram and
//! the weight of its own self-pattern. This is what makes the incremental
//! evaluator exact — patching a record updates its histogram in O(n·a),
//! the model refits from the summed census (identical to a from-scratch
//! fit, since the census is identical), and every credit is recomputed
//! from histograms in O(n·2^a).

use cdp_dataset::SubTable;

use crate::linkage::credits_value;
use crate::prepared::PreparedOriginal;

/// Fitted Fellegi–Sunter weights.
#[derive(Debug)]
pub struct PrlModel {
    /// `log2(m_k / u_k)` per attribute (contribution of an agreement).
    pub agree_weight: Vec<f64>,
    /// `log2((1−m_k)/(1−u_k))` per attribute (contribution of a
    /// disagreement).
    pub disagree_weight: Vec<f64>,
}

impl Clone for PrlModel {
    fn clone(&self) -> Self {
        PrlModel {
            agree_weight: self.agree_weight.clone(),
            disagree_weight: self.disagree_weight.clone(),
        }
    }

    /// Buffer-reusing copy for scratch evaluation states.
    fn clone_from(&mut self, src: &Self) {
        self.agree_weight.clone_from(&src.agree_weight);
        self.disagree_weight.clone_from(&src.disagree_weight);
    }
}

const P_FLOOR: f64 = 1e-6;

impl PrlModel {
    /// Fit `m`/`u` by EM on agreement-pattern counts.
    ///
    /// # Panics
    /// Panics when the file has more than 20 protected attributes (the
    /// pattern census is `2^a`; the paper protects 3).
    pub fn fit(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> Self {
        let a = prep.n_attrs();
        assert!(a <= 20, "pattern census needs 2^a space, a = {a}");
        let n_patterns = 1usize << a;

        // Census of agreement patterns over all pairs.
        let mut counts = vec![0u64; n_patterns];
        for i in 0..prep.n_rows() {
            for j in 0..prep.n_rows() {
                counts[pattern(prep, masked, i, j)] += 1;
            }
        }
        Self::fit_from_counts(prep, &counts, em_iters)
    }

    /// Fit `m`/`u` by EM on a precomputed agreement-pattern census
    /// (`counts[p]` = number of original–masked pairs with pattern `p`,
    /// over all `n²` pairs). Bit-identical to [`PrlModel::fit`] on the
    /// file that produced the census: the census is the EM's sufficient
    /// statistic, and the initialization depends only on the original.
    pub fn fit_from_counts(prep: &PreparedOriginal, counts: &[u64], em_iters: usize) -> Self {
        let a = prep.n_attrs();
        let mut model = PrlModel {
            agree_weight: vec![0.0; a],
            disagree_weight: vec![0.0; a],
        };
        model.refit_from_counts(prep, counts, em_iters);
        model
    }

    /// [`PrlModel::fit_from_counts`] into an existing model, recycling its
    /// weight buffers (the incremental evaluator refits on every patch).
    pub fn refit_from_counts(&mut self, prep: &PreparedOriginal, counts: &[u64], em_iters: usize) {
        let n = prep.n_rows();
        let a = prep.n_attrs();
        let n_patterns = counts.len();
        debug_assert_eq!(n_patterns, 1usize << a);
        let total = (n as f64) * (n as f64);

        // EM initialization: matches are the diagonal fraction; agreement by
        // chance initializes u. Probabilities are clamped away from {0, 1}
        // throughout: a category that always (or never) agrees would
        // otherwise drive a weight to ±∞ and poison `pair_weight`
        // tie-breaking with NaNs.
        let mut pi = 1.0 / n.max(1) as f64;
        let mut m: Vec<f64> = vec![0.9; a];
        let mut u: Vec<f64> = (0..a)
            .map(|k| prep.chance_agreement(k).clamp(P_FLOOR, 1.0 - P_FLOOR))
            .collect();

        for _ in 0..em_iters {
            // E step: responsibility of the match class per pattern
            let mut gamma = vec![0.0f64; n_patterns];
            for (p, g) in gamma.iter_mut().enumerate() {
                let mut pm = pi;
                let mut pu = 1.0 - pi;
                for k in 0..a {
                    if p >> k & 1 == 1 {
                        pm *= m[k];
                        pu *= u[k];
                    } else {
                        pm *= 1.0 - m[k];
                        pu *= 1.0 - u[k];
                    }
                }
                *g = if pm + pu > 0.0 { pm / (pm + pu) } else { 0.0 };
            }
            // M step
            let match_mass: f64 = (0..n_patterns).map(|p| counts[p] as f64 * gamma[p]).sum();
            let non_mass = total - match_mass;
            pi = (match_mass / total).clamp(P_FLOOR, 1.0 - P_FLOOR);
            for k in 0..a {
                let mut agree_match = 0.0;
                let mut agree_non = 0.0;
                for p in 0..n_patterns {
                    if p >> k & 1 == 1 {
                        agree_match += counts[p] as f64 * gamma[p];
                        agree_non += counts[p] as f64 * (1.0 - gamma[p]);
                    }
                }
                if match_mass > 0.0 {
                    m[k] = (agree_match / match_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
                if non_mass > 0.0 {
                    u[k] = (agree_non / non_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
            }
        }

        for k in 0..a {
            self.agree_weight[k] = (m[k] / u[k]).log2();
            self.disagree_weight[k] = ((1.0 - m[k]) / (1.0 - u[k])).log2();
        }
    }

    /// Match weight of pair `(masked i, original j)`.
    #[inline]
    pub fn pair_weight(
        &self,
        prep: &PreparedOriginal,
        masked: &SubTable,
        i: usize,
        j: usize,
    ) -> f64 {
        let mut w = 0.0;
        for k in 0..prep.n_attrs() {
            if masked.get(i, k) == prep.orig().get(j, k) {
                w += self.agree_weight[k];
            } else {
                w += self.disagree_weight[k];
            }
        }
        w
    }

    /// Total match weight of every agreement pattern, summed in attribute
    /// order so `weights[p]` is bit-identical to [`PrlModel::pair_weight`]
    /// of any pair exhibiting pattern `p`.
    pub fn pattern_weights(&self, n_attrs: usize) -> Vec<f64> {
        (0..1usize << n_attrs)
            .map(|p| {
                let mut w = 0.0;
                for k in 0..n_attrs {
                    if p >> k & 1 == 1 {
                        w += self.agree_weight[k];
                    } else {
                        w += self.disagree_weight[k];
                    }
                }
                w
            })
            .collect()
    }
}

#[inline]
fn pattern(prep: &PreparedOriginal, masked: &SubTable, i: usize, j: usize) -> usize {
    let mut p = 0usize;
    for k in 0..prep.n_attrs() {
        if masked.get(i, k) == prep.orig().get(j, k) {
            p |= 1 << k;
        }
    }
    p
}

/// The integer sufficient statistic of PRL: one `2^a`-bin agreement-pattern
/// histogram per masked record (against every original record), their
/// global sum (the EM census), and each record's cached self-pattern.
///
/// All counts are integers, so incrementally maintained instances are
/// *identical* — not merely close — to freshly built ones, which is what
/// lets the delta evaluator reproduce a full assessment bit-for-bit.
#[derive(Debug, PartialEq)]
pub struct PatternCensus {
    n_patterns: usize,
    /// `hist[i * n_patterns + p]` = #originals whose pattern against masked
    /// record `i` is `p`.
    hist: Vec<u32>,
    /// Column sums of `hist`: the EM census over all `n²` pairs.
    census: Vec<u64>,
    /// `pattern(i, i)` per masked record.
    self_pattern: Vec<u32>,
}

impl Clone for PatternCensus {
    fn clone(&self) -> Self {
        PatternCensus {
            n_patterns: self.n_patterns,
            hist: self.hist.clone(),
            census: self.census.clone(),
            self_pattern: self.self_pattern.clone(),
        }
    }

    /// Buffer-reusing copy for scratch evaluation states.
    fn clone_from(&mut self, src: &Self) {
        self.n_patterns = src.n_patterns;
        self.hist.clone_from(&src.hist);
        self.census.clone_from(&src.census);
        self.self_pattern.clone_from(&src.self_pattern);
    }
}

impl PatternCensus {
    /// Build the histograms of every masked record — O(n²·a), the same
    /// cost the plain EM census already paid.
    ///
    /// # Panics
    /// Panics when the file has more than 20 protected attributes.
    pub fn build(prep: &PreparedOriginal, masked: &SubTable) -> Self {
        let n = prep.n_rows();
        let a = prep.n_attrs();
        assert!(a <= 20, "pattern census needs 2^a space, a = {a}");
        let n_patterns = 1usize << a;
        let mut out = PatternCensus {
            n_patterns,
            hist: vec![0u32; n * n_patterns],
            census: vec![0u64; n_patterns],
            self_pattern: vec![0u32; n],
        };
        for i in 0..n {
            let row = &mut out.hist[i * n_patterns..(i + 1) * n_patterns];
            for j in 0..n {
                row[pattern(prep, masked, i, j)] += 1;
            }
            for (p, &c) in row.iter().enumerate() {
                out.census[p] += u64::from(c);
            }
            out.self_pattern[i] = pattern(prep, masked, i, i) as u32;
        }
        out
    }

    /// Re-derive masked record `i`'s histogram after its values changed —
    /// O(n·a). Only the touched record's histogram moves: patterns compare
    /// one masked record against the (immutable) originals.
    pub fn rebuild_row(&mut self, prep: &PreparedOriginal, masked: &SubTable, i: usize) {
        let row = &mut self.hist[i * self.n_patterns..(i + 1) * self.n_patterns];
        for (p, c) in row.iter_mut().enumerate() {
            self.census[p] -= u64::from(*c);
            *c = 0;
        }
        for j in 0..prep.n_rows() {
            row[pattern(prep, masked, i, j)] += 1;
        }
        for (p, &c) in row.iter().enumerate() {
            self.census[p] += u64::from(c);
        }
        self.self_pattern[i] = pattern(prep, masked, i, i) as u32;
    }

    /// The global pattern census (the EM sufficient statistic).
    pub fn counts(&self) -> &[u64] {
        &self.census
    }

    /// Re-identification credit of masked record `i` given the per-pattern
    /// weights of a fitted model (see [`PrlModel::pattern_weights`]).
    pub fn credit(&self, weights: &[f64], i: usize) -> f64 {
        let row = &self.hist[i * self.n_patterns..(i + 1) * self.n_patterns];
        let mut best = f64::NEG_INFINITY;
        let mut ties = 0u64;
        for (p, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let w = weights[p];
            if w > best + 1e-12 {
                best = w;
                ties = u64::from(c);
            } else if (w - best).abs() <= 1e-12 {
                ties += u64::from(c);
            }
        }
        let self_w = weights[self.self_pattern[i] as usize];
        if (self_w - best).abs() <= 1e-12 && ties > 0 {
            1.0 / ties as f64
        } else {
            0.0
        }
    }

    /// Credits of every masked record, written into `out` (recycled).
    pub fn credits_into(&self, model: &PrlModel, out: &mut Vec<f64>) {
        let a = model.agree_weight.len();
        let weights = model.pattern_weights(a);
        out.clear();
        out.extend((0..self.self_pattern.len()).map(|i| self.credit(&weights, i)));
    }

    /// Credits of every masked record.
    pub fn credits(&self, model: &PrlModel) -> Vec<f64> {
        let mut out = Vec::new();
        self.credits_into(model, &mut out);
        out
    }
}

/// Re-identification credit of masked record `i` under a fitted model.
pub fn prl_credit(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let n = prep.n_rows();
    let mut best = f64::NEG_INFINITY;
    let mut ties = 0usize;
    let mut self_is_best = false;
    for j in 0..n {
        let w = model.pair_weight(prep, masked, i, j);
        if w > best + 1e-12 {
            best = w;
            ties = 1;
            self_is_best = j == i;
        } else if (w - best).abs() <= 1e-12 {
            ties += 1;
            self_is_best |= j == i;
        }
    }
    if self_is_best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Credits for every masked record.
pub fn prl_credits(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| prl_credit(model, prep, masked, i))
        .collect()
}

/// PRL of a masked file (fits the model, then links), in `[0, 100]`.
pub fn prl(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> f64 {
    let model = PrlModel::fit(prep, masked, em_iters);
    credits_value(&prl_credits(&model, prep, masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::{Attribute, Code, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::German
            .generate(&GeneratorConfig::seeded(8).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_yields_positive_agree_weights() {
        let (p, s) = prep_and_sub(100);
        let model = PrlModel::fit(&p, &s, 15);
        for k in 0..p.n_attrs() {
            assert!(
                model.agree_weight[k] > 0.0,
                "agreement should support a match, attr {k}"
            );
            assert!(
                model.disagree_weight[k] < 0.0,
                "disagreement should oppose a match, attr {k}"
            );
        }
    }

    #[test]
    fn identity_links_most_records() {
        let (p, s) = prep_and_sub(100);
        let v = prl(&p, &s, 15);
        assert!(v > 30.0, "got {v}"); // German has few categories -> many ties
        assert!(v <= 100.0);
    }

    #[test]
    fn randomization_reduces_prl() {
        let (p, s) = prep_and_sub(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        assert!(prl(&p, &m, 15) < prl(&p, &s, 15));
    }

    #[test]
    fn credits_match_value() {
        let (p, s) = prep_and_sub(70);
        let model = PrlModel::fit(&p, &s, 10);
        let credits = prl_credits(&model, &p, &s);
        assert!((credits_value(&credits) - prl(&p, &s, 10)).abs() < 1e-9);
    }

    #[test]
    fn pattern_packs_agreements() {
        let (p, s) = prep_and_sub(30);
        // self-pairs agree everywhere: pattern = 2^a - 1
        for i in 0..10 {
            assert_eq!(pattern(&p, &s, i, i), (1 << p.n_attrs()) - 1);
        }
    }

    #[test]
    fn em_is_stable_for_degenerate_identity() {
        // tiny file of identical rows: EM must not produce NaNs
        let (p, s) = prep_and_sub(12);
        let model = PrlModel::fit(&p, &s, 50);
        for k in 0..p.n_attrs() {
            assert!(model.agree_weight[k].is_finite());
            assert!(model.disagree_weight[k].is_finite());
        }
    }

    #[test]
    fn em_weights_stay_finite_for_never_and_always_agreeing_attrs() {
        // degenerate file: attr 0 agrees on every pair (u -> 1 without the
        // clamp, driving the disagreement weight to -inf), attr 1 agrees on
        // no pair (m, u -> 0 without the clamp, driving the agreement
        // weight to ±inf). The probability clamps must keep every weight —
        // and hence every pair weight the linker compares — finite.
        let schema = Arc::new(
            Schema::new(vec![Attribute::ordinal("C", 2), Attribute::ordinal("D", 4)]).unwrap(),
        );
        let n = 8usize;
        let orig = SubTable::new(
            Arc::clone(&schema),
            vec![0, 1],
            vec![vec![0; n], (0..n as Code).map(|v| v % 2).collect()],
        )
        .unwrap();
        // masked: attr 0 identical everywhere; attr 1 shifted into codes the
        // original never uses
        let masked = SubTable::new(
            schema,
            vec![0, 1],
            vec![vec![0; n], (0..n as Code).map(|v| 2 + v % 2).collect()],
        )
        .unwrap();
        let p = PreparedOriginal::new(&orig);
        let model = PrlModel::fit(&p, &masked, 50);
        for k in 0..p.n_attrs() {
            assert!(
                model.agree_weight[k].is_finite(),
                "agree weight {k} = {}",
                model.agree_weight[k]
            );
            assert!(
                model.disagree_weight[k].is_finite(),
                "disagree weight {k} = {}",
                model.disagree_weight[k]
            );
        }
        for i in 0..n {
            for j in 0..n {
                assert!(model.pair_weight(&p, &masked, i, j).is_finite());
            }
        }
        // the census-driven credits are finite probabilities, too
        let census = PatternCensus::build(&p, &masked);
        for c in census.credits(&model) {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn fit_from_counts_matches_direct_fit_bit_for_bit() {
        let (p, s) = prep_and_sub(60);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.4) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let direct = PrlModel::fit(&p, &m, 15);
        let census = PatternCensus::build(&p, &m);
        let via_census = PrlModel::fit_from_counts(&p, census.counts(), 15);
        assert_eq!(direct.agree_weight, via_census.agree_weight);
        assert_eq!(direct.disagree_weight, via_census.disagree_weight);
    }

    #[test]
    fn rebuilt_rows_match_a_fresh_census_exactly() {
        let (p, s) = prep_and_sub(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.clone();
        let mut census = PatternCensus::build(&p, &m);
        for _ in 0..20 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = p.cats(k) as u16;
            m.set(row, k, rng.gen_range(0..c));
            census.rebuild_row(&p, &m, row);
        }
        assert_eq!(census, PatternCensus::build(&p, &m));
    }

    #[test]
    fn census_credits_match_the_pairwise_linker() {
        let (p, s) = prep_and_sub(60);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.3) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let model = PrlModel::fit(&p, &m, 15);
        let census = PatternCensus::build(&p, &m);
        assert_eq!(census.credits(&model), prl_credits(&model, &p, &m));
    }
}
