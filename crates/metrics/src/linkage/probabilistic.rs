//! Probabilistic record linkage (PRL), Fellegi–Sunter style.
//!
//! Each original–masked pair is summarized by its per-attribute agreement
//! pattern. The match (`m_k`) and non-match (`u_k`) agreement probabilities
//! are estimated by EM over the pattern counts (patterns are few — `2^a`
//! with `a = 3` protected attributes — so EM is cheap even though the
//! pattern census is O(n²·a)). A pair's match weight is
//! `Σ_k δ_k·log2(m_k/u_k) + (1−δ_k)·log2((1−m_k)/(1−u_k))`; every masked
//! record links to the original(s) with maximal weight, and the measure is
//! the tie-credited share of correct links × 100.
//!
//! Because a pair's weight is a function of its agreement pattern alone,
//! the whole measure is determined by *integer pattern data*: a
//! [`PatternCensus`] keeps one `2^a`-bin histogram per **distinct masked
//! pattern** (the agreement pattern of a pair depends only on the two
//! records' code tuples, so duplicate masked rows share a histogram), plus
//! the multiplicity-weighted global sum, and a record's credit needs only
//! its pattern's histogram and the weight of its own self-pattern. The
//! histograms themselves are computed from the *original* side's
//! [`PatternIndex`] — `O(p_m·p_o·a)` for the whole census instead of the
//! old `O(n²·a)` pair scan — and every count is an integer identical to
//! the pair-scan count, which is what makes the incremental evaluator
//! exact: moving a row between masked patterns shifts the census by the
//! difference of two cached histograms, the model refits from the summed
//! census (identical to a from-scratch fit), and every credit is
//! recomputed from histograms in O(n·2^a).

use cdp_dataset::{PatternId, PatternIndex, SubTable};

use crate::linkage::{credits_value, DIST_EPS};
use crate::prepared::PreparedOriginal;

/// Fitted Fellegi–Sunter weights.
#[derive(Debug)]
pub struct PrlModel {
    /// `log2(m_k / u_k)` per attribute (contribution of an agreement).
    pub agree_weight: Vec<f64>,
    /// `log2((1−m_k)/(1−u_k))` per attribute (contribution of a
    /// disagreement).
    pub disagree_weight: Vec<f64>,
}

impl Clone for PrlModel {
    fn clone(&self) -> Self {
        PrlModel {
            agree_weight: self.agree_weight.clone(),
            disagree_weight: self.disagree_weight.clone(),
        }
    }

    /// Buffer-reusing copy for scratch evaluation states.
    fn clone_from(&mut self, src: &Self) {
        self.agree_weight.clone_from(&src.agree_weight);
        self.disagree_weight.clone_from(&src.disagree_weight);
    }
}

const P_FLOOR: f64 = 1e-6;

impl PrlModel {
    /// Fit `m`/`u` by EM on agreement-pattern counts.
    ///
    /// # Panics
    /// Panics when the file has more than 20 protected attributes (the
    /// pattern census is `2^a`; the paper protects 3).
    pub fn fit(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> Self {
        let a = prep.n_attrs();
        assert!(a <= 20, "pattern census needs 2^a space, a = {a}");
        let n_patterns = 1usize << a;

        // Census of agreement patterns over all pairs.
        let mut counts = vec![0u64; n_patterns];
        for i in 0..prep.n_rows() {
            for j in 0..prep.n_rows() {
                counts[pattern(prep, masked, i, j)] += 1;
            }
        }
        Self::fit_from_counts(prep, &counts, em_iters)
    }

    /// Fit `m`/`u` by EM on a precomputed agreement-pattern census
    /// (`counts[p]` = number of original–masked pairs with pattern `p`,
    /// over all `n²` pairs). Bit-identical to [`PrlModel::fit`] on the
    /// file that produced the census: the census is the EM's sufficient
    /// statistic, and the initialization depends only on the original.
    pub fn fit_from_counts(prep: &PreparedOriginal, counts: &[u64], em_iters: usize) -> Self {
        let a = prep.n_attrs();
        let mut model = PrlModel {
            agree_weight: vec![0.0; a],
            disagree_weight: vec![0.0; a],
        };
        model.refit_from_counts(prep, counts, em_iters);
        model
    }

    /// [`PrlModel::fit_from_counts`] into an existing model, recycling its
    /// weight buffers (the incremental evaluator refits on every patch).
    pub fn refit_from_counts(&mut self, prep: &PreparedOriginal, counts: &[u64], em_iters: usize) {
        let n = prep.n_rows();
        let a = prep.n_attrs();
        let n_patterns = counts.len();
        debug_assert_eq!(n_patterns, 1usize << a);
        let total = (n as f64) * (n as f64);

        // EM initialization: matches are the diagonal fraction; agreement by
        // chance initializes u. Probabilities are clamped away from {0, 1}
        // throughout: a category that always (or never) agrees would
        // otherwise drive a weight to ±∞ and poison `pair_weight`
        // tie-breaking with NaNs.
        let mut pi = 1.0 / n.max(1) as f64;
        let mut m: Vec<f64> = vec![0.9; a];
        let mut u: Vec<f64> = (0..a)
            .map(|k| prep.chance_agreement(k).clamp(P_FLOOR, 1.0 - P_FLOOR))
            .collect();

        for _ in 0..em_iters {
            // E step: responsibility of the match class per pattern
            let mut gamma = vec![0.0f64; n_patterns];
            for (p, g) in gamma.iter_mut().enumerate() {
                let mut pm = pi;
                let mut pu = 1.0 - pi;
                for k in 0..a {
                    if p >> k & 1 == 1 {
                        pm *= m[k];
                        pu *= u[k];
                    } else {
                        pm *= 1.0 - m[k];
                        pu *= 1.0 - u[k];
                    }
                }
                *g = if pm + pu > 0.0 { pm / (pm + pu) } else { 0.0 };
            }
            // M step
            let match_mass: f64 = (0..n_patterns).map(|p| counts[p] as f64 * gamma[p]).sum();
            let non_mass = total - match_mass;
            pi = (match_mass / total).clamp(P_FLOOR, 1.0 - P_FLOOR);
            for k in 0..a {
                let mut agree_match = 0.0;
                let mut agree_non = 0.0;
                for p in 0..n_patterns {
                    if p >> k & 1 == 1 {
                        agree_match += counts[p] as f64 * gamma[p];
                        agree_non += counts[p] as f64 * (1.0 - gamma[p]);
                    }
                }
                if match_mass > 0.0 {
                    m[k] = (agree_match / match_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
                if non_mass > 0.0 {
                    u[k] = (agree_non / non_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
            }
        }

        for k in 0..a {
            self.agree_weight[k] = (m[k] / u[k]).log2();
            self.disagree_weight[k] = ((1.0 - m[k]) / (1.0 - u[k])).log2();
        }
    }

    /// Match weight of pair `(masked i, original j)`.
    #[inline]
    pub fn pair_weight(
        &self,
        prep: &PreparedOriginal,
        masked: &SubTable,
        i: usize,
        j: usize,
    ) -> f64 {
        let mut w = 0.0;
        for k in 0..prep.n_attrs() {
            if masked.get(i, k) == prep.orig().get(j, k) {
                w += self.agree_weight[k];
            } else {
                w += self.disagree_weight[k];
            }
        }
        w
    }

    /// Total match weight of every agreement pattern, summed in attribute
    /// order so `weights[p]` is bit-identical to [`PrlModel::pair_weight`]
    /// of any pair exhibiting pattern `p`.
    pub fn pattern_weights(&self, n_attrs: usize) -> Vec<f64> {
        (0..1usize << n_attrs)
            .map(|p| {
                let mut w = 0.0;
                for k in 0..n_attrs {
                    if p >> k & 1 == 1 {
                        w += self.agree_weight[k];
                    } else {
                        w += self.disagree_weight[k];
                    }
                }
                w
            })
            .collect()
    }
}

#[inline]
fn pattern(prep: &PreparedOriginal, masked: &SubTable, i: usize, j: usize) -> usize {
    let mut p = 0usize;
    for k in 0..prep.n_attrs() {
        if masked.get(i, k) == prep.orig().get(j, k) {
            p |= 1 << k;
        }
    }
    p
}

/// The integer sufficient statistic of PRL: one `2^a`-bin agreement-pattern
/// histogram per **distinct masked pattern**, the multiplicity-weighted sum
/// over all records (the EM census over the `n²` pairs), and each record's
/// cached self-pattern.
///
/// Histogram rows are keyed by the masked [`PatternIndex`]'s pattern ids.
/// Ids never recycle, so a histogram, once computed (one `O(p_o·a)` sweep
/// of the original's pattern index), stays valid across arbitrary row
/// moves — including a pattern emptying out and later reviving.
///
/// All counts are integers, so incrementally maintained instances are
/// *identical* — not merely close — to freshly built ones, which is what
/// lets the delta evaluator reproduce a full assessment bit-for-bit.
#[derive(Debug)]
pub struct PatternCensus {
    n_patterns: usize,
    /// `hist[pid * n_patterns + p]` = #original records whose agreement
    /// pattern against masked pattern `pid` is `p`. Grown lazily as the
    /// masked index assigns ids.
    hist: Vec<u32>,
    /// Multiplicity-weighted sums of `hist`: the EM census over all `n²`
    /// pairs.
    census: Vec<u64>,
    /// `pattern(i, i)` per masked record.
    self_pattern: Vec<u32>,
}

impl Clone for PatternCensus {
    fn clone(&self) -> Self {
        PatternCensus {
            n_patterns: self.n_patterns,
            hist: self.hist.clone(),
            census: self.census.clone(),
            self_pattern: self.self_pattern.clone(),
        }
    }

    /// Buffer-reusing copy for scratch evaluation states.
    fn clone_from(&mut self, src: &Self) {
        self.n_patterns = src.n_patterns;
        self.hist.clone_from(&src.hist);
        self.census.clone_from(&src.census);
        self.self_pattern.clone_from(&src.self_pattern);
    }
}

impl PatternCensus {
    /// Build the histograms of every distinct masked pattern of `index`
    /// (which must index `masked`) against the original's pattern index —
    /// `O(p_m·p_o·a + n·a)`, where the old pair scan was `O(n²·a)`.
    ///
    /// # Panics
    /// Panics when the file has more than 20 protected attributes.
    pub fn build(prep: &PreparedOriginal, masked: &SubTable, index: &PatternIndex) -> Self {
        let n = prep.n_rows();
        let a = prep.n_attrs();
        assert!(a <= 20, "pattern census needs 2^a space, a = {a}");
        let n_patterns = 1usize << a;
        let mut out = PatternCensus {
            n_patterns,
            hist: Vec::new(),
            census: vec![0u64; n_patterns],
            self_pattern: vec![0u32; n],
        };
        out.ensure_patterns(prep, index);
        for (pid, _, mult) in index.iter_live() {
            let base = pid as usize * n_patterns;
            for p in 0..n_patterns {
                out.census[p] += u64::from(mult) * u64::from(out.hist[base + p]);
            }
        }
        for i in 0..n {
            out.self_pattern[i] = pattern(prep, masked, i, i) as u32;
        }
        out
    }

    /// Compute the histogram of every masked pattern id not yet covered
    /// (ids are assigned sequentially and never recycled, so one length
    /// check suffices). `O(p_o·a)` per new pattern, paid once ever.
    fn ensure_patterns(&mut self, prep: &PreparedOriginal, index: &PatternIndex) {
        let np = self.n_patterns;
        let have = self.hist.len() / np;
        let want = index.n_patterns();
        if have >= want {
            return;
        }
        self.hist.resize(want * np, 0);
        for pid in have..want {
            let q = index.codes_of(pid as PatternId);
            let base = pid * np;
            for (_, pcodes, mult) in prep.pattern_index().iter_live() {
                let mut pat = 0usize;
                for (k, &x) in q.iter().enumerate() {
                    if x == pcodes[k] {
                        pat |= 1 << k;
                    }
                }
                self.hist[base + pat] += mult;
            }
        }
    }

    /// Account for one row having moved from masked pattern `old_pid` to
    /// `new_pid` (as reported by [`PatternIndex::move_row`], which must run
    /// first): the census shifts by the difference of the two histograms,
    /// and the row's self-pattern is recomputed. `O(2^a + p_o·a)` worst
    /// case (the histogram of a never-seen pattern), `O(2^a + a)` steady
    /// state.
    pub fn row_moved(
        &mut self,
        prep: &PreparedOriginal,
        masked: &SubTable,
        index: &PatternIndex,
        row: usize,
        old_pid: PatternId,
        new_pid: PatternId,
    ) {
        if old_pid != new_pid {
            self.ensure_patterns(prep, index);
            let np = self.n_patterns;
            let ob = old_pid as usize * np;
            let nb = new_pid as usize * np;
            for p in 0..np {
                self.census[p] -= u64::from(self.hist[ob + p]);
                self.census[p] += u64::from(self.hist[nb + p]);
            }
        }
        self.self_pattern[row] = pattern(prep, masked, row, row) as u32;
    }

    /// The global pattern census (the EM sufficient statistic).
    pub fn counts(&self) -> &[u64] {
        &self.census
    }

    /// Re-identification credit of the masked records carrying pattern
    /// `pid`, given record `i`'s self-pattern and the per-pattern weights
    /// of a fitted model (see [`PrlModel::pattern_weights`]).
    pub fn credit(&self, weights: &[f64], pid: PatternId, i: usize) -> f64 {
        let row = &self.hist[pid as usize * self.n_patterns..][..self.n_patterns];
        let mut best = f64::NEG_INFINITY;
        let mut ties = 0u64;
        for (p, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let w = weights[p];
            if w > best + DIST_EPS {
                best = w;
                ties = u64::from(c);
            } else if (w - best).abs() <= DIST_EPS {
                ties += u64::from(c);
            }
        }
        let self_w = weights[self.self_pattern[i] as usize];
        if (self_w - best).abs() <= DIST_EPS && ties > 0 {
            1.0 / ties as f64
        } else {
            0.0
        }
    }

    /// Credits of every masked record, written into `out` (recycled).
    pub fn credits_into(&self, model: &PrlModel, index: &PatternIndex, out: &mut Vec<f64>) {
        let a = model.agree_weight.len();
        let weights = model.pattern_weights(a);
        out.clear();
        out.extend(
            (0..self.self_pattern.len()).map(|i| self.credit(&weights, index.pattern_of(i), i)),
        );
    }

    /// Credits of every masked record.
    pub fn credits(&self, model: &PrlModel, index: &PatternIndex) -> Vec<f64> {
        let mut out = Vec::new();
        self.credits_into(model, index, &mut out);
        out
    }
}

/// Re-identification credit of masked record `i` under a fitted model.
pub fn prl_credit(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let n = prep.n_rows();
    let mut best = f64::NEG_INFINITY;
    let mut ties = 0usize;
    let mut self_is_best = false;
    for j in 0..n {
        let w = model.pair_weight(prep, masked, i, j);
        if w > best + DIST_EPS {
            best = w;
            ties = 1;
            self_is_best = j == i;
        } else if (w - best).abs() <= DIST_EPS {
            ties += 1;
            self_is_best |= j == i;
        }
    }
    if self_is_best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Credits for every masked record.
pub fn prl_credits(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| prl_credit(model, prep, masked, i))
        .collect()
}

/// PRL of a masked file (fits the model, then links), in `[0, 100]`.
pub fn prl(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> f64 {
    let model = PrlModel::fit(prep, masked, em_iters);
    credits_value(&prl_credits(&model, prep, masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::{Attribute, Code, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::German
            .generate(&GeneratorConfig::seeded(8).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_yields_positive_agree_weights() {
        let (p, s) = prep_and_sub(100);
        let model = PrlModel::fit(&p, &s, 15);
        for k in 0..p.n_attrs() {
            assert!(
                model.agree_weight[k] > 0.0,
                "agreement should support a match, attr {k}"
            );
            assert!(
                model.disagree_weight[k] < 0.0,
                "disagreement should oppose a match, attr {k}"
            );
        }
    }

    #[test]
    fn identity_links_most_records() {
        let (p, s) = prep_and_sub(100);
        let v = prl(&p, &s, 15);
        assert!(v > 30.0, "got {v}"); // German has few categories -> many ties
        assert!(v <= 100.0);
    }

    #[test]
    fn randomization_reduces_prl() {
        let (p, s) = prep_and_sub(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        assert!(prl(&p, &m, 15) < prl(&p, &s, 15));
    }

    #[test]
    fn credits_match_value() {
        let (p, s) = prep_and_sub(70);
        let model = PrlModel::fit(&p, &s, 10);
        let credits = prl_credits(&model, &p, &s);
        assert!((credits_value(&credits) - prl(&p, &s, 10)).abs() < 1e-9);
    }

    #[test]
    fn pattern_packs_agreements() {
        let (p, s) = prep_and_sub(30);
        // self-pairs agree everywhere: pattern = 2^a - 1
        for i in 0..10 {
            assert_eq!(pattern(&p, &s, i, i), (1 << p.n_attrs()) - 1);
        }
    }

    #[test]
    fn em_is_stable_for_degenerate_identity() {
        // tiny file of identical rows: EM must not produce NaNs
        let (p, s) = prep_and_sub(12);
        let model = PrlModel::fit(&p, &s, 50);
        for k in 0..p.n_attrs() {
            assert!(model.agree_weight[k].is_finite());
            assert!(model.disagree_weight[k].is_finite());
        }
    }

    #[test]
    fn em_weights_stay_finite_for_never_and_always_agreeing_attrs() {
        // degenerate file: attr 0 agrees on every pair (u -> 1 without the
        // clamp, driving the disagreement weight to -inf), attr 1 agrees on
        // no pair (m, u -> 0 without the clamp, driving the agreement
        // weight to ±inf). The probability clamps must keep every weight —
        // and hence every pair weight the linker compares — finite.
        let schema = Arc::new(
            Schema::new(vec![Attribute::ordinal("C", 2), Attribute::ordinal("D", 4)]).unwrap(),
        );
        let n = 8usize;
        let orig = SubTable::new(
            Arc::clone(&schema),
            vec![0, 1],
            vec![vec![0; n], (0..n as Code).map(|v| v % 2).collect()],
        )
        .unwrap();
        // masked: attr 0 identical everywhere; attr 1 shifted into codes the
        // original never uses
        let masked = SubTable::new(
            schema,
            vec![0, 1],
            vec![vec![0; n], (0..n as Code).map(|v| 2 + v % 2).collect()],
        )
        .unwrap();
        let p = PreparedOriginal::new(&orig);
        let model = PrlModel::fit(&p, &masked, 50);
        for k in 0..p.n_attrs() {
            assert!(
                model.agree_weight[k].is_finite(),
                "agree weight {k} = {}",
                model.agree_weight[k]
            );
            assert!(
                model.disagree_weight[k].is_finite(),
                "disagree weight {k} = {}",
                model.disagree_weight[k]
            );
        }
        for i in 0..n {
            for j in 0..n {
                assert!(model.pair_weight(&p, &masked, i, j).is_finite());
            }
        }
        // the census-driven credits are finite probabilities, too
        let index = PatternIndex::build(&masked);
        let census = PatternCensus::build(&p, &masked, &index);
        for c in census.credits(&model, &index) {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn fit_from_counts_matches_direct_fit_bit_for_bit() {
        let (p, s) = prep_and_sub(60);
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.4) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let direct = PrlModel::fit(&p, &m, 15);
        let index = PatternIndex::build(&m);
        let census = PatternCensus::build(&p, &m, &index);
        let via_census = PrlModel::fit_from_counts(&p, census.counts(), 15);
        assert_eq!(direct.agree_weight, via_census.agree_weight);
        assert_eq!(direct.disagree_weight, via_census.disagree_weight);
    }

    #[test]
    fn census_counts_match_the_pair_scan_exactly() {
        // the blocked census must reproduce the O(n²·a) pair census bin
        // for bin — this is the EM sufficient statistic
        let (p, s) = prep_and_sub(60);
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.5) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let index = PatternIndex::build(&m);
        let census = PatternCensus::build(&p, &m, &index);
        let mut pairwise = vec![0u64; 1 << p.n_attrs()];
        for i in 0..p.n_rows() {
            for j in 0..p.n_rows() {
                pairwise[pattern(&p, &m, i, j)] += 1;
            }
        }
        assert_eq!(census.counts(), &pairwise[..]);
    }

    #[test]
    fn moved_rows_match_a_fresh_census_exactly() {
        let (p, s) = prep_and_sub(50);
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.clone();
        let mut index = PatternIndex::build(&m);
        let mut census = PatternCensus::build(&p, &m, &index);
        let mut buf = vec![0u16; m.n_attrs()];
        for _ in 0..20 {
            let row = rng.gen_range(0..m.n_rows());
            let k = rng.gen_range(0..m.n_attrs());
            let c = p.cats(k) as u16;
            m.set(row, k, rng.gen_range(0..c));
            m.read_row(row, &mut buf);
            let (old_pid, new_pid) = index.move_row(row, &buf);
            census.row_moved(&p, &m, &index, row, old_pid, new_pid);
        }
        // the incrementally maintained census and credits are identical to
        // a from-scratch build over the final file
        let fresh_index = PatternIndex::build(&m);
        let fresh = PatternCensus::build(&p, &m, &fresh_index);
        assert_eq!(census.counts(), fresh.counts());
        let model = PrlModel::fit_from_counts(&p, census.counts(), 15);
        assert_eq!(
            census.credits(&model, &index),
            fresh.credits(&model, &fresh_index)
        );
    }

    #[test]
    fn census_credits_match_the_pairwise_linker() {
        let (p, s) = prep_and_sub(60);
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.3) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        let model = PrlModel::fit(&p, &m, 15);
        let index = PatternIndex::build(&m);
        let census = PatternCensus::build(&p, &m, &index);
        assert_eq!(census.credits(&model, &index), prl_credits(&model, &p, &m));
    }
}
