//! Probabilistic record linkage (PRL), Fellegi–Sunter style.
//!
//! Each original–masked pair is summarized by its per-attribute agreement
//! pattern. The match (`m_k`) and non-match (`u_k`) agreement probabilities
//! are estimated by EM over the pattern counts (patterns are few — `2^a`
//! with `a = 3` protected attributes — so EM is cheap even though the
//! pattern census is O(n²·a)). A pair's match weight is
//! `Σ_k δ_k·log2(m_k/u_k) + (1−δ_k)·log2((1−m_k)/(1−u_k))`; every masked
//! record links to the original(s) with maximal weight, and the measure is
//! the tie-credited share of correct links × 100.

use cdp_dataset::SubTable;

use crate::linkage::credits_value;
use crate::prepared::PreparedOriginal;

/// Fitted Fellegi–Sunter weights.
#[derive(Debug)]
pub struct PrlModel {
    /// `log2(m_k / u_k)` per attribute (contribution of an agreement).
    pub agree_weight: Vec<f64>,
    /// `log2((1−m_k)/(1−u_k))` per attribute (contribution of a
    /// disagreement).
    pub disagree_weight: Vec<f64>,
}

impl Clone for PrlModel {
    fn clone(&self) -> Self {
        PrlModel {
            agree_weight: self.agree_weight.clone(),
            disagree_weight: self.disagree_weight.clone(),
        }
    }

    /// Buffer-reusing copy for scratch evaluation states.
    fn clone_from(&mut self, src: &Self) {
        self.agree_weight.clone_from(&src.agree_weight);
        self.disagree_weight.clone_from(&src.disagree_weight);
    }
}

const P_FLOOR: f64 = 1e-6;

impl PrlModel {
    /// Fit `m`/`u` by EM on agreement-pattern counts.
    ///
    /// # Panics
    /// Panics when the file has more than 20 protected attributes (the
    /// pattern census is `2^a`; the paper protects 3).
    pub fn fit(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> Self {
        let n = prep.n_rows();
        let a = prep.n_attrs();
        assert!(a <= 20, "pattern census needs 2^a space, a = {a}");
        let n_patterns = 1usize << a;

        // Census of agreement patterns over all pairs.
        let mut counts = vec![0u64; n_patterns];
        for i in 0..n {
            for j in 0..n {
                counts[pattern(prep, masked, i, j)] += 1;
            }
        }
        let total = (n as f64) * (n as f64);

        // EM initialization: matches are the diagonal fraction; agreement by
        // chance initializes u.
        let mut pi = 1.0 / n.max(1) as f64;
        let mut m: Vec<f64> = vec![0.9; a];
        let mut u: Vec<f64> = (0..a)
            .map(|k| prep.chance_agreement(k).clamp(P_FLOOR, 1.0 - P_FLOOR))
            .collect();

        for _ in 0..em_iters {
            // E step: responsibility of the match class per pattern
            let mut gamma = vec![0.0f64; n_patterns];
            for (p, g) in gamma.iter_mut().enumerate() {
                let mut pm = pi;
                let mut pu = 1.0 - pi;
                for k in 0..a {
                    if p >> k & 1 == 1 {
                        pm *= m[k];
                        pu *= u[k];
                    } else {
                        pm *= 1.0 - m[k];
                        pu *= 1.0 - u[k];
                    }
                }
                *g = if pm + pu > 0.0 { pm / (pm + pu) } else { 0.0 };
            }
            // M step
            let match_mass: f64 = (0..n_patterns).map(|p| counts[p] as f64 * gamma[p]).sum();
            let non_mass = total - match_mass;
            pi = (match_mass / total).clamp(P_FLOOR, 1.0 - P_FLOOR);
            for k in 0..a {
                let mut agree_match = 0.0;
                let mut agree_non = 0.0;
                for p in 0..n_patterns {
                    if p >> k & 1 == 1 {
                        agree_match += counts[p] as f64 * gamma[p];
                        agree_non += counts[p] as f64 * (1.0 - gamma[p]);
                    }
                }
                if match_mass > 0.0 {
                    m[k] = (agree_match / match_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
                if non_mass > 0.0 {
                    u[k] = (agree_non / non_mass).clamp(P_FLOOR, 1.0 - P_FLOOR);
                }
            }
        }

        PrlModel {
            agree_weight: (0..a).map(|k| (m[k] / u[k]).log2()).collect(),
            disagree_weight: (0..a)
                .map(|k| ((1.0 - m[k]) / (1.0 - u[k])).log2())
                .collect(),
        }
    }

    /// Match weight of pair `(masked i, original j)`.
    #[inline]
    pub fn pair_weight(
        &self,
        prep: &PreparedOriginal,
        masked: &SubTable,
        i: usize,
        j: usize,
    ) -> f64 {
        let mut w = 0.0;
        for k in 0..prep.n_attrs() {
            if masked.get(i, k) == prep.orig().get(j, k) {
                w += self.agree_weight[k];
            } else {
                w += self.disagree_weight[k];
            }
        }
        w
    }
}

#[inline]
fn pattern(prep: &PreparedOriginal, masked: &SubTable, i: usize, j: usize) -> usize {
    let mut p = 0usize;
    for k in 0..prep.n_attrs() {
        if masked.get(i, k) == prep.orig().get(j, k) {
            p |= 1 << k;
        }
    }
    p
}

/// Re-identification credit of masked record `i` under a fitted model.
pub fn prl_credit(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable, i: usize) -> f64 {
    let n = prep.n_rows();
    let mut best = f64::NEG_INFINITY;
    let mut ties = 0usize;
    let mut self_is_best = false;
    for j in 0..n {
        let w = model.pair_weight(prep, masked, i, j);
        if w > best + 1e-12 {
            best = w;
            ties = 1;
            self_is_best = j == i;
        } else if (w - best).abs() <= 1e-12 {
            ties += 1;
            self_is_best |= j == i;
        }
    }
    if self_is_best {
        1.0 / ties as f64
    } else {
        0.0
    }
}

/// Credits for every masked record.
pub fn prl_credits(model: &PrlModel, prep: &PreparedOriginal, masked: &SubTable) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| prl_credit(model, prep, masked, i))
        .collect()
}

/// PRL of a masked file (fits the model, then links), in `[0, 100]`.
pub fn prl(prep: &PreparedOriginal, masked: &SubTable, em_iters: usize) -> f64 {
    let model = PrlModel::fit(prep, masked, em_iters);
    credits_value(&prl_credits(&model, prep, masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::German
            .generate(&GeneratorConfig::seeded(8).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_yields_positive_agree_weights() {
        let (p, s) = prep_and_sub(100);
        let model = PrlModel::fit(&p, &s, 15);
        for k in 0..p.n_attrs() {
            assert!(
                model.agree_weight[k] > 0.0,
                "agreement should support a match, attr {k}"
            );
            assert!(
                model.disagree_weight[k] < 0.0,
                "disagreement should oppose a match, attr {k}"
            );
        }
    }

    #[test]
    fn identity_links_most_records() {
        let (p, s) = prep_and_sub(100);
        let v = prl(&p, &s, 15);
        assert!(v > 30.0, "got {v}"); // German has few categories -> many ties
        assert!(v <= 100.0);
    }

    #[test]
    fn randomization_reduces_prl() {
        let (p, s) = prep_and_sub(100);
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        assert!(prl(&p, &m, 15) < prl(&p, &s, 15));
    }

    #[test]
    fn credits_match_value() {
        let (p, s) = prep_and_sub(70);
        let model = PrlModel::fit(&p, &s, 10);
        let credits = prl_credits(&model, &p, &s);
        assert!((credits_value(&credits) - prl(&p, &s, 10)).abs() < 1e-9);
    }

    #[test]
    fn pattern_packs_agreements() {
        let (p, s) = prep_and_sub(30);
        // self-pairs agree everywhere: pattern = 2^a - 1
        for i in 0..10 {
            assert_eq!(pattern(&p, &s, i, i), (1 << p.n_attrs()) - 1);
        }
    }

    #[test]
    fn em_is_stable_for_degenerate_identity() {
        // tiny file of identical rows: EM must not produce NaNs
        let (p, s) = prep_and_sub(12);
        let model = PrlModel::fit(&p, &s, 50);
        for k in 0..p.n_attrs() {
            assert!(model.agree_weight[k].is_finite());
            assert!(model.disagree_weight[k].is_finite());
        }
    }
}
