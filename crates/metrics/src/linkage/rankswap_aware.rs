//! Rank-swapping-aware record linkage (RSRL).
//!
//! Nin, Herranz & Torra (2008) observed that rank swapping confines each
//! value within a known rank window, so an intruder can do much better than
//! generic nearest-neighbour linkage: for every attribute of a masked
//! record, the true source must hold an original value whose *rank interval*
//! intersects the window around the masked value's rank. Intersecting the
//! per-attribute candidate sets yields a (often very small) candidate pool;
//! the intruder picks uniformly, so the masked record is credited
//! `1/|candidates|` when its true source survived the intersection.
//!
//! The attacker's assumed window is a parameter (the real swap window is
//! unknown to them); we default to 5% of the records, configurable through
//! [`crate::MetricConfig::rsrl_window_fraction`].

use cdp_dataset::{Code, PatternIndex, SubTable};

use crate::linkage::credits_value;
use crate::prepared::{MaskedStats, PreparedOriginal};

/// The original categories of attribute `k` whose rank interval intersects
/// the window of `window` positions around `midrank`. A `NaN` midrank (a
/// category absent from the masked file, see
/// [`MaskedStats::midrank`]) is compatible with nothing: every interval
/// comparison against `NaN` is false.
pub fn compatible_categories(
    prep: &PreparedOriginal,
    k: usize,
    midrank: f64,
    window: f64,
) -> Vec<bool> {
    let lo = midrank - window;
    let hi = midrank + window;
    let starts = prep.rank_start(k);
    let counts = prep.counts(k);
    let mut ok = vec![false; prep.cats(k)];
    for (v, flag) in ok.iter_mut().enumerate() {
        if counts[v] == 0 {
            continue;
        }
        let first = starts[v] as f64;
        let last = (starts[v] + counts[v] as usize - 1) as f64;
        // original rank interval of category v intersects [lo, hi]
        *flag = first <= hi && last >= lo;
    }
    ok
}

/// Re-identification credit of masked record `i` under an assumed rank
/// window of `window` positions.
pub fn rsrl_credit(
    prep: &PreparedOriginal,
    stats: &MaskedStats,
    masked: &SubTable,
    i: usize,
    window: f64,
) -> f64 {
    let n = prep.n_rows();
    let a = prep.n_attrs();

    // Per attribute: which original categories are rank-compatible with the
    // masked value of record i.
    let compatible: Vec<Vec<bool>> = (0..a)
        .map(|k| compatible_categories(prep, k, stats.midrank(k, masked.get(i, k)), window))
        .collect();

    let mut candidates = 0usize;
    let mut self_in = false;
    'records: for j in 0..n {
        for k in 0..a {
            if !compatible[k][prep.orig().get(j, k) as usize] {
                continue 'records;
            }
        }
        candidates += 1;
        self_in |= j == i;
    }
    if self_in && candidates > 0 {
        1.0 / candidates as f64
    } else {
        0.0
    }
}

/// Credits for every masked record (all-pairs reference scan).
pub fn rsrl_credits(
    prep: &PreparedOriginal,
    stats: &MaskedStats,
    masked: &SubTable,
    window: f64,
) -> Vec<f64> {
    (0..prep.n_rows())
        .map(|i| rsrl_credit(prep, stats, masked, i, window))
        .collect()
}

/// Count the original records whose every attribute is rank-compatible,
/// via the original [`PatternIndex`]: pick the attribute whose compatible
/// posting lists are shortest (the *blocking key*), walk only those
/// postings, and check the remaining attributes per distinct pattern. The
/// count is an integer — `Σ multiplicity` over compatible patterns equals
/// the number of compatible records exactly.
pub(crate) fn count_candidates(prep: &PreparedOriginal, compat: &[Vec<bool>]) -> u64 {
    let idx = prep.pattern_index();
    let mut pivot = 0usize;
    let mut best_mass = usize::MAX;
    for (k, ok) in compat.iter().enumerate() {
        let mass: usize = ok
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(v, _)| idx.postings(k, v as Code).len())
            .sum();
        if mass < best_mass {
            best_mass = mass;
            pivot = k;
        }
    }
    let mut cand = 0u64;
    for (v, &ok) in compat[pivot].iter().enumerate() {
        if !ok {
            continue;
        }
        'pid: for &pid in idx.postings(pivot, v as Code) {
            let mult = idx.multiplicity(pid);
            if mult == 0 {
                continue;
            }
            let codes = idx.codes_of(pid);
            for (k, ok2) in compat.iter().enumerate() {
                if k != pivot && !ok2[codes[k] as usize] {
                    continue 'pid;
                }
            }
            cand += u64::from(mult);
        }
    }
    cand
}

/// Whether original record `i` itself survives the per-attribute
/// compatibility intersection.
#[inline]
pub(crate) fn self_compatible(prep: &PreparedOriginal, compat: &[Vec<bool>], i: usize) -> bool {
    compat
        .iter()
        .enumerate()
        .all(|(k, ok)| ok[prep.orig().get(i, k) as usize])
}

/// Blocked equivalent of [`rsrl_credit`]: candidate counting runs over the
/// distinct original patterns (`O(p_o·a)` after the `O(Σ c_k)` window
/// setup) instead of all `n` records. Credits are identical — the
/// candidate count is an exact integer either way.
pub fn rsrl_credit_blocked(
    prep: &PreparedOriginal,
    stats: &MaskedStats,
    masked: &SubTable,
    i: usize,
    window: f64,
) -> f64 {
    let a = prep.n_attrs();
    let compat: Vec<Vec<bool>> = (0..a)
        .map(|k| compatible_categories(prep, k, stats.midrank(k, masked.get(i, k)), window))
        .collect();
    let candidates = count_candidates(prep, &compat);
    if candidates > 0 && self_compatible(prep, &compat, i) {
        1.0 / candidates as f64
    } else {
        0.0
    }
}

/// Blocked equivalent of [`rsrl_credits`]: the window intersection and
/// candidate count are computed once per distinct masked pattern of
/// `index` (which must index the masked file behind `stats`), then fanned
/// out to the records.
pub fn rsrl_credits_blocked(
    prep: &PreparedOriginal,
    stats: &MaskedStats,
    index: &PatternIndex,
    window: f64,
) -> Vec<f64> {
    let a = prep.n_attrs();
    let mut per_pattern: Vec<Option<(u64, Vec<Vec<bool>>)>> = vec![None; index.n_patterns()];
    for (pid, q, _) in index.iter_live() {
        let compat: Vec<Vec<bool>> = (0..a)
            .map(|k| compatible_categories(prep, k, stats.midrank(k, q[k]), window))
            .collect();
        let candidates = count_candidates(prep, &compat);
        per_pattern[pid as usize] = Some((candidates, compat));
    }
    (0..prep.n_rows())
        .map(|i| {
            let (candidates, compat) = per_pattern[index.pattern_of(i) as usize]
                .as_ref()
                .expect("live pattern");
            if *candidates > 0 && self_compatible(prep, compat, i) {
                1.0 / *candidates as f64
            } else {
                0.0
            }
        })
        .collect()
}

/// RSRL of a masked file, in `[0, 100]`. `window_fraction` is the intruder's
/// assumed swap window as a fraction of the record count.
pub fn rsrl(prep: &PreparedOriginal, masked: &SubTable, window_fraction: f64) -> f64 {
    let stats = MaskedStats::build(prep, masked);
    let window = (window_fraction * prep.n_rows() as f64).max(1.0);
    credits_value(&rsrl_credits(prep, &stats, masked, window))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn prep_and_sub(n: usize) -> (PreparedOriginal, SubTable) {
        let s = DatasetKind::Housing
            .generate(&GeneratorConfig::seeded(9).with_records(n))
            .protected_subtable();
        (PreparedOriginal::new(&s), s)
    }

    #[test]
    fn identity_has_high_rsrl() {
        let (p, s) = prep_and_sub(150);
        let v = rsrl(&p, &s, 0.05);
        assert!(v > 10.0, "got {v}");
        assert!(v <= 100.0);
    }

    #[test]
    fn wider_assumed_window_weakens_the_attack() {
        let (p, s) = prep_and_sub(150);
        // more candidates per record -> lower credit
        let narrow = rsrl(&p, &s, 0.02);
        let wide = rsrl(&p, &s, 0.4);
        assert!(wide <= narrow, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn randomization_reduces_rsrl() {
        let (p, s) = prep_and_sub(150);
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = s.clone();
        for k in 0..m.n_attrs() {
            let c = p.cats(k) as u16;
            for r in 0..m.n_rows() {
                m.set(r, k, rng.gen_range(0..c));
            }
        }
        assert!(rsrl(&p, &m, 0.05) < rsrl(&p, &s, 0.05));
    }

    #[test]
    fn credits_are_probabilities() {
        let (p, s) = prep_and_sub(100);
        let stats = MaskedStats::build(&p, &s);
        for c in rsrl_credits(&p, &stats, &s, 5.0) {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn absent_categories_are_compatible_with_nothing() {
        // regression for the zero-count midrank bug: an absent masked
        // category used to report midrank == rank_start, so its window
        // aliased whatever category starts at that rank
        let (p, s) = prep_and_sub(100);
        let mut m = s.clone();
        // drive category 0 of attribute 0 out of the masked file
        let c0 = p.cats(0) as cdp_dataset::Code;
        for r in 0..m.n_rows() {
            if m.get(r, 0) == 0 {
                m.set(r, 0, 1 % c0);
            }
        }
        let stats = MaskedStats::build(&p, &m);
        let mid = stats.midrank(0, 0);
        assert!(mid.is_nan());
        let ok = compatible_categories(&p, 0, mid, 50.0);
        assert!(
            ok.iter().all(|&b| !b),
            "absent category must match no rank window"
        );
        // a present category still matches at least itself
        let present = compatible_categories(&p, 0, stats.midrank(0, m.get(0, 0)), 50.0);
        assert!(present.iter().any(|&b| b));
    }

    #[test]
    fn value_matches_credits() {
        let (p, s) = prep_and_sub(100);
        let stats = MaskedStats::build(&p, &s);
        let credits = rsrl_credits(&p, &stats, &s, 5.0);
        assert!((credits_value(&credits) - rsrl(&p, &s, 0.05)).abs() < 1e-9);
    }

    #[test]
    fn blocked_credits_match_all_pairs_exactly() {
        let (p, s) = prep_and_sub(120);
        let mut rng = StdRng::seed_from_u64(11);
        for window in [1.0, 4.0, 20.0] {
            let mut m = s.clone();
            for k in 0..m.n_attrs() {
                let c = p.cats(k) as u16;
                for r in 0..m.n_rows() {
                    if rng.gen_bool(0.4) {
                        m.set(r, k, rng.gen_range(0..c));
                    }
                }
            }
            let stats = MaskedStats::build(&p, &m);
            let index = PatternIndex::build(&m);
            assert_eq!(
                rsrl_credits_blocked(&p, &stats, &index, window),
                rsrl_credits(&p, &stats, &m, window)
            );
            for i in (0..m.n_rows()).step_by(7) {
                assert_eq!(
                    rsrl_credit_blocked(&p, &stats, &m, i, window),
                    rsrl_credit(&p, &stats, &m, i, window)
                );
            }
        }
    }
}
