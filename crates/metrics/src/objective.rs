//! Open objective space: the vector the optimizer minimizes, and the
//! registry of measures that can fill it.
//!
//! The paper's Algorithm 1 (and our NSGA-II port) hard-wired exactly two
//! objectives — information loss and disclosure risk — as `(f64, f64)`
//! tuples. This module breaks that pair open: an [`ObjectiveVector`] holds
//! up to [`MAX_OBJECTIVES`] minimized measures inline (no allocation, so
//! the dominance hot loop stays as cheap as the tuple it replaces), an
//! [`Objective`] computes one component from an evaluated masking, and an
//! [`ObjectiveSet`] names the components of a run.
//!
//! The two canonical entries reproduce the paper exactly:
//!
//! * `il` — aggregated information loss, `(CTBIL + DBIL + EBIL) / 3`;
//! * `dr` — aggregated disclosure risk, `(ID + DBRL + PRL + RSRL) / 4`.
//!
//! Two extension objectives open the scenario space the ROADMAP gated on
//! this refactor:
//!
//! * `eps` — the empirical local-differential-privacy leakage of the
//!   masking channel (information-theoretic PRAM under DP, after
//!   arXiv 2009.11257): per attribute, the confusion matrix
//!   original→masked is read as a randomized-response channel and its
//!   worst-case log-likelihood ratio `ln P(v|o) / P(v|o′)` is taken over
//!   all outputs `v` and input pairs `(o, o′)` (Laplace-smoothed so empty
//!   cells stay finite); the run-level ε is the maximum over attributes,
//!   squashed onto `[0, 100)` via `100·ε/(1+ε)` so it shares the
//!   hypervolume reference of the paper measures. Lower is better: a
//!   masking that leaks little about any original value scores near 0.
//! * `util` — the task-utility gap (multi-objective anonymization for
//!   ML-task preservation, after arXiv 2501.01002): the last protected
//!   attribute is read as the label, and for every feature attribute a
//!   majority-class (OneR) classifier is trained on the *protected* pair
//!   table and tested against the *original* pair table; `util` is the
//!   mean accuracy it gives up versus the same classifier trained on the
//!   original, scaled to `[0, 100]`. Zero means the masking kept every
//!   feature→label vote intact.
//!
//! All objectives are pure functions of integer sufficient statistics the
//! evaluator already maintains — they draw no randomness, so adding or
//! removing objectives never perturbs an optimizer's RNG streams, and the
//! canonical `il,dr` set produces bit-for-bit the tuples the hard-wired
//! code produced.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::evaluator::EvalState;
use crate::prepared::PreparedOriginal;
use crate::{MetricError, Result};

/// Inline capacity of an [`ObjectiveVector`]; sets longer than this are
/// rejected at parse time.
pub const MAX_OBJECTIVES: usize = 4;

/// A fixed small-N vector of minimized objective values.
///
/// Stored inline (`Copy`, no heap) so the NSGA-II dominance loop over a
/// whole population costs what the old `(f64, f64)` tuples cost. Equality
/// is component-wise on the active prefix.
#[derive(Clone, Copy, Debug)]
pub struct ObjectiveVector {
    vals: [f64; MAX_OBJECTIVES],
    len: u8,
}

impl ObjectiveVector {
    /// The canonical 2-objective vector `(IL, DR)`.
    pub fn pair(il: f64, dr: f64) -> ObjectiveVector {
        ObjectiveVector {
            vals: [il, dr, 0.0, 0.0],
            len: 2,
        }
    }

    /// Build from a slice of at most [`MAX_OBJECTIVES`] values.
    ///
    /// # Panics
    /// Panics when `values` is longer than [`MAX_OBJECTIVES`] (programming
    /// error: sets are length-checked at construction).
    pub fn from_slice(values: &[f64]) -> ObjectiveVector {
        assert!(
            values.len() <= MAX_OBJECTIVES,
            "at most {MAX_OBJECTIVES} objectives, got {}",
            values.len()
        );
        let mut vals = [0.0; MAX_OBJECTIVES];
        vals[..values.len()].copy_from_slice(values);
        ObjectiveVector {
            vals,
            len: values.len() as u8,
        }
    }

    /// A vector of `n` copies of `value` (the hypervolume reference point
    /// constructor).
    pub fn splat(value: f64, n: usize) -> ObjectiveVector {
        assert!(n <= MAX_OBJECTIVES, "at most {MAX_OBJECTIVES} objectives");
        let mut vals = [0.0; MAX_OBJECTIVES];
        vals[..n].fill(value);
        ObjectiveVector { vals, len: n as u8 }
    }

    /// Number of active components.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no components are active.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active components.
    pub fn as_slice(&self) -> &[f64] {
        &self.vals[..self.len as usize]
    }

    /// Pareto dominance (minimization): `self` is no worse on every
    /// component and strictly better on at least one. The N=2 case
    /// evaluates exactly the comparison the hard-wired
    /// `a.il <= b.il && a.dr <= b.dr && (a.il < b.il || a.dr < b.dr)`
    /// tuple test evaluated.
    ///
    /// # Panics
    /// Panics when the two vectors have different lengths (programming
    /// error: one run has one objective set).
    pub fn dominates(&self, other: &ObjectiveVector) -> bool {
        assert_eq!(self.len, other.len, "objective vectors of mixed lengths");
        let (a, b) = (self.as_slice(), other.as_slice());
        let mut strictly = false;
        for (x, y) in a.iter().zip(b) {
            if x > y {
                return false;
            }
            if x < y {
                strictly = true;
            }
        }
        strictly
    }

    /// First component — IL under every registry set (they all lead with
    /// the canonical pair).
    pub fn first(&self) -> f64 {
        self.vals[0]
    }
}

impl Index<usize> for ObjectiveVector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.as_slice()[i]
    }
}

impl PartialEq for ObjectiveVector {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.as_slice() == other.as_slice()
    }
}

/// Everything an [`Objective`] may read when computing its component:
/// the masked file's evaluated state (assessment + the integer sufficient
/// statistics behind it) and the prepared original it was scored against.
pub struct ObjectiveContext<'a> {
    /// Evaluated state of the masked candidate.
    pub state: &'a EvalState,
    /// Original-side statistics (tables, ranks, category counts).
    pub prepared: &'a PreparedOriginal,
}

/// One minimized objective: a key for the CLI grammar and a pure function
/// of an evaluated masking. Implementations must not draw randomness —
/// the optimizer's determinism contract depends on it.
pub trait Objective: Send + Sync {
    /// Grammar key (`il`, `dr`, `eps`, `util`).
    fn key(&self) -> &'static str;

    /// The component value, normalized to `[0, 100]` (minimized).
    fn compute(&self, ctx: &ObjectiveContext<'_>) -> f64;
}

/// Canonical objective: aggregated information loss (paper Eq. IL).
struct IlObjective;

impl Objective for IlObjective {
    fn key(&self) -> &'static str {
        "il"
    }

    fn compute(&self, ctx: &ObjectiveContext<'_>) -> f64 {
        ctx.state.assessment.il()
    }
}

/// Canonical objective: aggregated disclosure risk (paper Eq. DR).
struct DrObjective;

impl Objective for DrObjective {
    fn key(&self) -> &'static str {
        "dr"
    }

    fn compute(&self, ctx: &ObjectiveContext<'_>) -> f64 {
        ctx.state.assessment.dr()
    }
}

/// Extension objective: empirical LDP leakage ε of the masking channel,
/// squashed to `[0, 100)` (see the module docs).
struct EpsObjective;

/// Smoothed worst-case log-likelihood ratio of one confusion matrix
/// (`conf[o*c + v]`, original value `o` → masked value `v`).
fn channel_epsilon(conf: &[u32], c: usize) -> f64 {
    if c <= 1 {
        return 0.0;
    }
    // Laplace smoothing: P(v|o) = (n_ov + 1) / (n_o + c); empty channels
    // stay finite and an unobserved input row is exactly uniform.
    let row_sum: Vec<f64> = (0..c)
        .map(|o| (0..c).map(|v| f64::from(conf[o * c + v])).sum::<f64>() + c as f64)
        .collect();
    let mut eps = 0.0f64;
    for v in 0..c {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for o in 0..c {
            let p = (f64::from(conf[o * c + v]) + 1.0) / row_sum[o];
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if lo > 0.0 {
            eps = eps.max((hi / lo).ln());
        }
    }
    eps
}

impl Objective for EpsObjective {
    fn key(&self) -> &'static str {
        "eps"
    }

    fn compute(&self, ctx: &ObjectiveContext<'_>) -> f64 {
        let mut eps = 0.0f64;
        for (k, conf) in ctx.state.confusion().iter().enumerate() {
            eps = eps.max(channel_epsilon(conf, ctx.prepared.cats(k)));
        }
        100.0 * eps / (1.0 + eps)
    }
}

/// Extension objective: task-utility gap of a per-feature majority-class
/// classifier for the last protected attribute (see the module docs).
struct UtilObjective;

/// Index of the largest count; ties break to the lowest index
/// (deterministic).
fn argmax(row: &[u32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

impl Objective for UtilObjective {
    fn key(&self) -> &'static str {
        "util"
    }

    fn compute(&self, ctx: &ObjectiveContext<'_>) -> f64 {
        let orig = ctx.prepared.tables();
        let masked = ctx.state.masked_tables();
        let (_, o_pairs, cats) = orig.raw_parts();
        let (_, m_pairs, _) = masked.raw_parts();
        let n = orig.n_rows();
        if cats.len() < 2 || n == 0 {
            return 0.0;
        }
        let label = cats.len() - 1;
        let cl = cats[label];
        let mut gap_sum = 0.0;
        let mut features = 0usize;
        for ((i, j, to), (_, _, tm)) in o_pairs.iter().zip(m_pairs) {
            if *j != label {
                continue;
            }
            let ci = cats[*i];
            // per feature value v: the rule predicts the modal label of
            // its training table; accuracy is counted on the original
            let (mut best_possible, mut kept) = (0u64, 0u64);
            for v in 0..ci {
                let row_o = &to[v * cl..(v + 1) * cl];
                let row_m = &tm[v * cl..(v + 1) * cl];
                best_possible += u64::from(row_o[argmax(row_o)]);
                kept += u64::from(row_o[argmax(row_m)]);
            }
            gap_sum += (best_possible - kept) as f64 / n as f64;
            features += 1;
        }
        if features == 0 {
            0.0
        } else {
            100.0 * gap_sum / features as f64
        }
    }
}

/// Look up one objective by its grammar key.
pub fn objective_by_key(key: &str) -> Option<Arc<dyn Objective>> {
    match key {
        "il" => Some(Arc::new(IlObjective)),
        "dr" => Some(Arc::new(DrObjective)),
        "eps" => Some(Arc::new(EpsObjective)),
        "util" => Some(Arc::new(UtilObjective)),
        _ => None,
    }
}

/// The ordered objectives of one run. Always leads with the canonical
/// `il, dr` pair (the paper's measures stay the contract; extensions
/// append), compares by key, and produces one [`ObjectiveVector`] per
/// evaluated masking.
#[derive(Clone)]
pub struct ObjectiveSet {
    objectives: Vec<Arc<dyn Objective>>,
}

impl ObjectiveSet {
    /// The canonical paper pair `il, dr`.
    pub fn canonical() -> ObjectiveSet {
        ObjectiveSet::from_keys(&["il", "dr"]).expect("canonical keys registered")
    }

    /// Build from grammar keys; must lead with `il, dr` and stay within
    /// [`MAX_OBJECTIVES`] distinct keys.
    ///
    /// # Errors
    /// [`MetricError::InvalidObjectives`] naming the offending key or
    /// shape.
    pub fn from_keys<S: AsRef<str>>(keys: &[S]) -> Result<ObjectiveSet> {
        let bad = |msg: String| MetricError::InvalidObjectives(msg);
        if keys.len() < 2 || keys[0].as_ref() != "il" || keys[1].as_ref() != "dr" {
            return Err(bad(
                "objective sets lead with the canonical pair `il,dr`".into()
            ));
        }
        if keys.len() > MAX_OBJECTIVES {
            return Err(bad(format!(
                "at most {MAX_OBJECTIVES} objectives, got {}",
                keys.len()
            )));
        }
        let mut objectives: Vec<Arc<dyn Objective>> = Vec::with_capacity(keys.len());
        for key in keys {
            let key = key.as_ref();
            let obj = objective_by_key(key)
                .ok_or_else(|| bad(format!("unknown objective `{key}` (il|dr|eps|util)")))?;
            if objectives.iter().any(|o| o.key() == obj.key()) {
                return Err(bad(format!("objective `{key}` listed twice")));
            }
            objectives.push(obj);
        }
        Ok(ObjectiveSet { objectives })
    }

    /// Parse a comma-separated key list (`il,dr,eps`).
    ///
    /// # Errors
    /// [`MetricError::InvalidObjectives`], as in
    /// [`ObjectiveSet::from_keys`].
    pub fn parse(spec: &str) -> Result<ObjectiveSet> {
        let keys: Vec<&str> = spec.split(',').map(str::trim).collect();
        ObjectiveSet::from_keys(&keys)
    }

    /// Append one more objective by key.
    ///
    /// # Errors
    /// [`MetricError::InvalidObjectives`] for unknown keys, duplicates, or
    /// overflowing [`MAX_OBJECTIVES`].
    pub fn push_key(&mut self, key: &str) -> Result<()> {
        let mut keys: Vec<&str> = self.keys();
        keys.push(key);
        *self = ObjectiveSet::from_keys(&keys)?;
        Ok(())
    }

    /// The grammar keys, in order.
    pub fn keys(&self) -> Vec<&'static str> {
        self.objectives.iter().map(|o| o.key()).collect()
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.objectives.len()
    }

    /// Objective sets are never empty (the canonical pair is the floor).
    pub fn is_empty(&self) -> bool {
        self.objectives.is_empty()
    }

    /// Whether this is exactly the canonical `il, dr` pair.
    pub fn is_canonical(&self) -> bool {
        self.keys() == ["il", "dr"]
    }

    /// Evaluate every objective on one masked candidate.
    pub fn vector_of(&self, ctx: &ObjectiveContext<'_>) -> ObjectiveVector {
        let mut vals = [0.0; MAX_OBJECTIVES];
        for (slot, obj) in vals.iter_mut().zip(&self.objectives) {
            *slot = obj.compute(ctx);
        }
        ObjectiveVector {
            vals,
            len: self.objectives.len() as u8,
        }
    }

    /// The hypervolume reference point: every measure lives in `[0, 100]`,
    /// so the reference is 100 on each axis.
    pub fn reference(&self) -> ObjectiveVector {
        ObjectiveVector::splat(100.0, self.len())
    }
}

impl Default for ObjectiveSet {
    fn default() -> Self {
        ObjectiveSet::canonical()
    }
}

impl PartialEq for ObjectiveSet {
    fn eq(&self, other: &Self) -> bool {
        self.keys() == other.keys()
    }
}

impl fmt::Debug for ObjectiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectiveSet({})", self.keys().join(","))
    }
}

impl fmt::Display for ObjectiveSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.keys().join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Evaluator, MetricConfig};
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};
    use cdp_dataset::{Code, SubTable};

    fn originals() -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(9).with_records(120))
            .protected_subtable()
    }

    fn shuffled(original: &SubTable, seed: u64) -> SubTable {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = original.clone();
        for k in 0..m.n_attrs() {
            let c = m.attr(k).n_categories() as Code;
            for r in 0..m.n_rows() {
                if rng.gen_bool(0.5) {
                    m.set(r, k, rng.gen_range(0..c));
                }
            }
        }
        m
    }

    #[test]
    fn dominance_matches_the_tuple_rule() {
        let cases = [
            ((1.0, 2.0), (2.0, 3.0), true),
            ((1.0, 2.0), (1.0, 2.0), false), // equal: no strict gain
            ((1.0, 3.0), (2.0, 2.0), false), // incomparable
            ((2.0, 2.0), (2.0, 3.0), true),  // tie on one axis
        ];
        for ((a0, a1), (b0, b1), expect) in cases {
            let (a, b) = (ObjectiveVector::pair(a0, a1), ObjectiveVector::pair(b0, b1));
            assert_eq!(a.dominates(&b), expect, "{a:?} vs {b:?}");
            let tuple = a0 <= b0 && a1 <= b1 && (a0 < b0 || a1 < b1);
            assert_eq!(tuple, expect);
        }
    }

    #[test]
    fn dominance_over_three_dims() {
        let a = ObjectiveVector::from_slice(&[1.0, 2.0, 3.0]);
        let b = ObjectiveVector::from_slice(&[1.0, 2.0, 4.0]);
        let c = ObjectiveVector::from_slice(&[0.5, 9.0, 3.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c) && !c.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn set_parsing_and_shape_guards() {
        assert!(ObjectiveSet::parse("il,dr").unwrap().is_canonical());
        let three = ObjectiveSet::parse("il,dr,eps").unwrap();
        assert_eq!(three.keys(), ["il", "dr", "eps"]);
        assert!(!three.is_canonical());
        assert_eq!(three.reference().as_slice(), &[100.0, 100.0, 100.0]);
        let four = ObjectiveSet::parse("il, dr, eps, util").unwrap();
        assert_eq!(four.len(), 4);
        for bad in ["", "il", "dr,il", "il,dr,warp", "il,dr,eps,eps"] {
            assert!(ObjectiveSet::parse(bad).is_err(), "`{bad}` must fail");
        }
        let mut set = ObjectiveSet::canonical();
        set.push_key("util").unwrap();
        assert_eq!(set.keys(), ["il", "dr", "util"]);
        assert!(set.push_key("util").is_err(), "duplicate push");
    }

    #[test]
    fn canonical_vector_is_bitwise_the_assessment_pair() {
        let original = originals();
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let state = ev.assess(&shuffled(&original, 3));
        let ctx = ObjectiveContext {
            state: &state,
            prepared: ev.prepared(),
        };
        let v = ObjectiveSet::canonical().vector_of(&ctx);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].to_bits(), state.assessment.il().to_bits());
        assert_eq!(v[1].to_bits(), state.assessment.dr().to_bits());
    }

    #[test]
    fn eps_orders_maskings_by_leakage() {
        // identity masking leaks everything; a heavy shuffle leaks less
        let original = originals();
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let set = ObjectiveSet::parse("il,dr,eps").unwrap();
        let identity = set.vector_of(&ObjectiveContext {
            state: &ev.assess(&original),
            prepared: ev.prepared(),
        });
        let noisy = set.vector_of(&ObjectiveContext {
            state: &ev.assess(&shuffled(&original, 5)),
            prepared: ev.prepared(),
        });
        assert!(
            identity[2] > noisy[2],
            "identity ε {} must exceed shuffled ε {}",
            identity[2],
            noisy[2]
        );
        for v in [identity, noisy] {
            assert!((0.0..100.0).contains(&v[2]), "squashed ε in [0,100)");
        }
    }

    #[test]
    fn util_gap_is_zero_on_identity_and_grows_with_damage() {
        let original = originals();
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let set = ObjectiveSet::parse("il,dr,util").unwrap();
        let identity = set.vector_of(&ObjectiveContext {
            state: &ev.assess(&original),
            prepared: ev.prepared(),
        });
        assert_eq!(identity[2], 0.0, "identity keeps every vote");
        let noisy = set.vector_of(&ObjectiveContext {
            state: &ev.assess(&shuffled(&original, 7)),
            prepared: ev.prepared(),
        });
        assert!((0.0..=100.0).contains(&noisy[2]));
    }

    #[test]
    fn objectives_compose_with_incremental_states() {
        // a patched EvalState carries the same sufficient statistics as a
        // full assessment, so every objective agrees bit-for-bit
        let original = originals();
        let ev = Evaluator::new(&original, MetricConfig::default()).unwrap();
        let mut masked = shuffled(&original, 11);
        let state = ev.assess(&masked);
        let old = masked.get(3, 0);
        let c = masked.attr(0).n_categories() as Code;
        masked.set(3, 0, (old + 1) % c);
        let patched = ev.reassess(&state, &masked, &crate::Patch::cell(3, 0, old));
        let full = ev.assess(&masked);
        let set = ObjectiveSet::parse("il,dr,eps,util").unwrap();
        let a = set.vector_of(&ObjectiveContext {
            state: &patched,
            prepared: ev.prepared(),
        });
        let b = set.vector_of(&ObjectiveContext {
            state: &full,
            prepared: ev.prepared(),
        });
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
