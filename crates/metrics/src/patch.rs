//! Patches: compact descriptions of the cells a genetic operator changed.
//!
//! A [`Patch`] is the contract between the operators in `cdp-core` and
//! [`crate::Evaluator::reassess`]: it names every cell whose value may have
//! changed together with the value each cell held *before* the change (the
//! new values are read from the masked file itself). The two constructors
//! mirror the paper's two operators:
//!
//! * [`Patch::cell`] — a single-cell mutation (§2.2.1);
//! * [`Patch::flat_range`] — the inclusive flattened segment `[s, r]` a
//!   2-point crossover overwrote (§2.2.2), carrying the overwritten values.
//!
//! Cells whose old value equals the current masked value are ignored at
//! apply time, so a crossover segment may be handed over verbatim even when
//! the two parents agree on most of it.

use cdp_dataset::Code;

/// One changed cell: where it is, and what value it held before the change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchCell {
    /// Record index.
    pub row: usize,
    /// Protected-attribute index (local to the sub-table).
    pub attr: usize,
    /// Value the cell held before the change.
    pub old: Code,
}

#[derive(Debug, Clone)]
enum Repr {
    /// One cell, stored inline — [`Patch::cell`] allocates nothing.
    Single(PatchCell),
    /// Explicit cell list.
    Cells(Vec<PatchCell>),
    /// A contiguous flattened range starting at `start` (row-major layout),
    /// with the overwritten value per position.
    Flat { start: usize, old: Vec<Code> },
}

/// A set of changed cells with their pre-change values.
///
/// Flat ranges are stored as `(start, old values)` and resolved into
/// `(row, attr)` coordinates lazily (the row-major layout needs the
/// attribute count, which the evaluator knows).
#[derive(Debug, Clone)]
pub struct Patch {
    repr: Repr,
}

impl Patch {
    /// A single-cell patch — the mutation operator's shape. Performs no
    /// heap allocation.
    pub fn cell(row: usize, attr: usize, old: Code) -> Self {
        Patch {
            repr: Repr::Single(PatchCell { row, attr, old }),
        }
    }

    /// An explicit cell list. At most one entry per cell: duplicates make
    /// the incremental updates double-apply and are a caller bug (checked
    /// in debug builds at apply time).
    pub fn from_cells(cells: Vec<PatchCell>) -> Self {
        Patch {
            repr: Repr::Cells(cells),
        }
    }

    /// The inclusive flattened range `[s, r]` — the two-point-crossover
    /// shape. `old_values[i]` is the value flat position `s + i` held
    /// before the segment swap.
    ///
    /// # Panics
    /// Panics when `s > r` or `old_values.len() != r - s + 1`.
    pub fn flat_range(s: usize, r: usize, old_values: Vec<Code>) -> Self {
        assert!(s <= r, "flat range must satisfy s <= r, got [{s}, {r}]");
        assert_eq!(
            old_values.len(),
            r - s + 1,
            "flat range [{s}, {r}] needs {} old values, got {}",
            r - s + 1,
            old_values.len()
        );
        Patch {
            repr: Repr::Flat {
                start: s,
                old: old_values,
            },
        }
    }

    /// Number of cells the patch names (including cells that may turn out
    /// unchanged).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Single(_) => 1,
            Repr::Cells(cells) => cells.len(),
            Repr::Flat { old, .. } => old.len(),
        }
    }

    /// Whether the patch names no cells at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The patch's one cell, when it names exactly one — the evaluator's
    /// allocation-free fast path. `n_attrs` resolves a one-position flat
    /// range.
    pub(crate) fn single_cell(&self, n_attrs: usize) -> Option<PatchCell> {
        match &self.repr {
            Repr::Single(cell) => Some(*cell),
            Repr::Cells(cells) if cells.len() == 1 => Some(cells[0]),
            Repr::Flat { start, old } if old.len() == 1 => Some(PatchCell {
                row: start / n_attrs,
                attr: start % n_attrs,
                old: old[0],
            }),
            _ => None,
        }
    }

    /// Resolve to explicit cells under a row-major flat layout with
    /// `n_attrs` columns (flat position `p` ↦ row `p / n_attrs`, attribute
    /// `p % n_attrs`).
    pub fn resolve(&self, n_attrs: usize) -> Vec<PatchCell> {
        match &self.repr {
            Repr::Single(cell) => vec![*cell],
            Repr::Cells(cells) => cells.clone(),
            Repr::Flat { start, old } => old
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let p = start + i;
                    PatchCell {
                        row: p / n_attrs,
                        attr: p % n_attrs,
                        old: v,
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_resolves_to_itself() {
        let p = Patch::cell(4, 1, 7);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert_eq!(
            p.resolve(3),
            vec![PatchCell {
                row: 4,
                attr: 1,
                old: 7
            }]
        );
    }

    #[test]
    fn flat_range_resolves_row_major() {
        // 3 attributes: flat 4 = (row 1, attr 1), flat 5 = (1, 2), flat 6 = (2, 0)
        let p = Patch::flat_range(4, 6, vec![9, 8, 7]);
        let cells = p.resolve(3);
        assert_eq!(
            cells,
            vec![
                PatchCell {
                    row: 1,
                    attr: 1,
                    old: 9
                },
                PatchCell {
                    row: 1,
                    attr: 2,
                    old: 8
                },
                PatchCell {
                    row: 2,
                    attr: 0,
                    old: 7
                },
            ]
        );
    }

    #[test]
    fn empty_cell_list_is_empty() {
        assert!(Patch::from_cells(Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "old values")]
    fn flat_range_length_mismatch_panics() {
        let _ = Patch::flat_range(2, 5, vec![1, 2]);
    }
}
