//! Cached statistics of the original file and of one masked file.
//!
//! Every measure consults the original data only through
//! [`PreparedOriginal`], built once per experiment; the per-evaluation
//! masked-side statistics live in [`MaskedStats`]. Keeping both explicit is
//! what makes the incremental (single-mutation) re-assessment possible.

use cdp_dataset::{AttrKind, Code, PatternIndex, SubTable};

use crate::contingency::ContingencyTables;
use crate::{MetricError, Result};

/// Immutable, precomputed view of the original protected columns.
#[derive(Debug, Clone)]
pub struct PreparedOriginal {
    orig: SubTable,
    cats: Vec<usize>,
    ordinal: Vec<bool>,
    /// `1 / (c − 1)` per attribute (0 for single-category attributes);
    /// the scale of ordinal code distances.
    inv_span: Vec<f64>,
    counts: Vec<Vec<u32>>,
    probs: Vec<Vec<f64>>,
    /// Total-order position of each category: dictionary order for ordinal
    /// attributes, ascending frequency order (of the original column) for
    /// nominal ones.
    order_keys: Vec<Vec<usize>>,
    /// First rank (0-based) of each category when the original column is
    /// sorted by `order_keys`.
    rank_start: Vec<Vec<usize>>,
    tables: ContingencyTables,
    /// `Σ_v p(v)²` per attribute: the probability two random records agree
    /// by chance (the Fellegi–Sunter `u` initialization).
    chance_agreement: Vec<f64>,
    /// Distinct-pattern index of the original file — the static half of the
    /// blocked record-linkage scans.
    pattern_index: PatternIndex,
    /// `min_cell_dist[k][x]` = minimum of `cell_distance(k, x, y)` over the
    /// codes `y` actually present in original column `k`: a per-attribute
    /// lower bound on any masked-to-original cell distance, used to prune
    /// pattern comparisons in the blocked DBRL scan.
    min_cell_dist: Vec<Vec<f64>>,
}

impl PreparedOriginal {
    /// Precompute all original-side statistics.
    pub fn new(orig: &SubTable) -> Self {
        let a = orig.n_attrs();
        let n = orig.n_rows();
        let cats: Vec<usize> = (0..a).map(|k| orig.attr(k).n_categories()).collect();
        let ordinal: Vec<bool> = (0..a).map(|k| orig.attr(k).kind().is_ordinal()).collect();
        let inv_span: Vec<f64> = cats
            .iter()
            .map(|&c| if c > 1 { 1.0 / (c - 1) as f64 } else { 0.0 })
            .collect();

        let mut counts: Vec<Vec<u32>> = cats.iter().map(|&c| vec![0u32; c]).collect();
        for (k, count) in counts.iter_mut().enumerate() {
            for &v in orig.column(k) {
                count[v as usize] += 1;
            }
        }
        let probs: Vec<Vec<f64>> = counts
            .iter()
            .map(|cnt| cnt.iter().map(|&x| x as f64 / n.max(1) as f64).collect())
            .collect();

        let order_keys: Vec<Vec<usize>> = (0..a)
            .map(|k| match orig.attr(k).kind() {
                AttrKind::Ordinal => (0..cats[k]).collect(),
                AttrKind::Nominal => {
                    let mut codes: Vec<usize> = (0..cats[k]).collect();
                    codes.sort_by_key(|&c| (counts[k][c], c));
                    let mut key = vec![0usize; cats[k]];
                    for (pos, &c) in codes.iter().enumerate() {
                        key[c] = pos;
                    }
                    key
                }
            })
            .collect();

        let rank_start = rank_starts(&counts, &order_keys);

        let chance_agreement: Vec<f64> = probs
            .iter()
            .map(|p| p.iter().map(|&x| x * x).sum())
            .collect();

        let min_cell_dist: Vec<Vec<f64>> = (0..a)
            .map(|k| {
                (0..cats[k])
                    .map(|x| {
                        let mut best = f64::INFINITY;
                        for (y, &cnt) in counts[k].iter().enumerate() {
                            if cnt == 0 {
                                continue;
                            }
                            let d = if ordinal[k] {
                                f64::from((x as Code).abs_diff(y as Code)) * inv_span[k]
                            } else if x == y {
                                0.0
                            } else {
                                1.0
                            };
                            best = best.min(d);
                        }
                        if best.is_finite() {
                            best
                        } else {
                            0.0 // empty column: no pairs to bound
                        }
                    })
                    .collect()
            })
            .collect();

        PreparedOriginal {
            tables: ContingencyTables::build(orig),
            pattern_index: PatternIndex::build(orig),
            orig: orig.clone(),
            cats,
            ordinal,
            inv_span,
            counts,
            probs,
            order_keys,
            rank_start,
            chance_agreement,
            min_cell_dist,
        }
    }

    /// Reassemble a prepared original from its serialized parts (the
    /// snapshot codec's constructor). Field order and semantics match the
    /// struct; the caller (the snapshot loader) guards integrity with
    /// per-section checksums and a content hash of `orig`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        orig: SubTable,
        cats: Vec<usize>,
        ordinal: Vec<bool>,
        inv_span: Vec<f64>,
        counts: Vec<Vec<u32>>,
        probs: Vec<Vec<f64>>,
        order_keys: Vec<Vec<usize>>,
        rank_start: Vec<Vec<usize>>,
        tables: ContingencyTables,
        chance_agreement: Vec<f64>,
        pattern_index: PatternIndex,
        min_cell_dist: Vec<Vec<f64>>,
    ) -> Self {
        PreparedOriginal {
            orig,
            cats,
            ordinal,
            inv_span,
            counts,
            probs,
            order_keys,
            rank_start,
            tables,
            chance_agreement,
            pattern_index,
            min_cell_dist,
        }
    }

    /// Approximate heap footprint in bytes: the retained original arena
    /// plus every derived component (marginals, probabilities, rank stats,
    /// contingency tables, the pattern index and the distance bounds).
    /// This is the accounting behind the session cache's byte cap.
    pub fn approx_bytes(&self) -> usize {
        let arena = self.orig.flat_len() * std::mem::size_of::<Code>();
        let per_cat: usize = (0..self.cats.len())
            .map(|k| {
                self.counts[k].len() * std::mem::size_of::<u32>()
                    + self.probs[k].len() * std::mem::size_of::<f64>()
                    + self.order_keys[k].len() * std::mem::size_of::<usize>()
                    + self.rank_start[k].len() * std::mem::size_of::<usize>()
                    + self.min_cell_dist[k].len() * std::mem::size_of::<f64>()
            })
            .sum();
        let scalars = self.cats.len()
            * (std::mem::size_of::<usize>()
                + std::mem::size_of::<bool>()
                + 2 * std::mem::size_of::<f64>());
        arena + per_cat + scalars + self.tables.approx_bytes() + self.pattern_index.approx_bytes()
    }

    /// The original sub-table.
    pub fn orig(&self) -> &SubTable {
        &self.orig
    }

    /// Number of records.
    pub fn n_rows(&self) -> usize {
        self.orig.n_rows()
    }

    /// Number of protected attributes.
    pub fn n_attrs(&self) -> usize {
        self.orig.n_attrs()
    }

    /// Category count of attribute `k`.
    pub fn cats(&self, k: usize) -> usize {
        self.cats[k]
    }

    /// Whether attribute `k` is ordinal.
    pub fn is_ordinal(&self, k: usize) -> bool {
        self.ordinal[k]
    }

    /// `1/(c−1)` scale of attribute `k`.
    pub fn inv_span(&self, k: usize) -> f64 {
        self.inv_span[k]
    }

    /// Original marginal counts of attribute `k`.
    pub fn counts(&self, k: usize) -> &[u32] {
        &self.counts[k]
    }

    /// Original marginal probabilities of attribute `k`.
    pub fn probs(&self, k: usize) -> &[f64] {
        &self.probs[k]
    }

    /// Total-order keys of attribute `k`.
    pub fn order_keys(&self, k: usize) -> &[usize] {
        &self.order_keys[k]
    }

    /// First sorted-rank of each category in the original column `k`.
    pub fn rank_start(&self, k: usize) -> &[usize] {
        &self.rank_start[k]
    }

    /// Original contingency tables (orders 1 and 2).
    pub fn tables(&self) -> &ContingencyTables {
        &self.tables
    }

    /// Chance-agreement probability of attribute `k`.
    pub fn chance_agreement(&self, k: usize) -> f64 {
        self.chance_agreement[k]
    }

    /// Distinct-pattern index of the original protected columns (static;
    /// built once with the rest of the original-side statistics).
    pub fn pattern_index(&self) -> &PatternIndex {
        &self.pattern_index
    }

    /// Lower bound on `cell_distance(k, x, ·)` against any code present in
    /// the original column `k`.
    #[inline]
    pub fn min_cell_dist(&self, k: usize, x: Code) -> f64 {
        self.min_cell_dist[k][x as usize]
    }

    /// Distance between two codes of attribute `k`: normalized code
    /// distance for ordinal attributes, 0/1 for nominal ones.
    #[inline]
    pub fn cell_distance(&self, k: usize, x: Code, y: Code) -> f64 {
        if self.ordinal[k] {
            f64::from(x.abs_diff(y)) * self.inv_span[k]
        } else if x == y {
            0.0
        } else {
            1.0
        }
    }

    /// Verify that a masked file is comparable to the original (same schema
    /// object semantics, attribute selection and row count).
    pub fn check_compatible(&self, masked: &SubTable) -> Result<()> {
        if masked.n_rows() != self.orig.n_rows()
            || masked.attr_indices() != self.orig.attr_indices()
            || **masked.schema() != **self.orig.schema()
        {
            return Err(MetricError::ShapeMismatch(format!(
                "masked file ({} rows, attrs {:?}) does not match original ({} rows, attrs {:?})",
                masked.n_rows(),
                masked.attr_indices(),
                self.orig.n_rows(),
                self.orig.attr_indices(),
            )));
        }
        Ok(())
    }
}

/// Per-evaluation statistics of one masked file: marginal counts and the
/// first sorted-rank of each category (under the *original* order keys, the
/// attacker's fixed view of the category order).
#[derive(Debug, PartialEq)]
pub struct MaskedStats {
    /// Marginal counts per attribute.
    pub counts: Vec<Vec<u32>>,
    /// First rank of each category in the sorted masked column.
    pub rank_start: Vec<Vec<usize>>,
}

impl Clone for MaskedStats {
    fn clone(&self) -> Self {
        MaskedStats {
            counts: self.counts.clone(),
            rank_start: self.rank_start.clone(),
        }
    }

    /// Buffer-reusing copy (`Vec::clone_from` recycles the per-attribute
    /// vectors), so scratch evaluation states never re-allocate here.
    fn clone_from(&mut self, src: &Self) {
        self.counts.clone_from(&src.counts);
        self.rank_start.clone_from(&src.rank_start);
    }
}

impl MaskedStats {
    /// Build the masked-side statistics.
    pub fn build(prep: &PreparedOriginal, masked: &SubTable) -> Self {
        let a = prep.n_attrs();
        let mut counts: Vec<Vec<u32>> = (0..a).map(|k| vec![0u32; prep.cats(k)]).collect();
        for (k, count) in counts.iter_mut().enumerate() {
            for &v in masked.column(k) {
                count[v as usize] += 1;
            }
        }
        let order_keys: Vec<Vec<usize>> = (0..a).map(|k| prep.order_keys(k).to_vec()).collect();
        let rank_start = rank_starts(&counts, &order_keys);
        MaskedStats { counts, rank_start }
    }

    /// Midrank of category `v` of attribute `k` in the masked column, or
    /// `NaN` when the category does not occur in the masked file. A
    /// zero-count category has no rank interval at all; reporting its
    /// `rank_start` (as a `saturating_sub` formulation would) places it on
    /// top of whatever category happens to start there, letting RSRL
    /// windows match values the masked file never publishes. The `NaN`
    /// sentinel makes every window comparison false instead, so absent
    /// categories are never rank-compatible with anything.
    pub fn midrank(&self, k: usize, v: Code) -> f64 {
        let c = self.counts[k][v as usize];
        if c == 0 {
            return f64::NAN;
        }
        self.rank_start[k][v as usize] as f64 + (c - 1) as f64 / 2.0
    }

    /// Update after one cell of attribute `k` changed from `old` to `new`.
    /// Recomputes that attribute's rank starts (O(c)); no allocation beyond
    /// the rank rebuild's scratch. See [`MaskedStats::apply_patch`] for the
    /// variant that reports which midranks moved.
    pub fn apply_mutation(&mut self, prep: &PreparedOriginal, k: usize, old: Code, new: Code) {
        let _ = self.apply_patch(prep, [(k, old, new)]);
    }

    /// Update after a batch of cell changes, given as `(attribute, old,
    /// new)` triples (row identities are irrelevant to marginal counts).
    /// Count deltas are applied per change; the O(c log c) rank-start
    /// rebuild runs once per *touched attribute*, which is what makes
    /// multi-cell patches cheaper than a chain of single-cell updates.
    ///
    /// Returns every `(attribute, category)` whose **midrank actually
    /// moved** — a count change of one category shifts the rank starts of
    /// every category after it in the total order, so midranks of
    /// *untouched* categories move too. The report is what lets the
    /// incremental evaluator re-credit exactly the records whose RSRL rank
    /// windows changed, instead of only the touched records (the PR 4
    /// approximation) or the whole file.
    pub fn apply_patch<I>(&mut self, prep: &PreparedOriginal, changed: I) -> Vec<MovedCategory>
    where
        I: IntoIterator<Item = (usize, Code, Code)>,
    {
        // snapshot each attribute's (counts, rank starts) on first touch,
        // so old midranks survive the in-place update
        let mut snapshots: Vec<(usize, Vec<u32>, Vec<usize>)> = Vec::new();
        for (k, old, new) in changed {
            if old == new {
                continue;
            }
            if !snapshots.iter().any(|(sk, _, _)| *sk == k) {
                snapshots.push((k, self.counts[k].clone(), self.rank_start[k].clone()));
            }
            self.counts[k][old as usize] -= 1;
            self.counts[k][new as usize] += 1;
        }
        let mut moved = Vec::new();
        for (k, old_counts, old_starts) in snapshots {
            recompute_rank_start(&self.counts[k], prep.order_keys(k), &mut self.rank_start[k]);
            for v in 0..self.counts[k].len() {
                if old_counts[v] == self.counts[k][v] && old_starts[v] == self.rank_start[k][v] {
                    continue;
                }
                let old_midrank = if old_counts[v] == 0 {
                    f64::NAN
                } else {
                    old_starts[v] as f64 + (old_counts[v] - 1) as f64 / 2.0
                };
                moved.push(MovedCategory {
                    attr: k,
                    cat: v as Code,
                    old_midrank,
                    new_midrank: self.midrank(k, v as Code),
                });
            }
        }
        moved
    }
}

/// An `(attribute, category)` whose masked-file midrank changed under a
/// [`MaskedStats::apply_patch`], with the midrank before and after
/// (`NaN` marks a category absent from the masked file on that side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovedCategory {
    /// Protected-attribute index.
    pub attr: usize,
    /// Category code within that attribute.
    pub cat: Code,
    /// Midrank before the patch (`NaN` if the category was absent).
    pub old_midrank: f64,
    /// Midrank after the patch (`NaN` if the category is now absent).
    pub new_midrank: f64,
}

fn rank_starts(counts: &[Vec<u32>], order_keys: &[Vec<usize>]) -> Vec<Vec<usize>> {
    counts
        .iter()
        .zip(order_keys.iter())
        .map(|(cnt, keys)| {
            let mut start = vec![0usize; cnt.len()];
            recompute_rank_start(cnt, keys, &mut start);
            start
        })
        .collect()
}

fn recompute_rank_start(counts: &[u32], keys: &[usize], out: &mut [usize]) {
    // categories visited in total-order position
    let mut by_key: Vec<usize> = (0..counts.len()).collect();
    by_key.sort_by_key(|&c| keys[c]);
    let mut cum = 0usize;
    for &c in &by_key {
        out[c] = cum;
        cum += counts[c] as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

    fn sub() -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(2).with_records(100))
            .protected_subtable()
    }

    #[test]
    fn counts_and_probs_are_consistent() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        for k in 0..p.n_attrs() {
            let total: u32 = p.counts(k).iter().sum();
            assert_eq!(total as usize, p.n_rows());
            let psum: f64 = p.probs(k).iter().sum();
            assert!((psum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ordinal_order_keys_are_identity() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        // EDUCATION (k=0) is ordinal in Adult
        assert!(p.is_ordinal(0));
        assert_eq!(p.order_keys(0), &(0..16).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn nominal_order_keys_sort_by_frequency() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        // MARITAL (k=1) is nominal: key order must sort counts ascending
        assert!(!p.is_ordinal(1));
        let keys = p.order_keys(1);
        let counts = p.counts(1);
        let mut by_key: Vec<usize> = (0..counts.len()).collect();
        by_key.sort_by_key(|&c| keys[c]);
        for w in by_key.windows(2) {
            assert!(counts[w[0]] <= counts[w[1]]);
        }
    }

    #[test]
    fn rank_starts_partition_the_records() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        for k in 0..p.n_attrs() {
            let starts = p.rank_start(k);
            let counts = p.counts(k);
            let keys = p.order_keys(k);
            let mut spans: Vec<(usize, usize)> = (0..counts.len())
                .filter(|&c| counts[c] > 0)
                .map(|c| (starts[c], starts[c] + counts[c] as usize))
                .collect();
            spans.sort_unstable();
            let mut expected = 0usize;
            for (s0, s1) in spans {
                assert_eq!(s0, expected);
                expected = s1;
            }
            assert_eq!(expected, p.n_rows());
            let _ = keys;
        }
    }

    #[test]
    fn cell_distance_semantics() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        // ordinal EDUCATION: 16 categories, span 15
        assert!((p.cell_distance(0, 0, 15) - 1.0).abs() < 1e-12);
        assert!((p.cell_distance(0, 3, 3) - 0.0).abs() < 1e-12);
        assert!((p.cell_distance(0, 3, 4) - 1.0 / 15.0).abs() < 1e-12);
        // nominal MARITAL: 0/1
        assert_eq!(p.cell_distance(1, 2, 2), 0.0);
        assert_eq!(p.cell_distance(1, 2, 3), 1.0);
    }

    #[test]
    fn masked_stats_mutation_matches_rebuild() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let mut m = s.clone();
        let mut stats = MaskedStats::build(&p, &m);
        let muts = [(0usize, 0usize, 9u16), (5, 1, 3), (10, 2, 7), (0, 0, 2)];
        for &(row, k, new) in &muts {
            let new = new % p.cats(k) as Code;
            let old = m.get(row, k);
            m.set(row, k, new);
            stats.apply_mutation(&p, k, old, new);
        }
        assert_eq!(stats, MaskedStats::build(&p, &m));
    }

    #[test]
    fn masked_stats_patch_matches_rebuild() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let mut m = s.clone();
        let mut stats = MaskedStats::build(&p, &m);
        let muts = [(0usize, 0usize, 9u16), (5, 1, 3), (10, 2, 7), (0, 0, 2)];
        let mut batch = Vec::new();
        for &(row, k, new) in &muts {
            let new = new % p.cats(k) as Code;
            let old = m.get(row, k);
            m.set(row, k, new);
            batch.push((k, old, new));
        }
        stats.apply_patch(&p, batch);
        assert_eq!(stats, MaskedStats::build(&p, &m));
    }

    #[test]
    fn midrank_of_unique_value() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let stats = MaskedStats::build(&p, &s);
        for k in 0..p.n_attrs() {
            for v in 0..p.cats(k) as Code {
                if stats.counts[k][v as usize] == 1 {
                    assert_eq!(stats.midrank(k, v), stats.rank_start[k][v as usize] as f64);
                }
            }
        }
    }

    #[test]
    fn midrank_of_absent_category_is_nan() {
        // regression: a zero-count category used to report midrank ==
        // rank_start (via saturating_sub), aliasing whatever present
        // category starts at that rank and letting RSRL windows match
        // values the masked file never publishes
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let mut m = s.clone();
        // wipe category 0 of attribute 0 out of the masked file
        for r in 0..m.n_rows() {
            if m.get(r, 0) == 0 {
                m.set(r, 0, 1);
            }
        }
        let stats = MaskedStats::build(&p, &m);
        assert_eq!(stats.counts[0][0], 0);
        assert!(stats.midrank(0, 0).is_nan(), "absent category must be NaN");
        // present categories keep real midranks
        assert!(stats.midrank(0, 1).is_finite());
    }

    #[test]
    fn apply_patch_reports_exactly_the_moved_midranks() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let mut m = s.clone();
        let mut stats = MaskedStats::build(&p, &m);
        let before = stats.clone();
        let (row, k) = (0usize, 0usize);
        let old = m.get(row, k);
        let new = (old + 3) % p.cats(k) as Code;
        m.set(row, k, new);
        let moved = stats.apply_patch(&p, [(k, old, new)]);
        // every reported category really moved, with the right endpoints …
        for mc in &moved {
            assert_eq!(mc.attr, k);
            let was = before.midrank(mc.attr, mc.cat);
            let is = stats.midrank(mc.attr, mc.cat);
            assert!(
                was.to_bits() == mc.old_midrank.to_bits()
                    && is.to_bits() == mc.new_midrank.to_bits(),
                "cat {}: reported {} -> {}, actual {} -> {}",
                mc.cat,
                mc.old_midrank,
                mc.new_midrank,
                was,
                is
            );
        }
        // … and every unreported category kept count and rank start
        for v in 0..p.cats(k) {
            if moved.iter().any(|mc| mc.cat == v as Code) {
                continue;
            }
            assert_eq!(before.counts[k][v], stats.counts[k][v]);
            assert_eq!(before.rank_start[k][v], stats.rank_start[k][v]);
        }
        // both mutated categories are always part of the report
        assert!(moved.iter().any(|mc| mc.cat == old));
        assert!(moved.iter().any(|mc| mc.cat == new));
    }

    #[test]
    fn incompatible_masked_rejected() {
        let s = sub();
        let p = PreparedOriginal::new(&s);
        let other = DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(2).with_records(50))
            .protected_subtable();
        assert!(p.check_compatible(&other).is_err());
        assert!(p.check_compatible(&s).is_ok());
    }
}
