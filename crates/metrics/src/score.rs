//! Score aggregation: collapsing (IL, DR) into a single fitness value.

/// How information loss and disclosure risk combine into one score
/// (smaller is better in all variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreAggregator {
    /// The paper's Eq. 1: `(IL + DR) / 2`. Allows perfect trade-offs —
    /// `(0, 40)` scores like `(20, 20)` — which §3.1 shows is undesirable
    /// for categorical data.
    Mean,
    /// The paper's Eq. 2: `max(IL, DR)`. Penalizes unbalanced protections;
    /// the paper's preferred choice.
    Max,
    /// Extension: convex combination `w·IL + (1−w)·DR`. `Weighted { w: 0.5 }`
    /// coincides with [`ScoreAggregator::Mean`].
    Weighted {
        /// Weight of the information-loss term, in `[0, 1]`.
        w: f64,
    },
    /// Extension: Euclidean distance to the ideal point `(0, 0)`, scaled by
    /// `1/√2` so the range stays `[0, 100]`. Strictly convex: balanced pairs
    /// beat unbalanced pairs of equal mean, but gradients never vanish the
    /// way `Max` plateaus do.
    DistanceToIdeal,
}

impl ScoreAggregator {
    /// Aggregate an (IL, DR) pair.
    pub fn score(self, il: f64, dr: f64) -> f64 {
        match self {
            ScoreAggregator::Mean => (il + dr) / 2.0,
            ScoreAggregator::Max => il.max(dr),
            ScoreAggregator::Weighted { w } => {
                let w = w.clamp(0.0, 1.0);
                w * il + (1.0 - w) * dr
            }
            ScoreAggregator::DistanceToIdeal => ((il * il + dr * dr) / 2.0).sqrt(),
        }
    }

    /// Short identifier used in reports and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            ScoreAggregator::Mean => "mean",
            ScoreAggregator::Max => "max",
            ScoreAggregator::Weighted { .. } => "weighted",
            ScoreAggregator::DistanceToIdeal => "dist",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_allows_perfect_tradeoff() {
        let a = ScoreAggregator::Mean.score(0.0, 40.0);
        let b = ScoreAggregator::Mean.score(20.0, 20.0);
        assert_eq!(a, b);
    }

    #[test]
    fn max_prefers_balance() {
        let unbalanced = ScoreAggregator::Max.score(0.0, 40.0);
        let balanced = ScoreAggregator::Max.score(20.0, 20.0);
        assert!(balanced < unbalanced);
    }

    #[test]
    fn weighted_half_is_mean() {
        let w = ScoreAggregator::Weighted { w: 0.5 };
        assert_eq!(w.score(30.0, 10.0), ScoreAggregator::Mean.score(30.0, 10.0));
    }

    #[test]
    fn weighted_extremes() {
        assert_eq!(ScoreAggregator::Weighted { w: 1.0 }.score(30.0, 10.0), 30.0);
        assert_eq!(ScoreAggregator::Weighted { w: 0.0 }.score(30.0, 10.0), 10.0);
        // out-of-range weights clamp
        assert_eq!(ScoreAggregator::Weighted { w: 2.0 }.score(30.0, 10.0), 30.0);
    }

    #[test]
    fn distance_to_ideal_prefers_balance_and_stays_in_range() {
        let d = ScoreAggregator::DistanceToIdeal;
        assert!(d.score(20.0, 20.0) < d.score(0.0, 40.0));
        assert!((d.score(100.0, 100.0) - 100.0).abs() < 1e-9);
        assert_eq!(d.score(0.0, 0.0), 0.0);
    }

    #[test]
    fn all_aggregators_are_zero_at_ideal() {
        for agg in [
            ScoreAggregator::Mean,
            ScoreAggregator::Max,
            ScoreAggregator::Weighted { w: 0.3 },
            ScoreAggregator::DistanceToIdeal,
        ] {
            assert_eq!(agg.score(0.0, 0.0), 0.0);
        }
    }

    #[test]
    fn monotone_in_both_arguments() {
        for agg in [
            ScoreAggregator::Mean,
            ScoreAggregator::Max,
            ScoreAggregator::Weighted { w: 0.4 },
            ScoreAggregator::DistanceToIdeal,
        ] {
            assert!(agg.score(10.0, 20.0) <= agg.score(15.0, 20.0));
            assert!(agg.score(10.0, 20.0) <= agg.score(10.0, 25.0));
        }
    }
}
