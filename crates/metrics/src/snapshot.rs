//! Persistent prepared-evaluator snapshots: a versioned binary codec that
//! serializes a [`PreparedOriginal`] (keyed by its original table and
//! [`MetricConfig`]) to disk, so later sessions rehydrate an [`Evaluator`]
//! with a near-memcpy load instead of re-running the O(n·a²) preparation.
//!
//! # On-disk layout (format version 1)
//!
//! All integers are little-endian; floats are stored as their IEEE-754 bit
//! patterns (`f64::to_bits`), which is what makes a rehydrated evaluator
//! assess **bit-identically** to a freshly prepared one.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────┐
//! │ header                                                     │
//! │   magic         8 bytes   "CDPSNAP\0"                      │
//! │   version       u32       FORMAT_VERSION (currently 1)     │
//! │   content_hash  u64       FNV-1a of (original, config)     │
//! │   n_sections    u32                                        │
//! ├────────────────────────────────────────────────────────────┤
//! │ section × n_sections                                       │
//! │   tag           u32       META / STATS / TABLES / PINDEX   │
//! │   len           u64       payload byte length              │
//! │   payload       len bytes                                  │
//! │   checksum      u64       FNV-1a of the payload            │
//! └────────────────────────────────────────────────────────────┘
//! ```
//!
//! Sections:
//!
//! * **META** — row/attribute counts, per-attribute dictionary sizes and
//!   ordinal flags (cross-checked against the live original at load time);
//! * **STATS** — marginal counts, probabilities, total-order keys, rank
//!   starts, `1/(c−1)` spans, chance-agreement probabilities and the
//!   per-category minimum cell distances;
//! * **TABLES** — the order-1 and order-2 contingency tables;
//! * **PINDEX** — the distinct-pattern index as its serialized parts
//!   (dictionary, multiplicities, row map); postings and the lookup table
//!   rebuild deterministically in pattern-id order.
//!
//! The original table itself is **not** stored: the loader always holds the
//! live original (it is the cache key), so the snapshot instead carries a
//! content hash of `(original, config)` and is rejected when it does not
//! match — a snapshot can never be rehydrated against the wrong data.
//!
//! # Versioning policy
//!
//! `FORMAT_VERSION` bumps on **any** layout change — there is no in-place
//! migration. A version mismatch, like every other defect (truncation,
//! bit flips, bad checksums, shape drift against the live original), makes
//! [`load`] return `None` and the caller falls back to a cold preparation,
//! which re-writes the snapshot in the current format. Corrupt snapshots
//! therefore cost one re-preparation, never a panic or a wrong result.
//!
//! # Atomicity
//!
//! [`write()`] serializes to a temp file in the target directory and
//! `rename`s it into place, so concurrent writers and killed processes
//! leave either the old file, the new file, or no file — never a torn one.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cdp_dataset::{Code, PatternIndex, SubTable};

use crate::contingency::ContingencyTables;
use crate::evaluator::{Evaluator, LinkageMode, MetricConfig};
use crate::prepared::PreparedOriginal;

/// First bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"CDPSNAP\0";

/// Current snapshot format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// File extension of snapshot files (without the dot).
pub const EXTENSION: &str = "cdpsnap";

const TAG_META: u32 = 1;
const TAG_STATS: u32 = 2;
const TAG_TABLES: u32 = 3;
const TAG_PINDEX: u32 = 4;

// ---------------------------------------------------------------------------
// FNV-1a hashing
// ---------------------------------------------------------------------------

/// Incremental 64-bit FNV-1a-style hasher, folded over little-endian
/// *words* rather than bytes: one xor-multiply per 8 input bytes (with a
/// byte-at-a-time tail), so hashing the multi-megabyte arena of a large
/// original costs ~1/8th of classic byte-FNV. Hand-rolled — the snapshot
/// format must not depend on `std`'s unstable `Hasher` output — and used
/// for both the content hash and the per-section checksums, so the word
/// folding is simply part of format v1.
struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.0 ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Hash a code slice as its little-endian byte stream, four codes per
    /// word (the arena of a 100k-row original is the hash's hot loop).
    fn write_codes(&mut self, codes: &[Code]) {
        let mut chunks = codes.chunks_exact(4);
        for c in &mut chunks {
            self.0 ^= u64::from(c[0])
                | u64::from(c[1]) << 16
                | u64::from(c[2]) << 32
                | u64::from(c[3]) << 48;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        for &c in chunks.remainder() {
            self.0 ^= u64::from(c);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of a snapshot key: the original table (shape, per-attribute
/// dictionaries, every cell) and the metric configuration. Two keys collide
/// only if FNV-1a collides; a mismatch always rejects the snapshot.
pub fn content_hash(original: &SubTable, cfg: &MetricConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(original.n_rows() as u64);
    h.write_u64(original.n_attrs() as u64);
    for &j in original.attr_indices() {
        h.write_u64(j as u64);
    }
    for k in 0..original.n_attrs() {
        let attr = original.attr(k);
        h.write_u64(attr.name().len() as u64);
        h.write(attr.name().as_bytes());
        h.write_u64(u64::from(attr.kind().is_ordinal()));
        h.write_u64(attr.n_categories() as u64);
    }
    h.write_codes(original.arena());
    h.write_u64(cfg.interval_fraction.to_bits());
    h.write_u64(cfg.rsrl_window_fraction.to_bits());
    h.write_u64(cfg.prl_em_iters as u64);
    h.write_u64(match cfg.linkage {
        LinkageMode::Pairs => 0,
        LinkageMode::Blocked => 1,
    });
    h.finish()
}

// ---------------------------------------------------------------------------
// Primitive little-endian codec
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::new())
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Option<usize> {
        self.u64()?.try_into().ok()
    }

    /// Bulk-decode `n` little-endian `u16`s (one bounds check, not `n`).
    fn u16_vec(&mut self, n: usize) -> Option<Vec<u16>> {
        let bytes = self.take(n.checked_mul(2)?)?;
        Some(
            bytes
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect(),
        )
    }

    /// Bulk-decode `n` little-endian `u32`s (one bounds check, not `n`).
    fn u32_vec(&mut self, n: usize) -> Option<Vec<u32>> {
        let bytes = self.take(n.checked_mul(4)?)?;
        Some(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect(),
        )
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None, // a flipped flag byte must not decode
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// File name of the snapshot for a key hash: `<hash as 16 hex digits>.cdpsnap`.
pub fn file_name(hash: u64) -> String {
    format!("{hash:016x}.{EXTENSION}")
}

/// Full path of the snapshot for `(original, cfg)` under `dir`.
pub fn snapshot_path(dir: &Path, original: &SubTable, cfg: &MetricConfig) -> PathBuf {
    dir.join(file_name(content_hash(original, cfg)))
}

fn encode(evaluator: &Evaluator) -> Vec<u8> {
    let prep = evaluator.prepared();
    let (n, a) = (prep.n_rows(), prep.n_attrs());

    let mut meta = Enc::new();
    meta.usize(n);
    meta.usize(a);
    for k in 0..a {
        meta.usize(prep.cats(k));
        meta.u8(u8::from(prep.is_ordinal(k)));
    }

    let mut stats = Enc::new();
    for k in 0..a {
        stats.f64(prep.inv_span(k));
        stats.f64(prep.chance_agreement(k));
        for &c in prep.counts(k) {
            stats.u32(c);
        }
        for &p in prep.probs(k) {
            stats.f64(p);
        }
        for &o in prep.order_keys(k) {
            stats.usize(o);
        }
        for &r in prep.rank_start(k) {
            stats.usize(r);
        }
        for x in 0..prep.cats(k) {
            stats.f64(prep.min_cell_dist(k, x as Code));
        }
    }

    let mut tables = Enc::new();
    let (singles, pairs, cats) = prep.tables().raw_parts();
    debug_assert_eq!(cats.len(), a);
    for single in singles {
        for &c in single {
            tables.u32(c);
        }
    }
    tables.usize(pairs.len());
    for (i, j, table) in pairs {
        tables.usize(*i);
        tables.usize(*j);
        for &c in table {
            tables.u32(c);
        }
    }

    let mut pindex = Enc::new();
    let (codes, mult, row_pid) = prep.pattern_index().raw_parts();
    pindex.usize(mult.len());
    for &c in codes {
        pindex.u16(c);
    }
    for &m in mult {
        pindex.u32(m);
    }
    for &p in row_pid {
        pindex.u32(p);
    }

    let sections: [(u32, Vec<u8>); 4] = [
        (TAG_META, meta.0),
        (TAG_STATS, stats.0),
        (TAG_TABLES, tables.0),
        (TAG_PINDEX, pindex.0),
    ];

    let mut out = Enc::new();
    out.0.extend_from_slice(MAGIC);
    out.u32(FORMAT_VERSION);
    out.u64(content_hash(prep.orig(), evaluator.config()));
    out.u32(sections.len() as u32);
    for (tag, payload) in &sections {
        out.u32(*tag);
        out.u64(payload.len() as u64);
        out.0.extend_from_slice(payload);
        out.u64(checksum(payload));
    }
    out.0
}

/// Serialize `evaluator`'s preparation into `dir` (created if missing),
/// atomically: the bytes land in a temp file that is renamed onto the
/// final `<content-hash>.cdpsnap` name.
///
/// # Errors
/// Any filesystem error; the evaluator cache treats a failed write as a
/// non-event (the snapshot is an optimization, not a durability contract).
pub fn write(evaluator: &Evaluator, dir: &Path) -> io::Result<PathBuf> {
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    let hash = content_hash(evaluator.original(), evaluator.config());
    let path = dir.join(file_name(hash));
    let tmp = dir.join(format!(
        ".{:016x}.{}.{}.tmp",
        hash,
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, encode(evaluator))?;
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Header and section table of a parsed snapshot file.
struct Parsed<'a> {
    content_hash: u64,
    sections: Vec<(u32, &'a [u8])>,
}

/// Structural parse: magic, version, section framing and checksums. Does
/// not interpret payloads.
fn parse(bytes: &[u8]) -> Option<Parsed<'_>> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if d.u32()? != FORMAT_VERSION {
        return None;
    }
    let content_hash = d.u64()?;
    let n_sections = d.u32()?;
    let mut sections = Vec::with_capacity(n_sections as usize);
    for _ in 0..n_sections {
        let tag = d.u32()?;
        let len = d.usize()?;
        let payload = d.take(len)?;
        if d.u64()? != checksum(payload) {
            return None;
        }
        sections.push((tag, payload));
    }
    if !d.done() {
        return None; // trailing garbage
    }
    Some(Parsed {
        content_hash,
        sections,
    })
}

fn section<'a>(parsed: &Parsed<'a>, tag: u32) -> Option<&'a [u8]> {
    parsed
        .sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
}

/// Rehydrate an evaluator for `(original, cfg)` from the snapshot at
/// `path`. Returns `None` — never panics, never a partial value — when the
/// file is missing, truncated, bit-flipped, from another format version,
/// or written for a different `(original, cfg)` key; callers fall back to
/// a cold preparation.
pub fn load(path: &Path, original: &SubTable, cfg: &MetricConfig) -> Option<Evaluator> {
    let bytes = std::fs::read(path).ok()?;
    let parsed = parse(&bytes)?;
    if parsed.content_hash != content_hash(original, cfg) {
        return None;
    }
    let (n, a) = (original.n_rows(), original.n_attrs());

    // META: the snapshot's shape must match the live original exactly
    let mut d = Dec::new(section(&parsed, TAG_META)?);
    if d.usize()? != n || d.usize()? != a {
        return None;
    }
    let mut cats = Vec::with_capacity(a);
    let mut ordinal = Vec::with_capacity(a);
    for k in 0..a {
        let c = d.usize()?;
        let o = d.bool()?;
        if c != original.attr(k).n_categories() || o != original.attr(k).kind().is_ordinal() {
            return None;
        }
        cats.push(c);
        ordinal.push(o);
    }
    if !d.done() {
        return None;
    }

    // STATS
    let mut d = Dec::new(section(&parsed, TAG_STATS)?);
    let mut inv_span = Vec::with_capacity(a);
    let mut chance_agreement = Vec::with_capacity(a);
    let mut counts = Vec::with_capacity(a);
    let mut probs = Vec::with_capacity(a);
    let mut order_keys = Vec::with_capacity(a);
    let mut rank_start = Vec::with_capacity(a);
    let mut min_cell_dist = Vec::with_capacity(a);
    for &c in &cats {
        inv_span.push(d.f64()?);
        chance_agreement.push(d.f64()?);
        counts.push(d.u32_vec(c)?);
        probs.push((0..c).map(|_| d.f64()).collect::<Option<Vec<_>>>()?);
        order_keys.push((0..c).map(|_| d.usize()).collect::<Option<Vec<_>>>()?);
        rank_start.push((0..c).map(|_| d.usize()).collect::<Option<Vec<_>>>()?);
        min_cell_dist.push((0..c).map(|_| d.f64()).collect::<Option<Vec<_>>>()?);
    }
    if !d.done() {
        return None;
    }

    // TABLES
    let mut d = Dec::new(section(&parsed, TAG_TABLES)?);
    let mut singles = Vec::with_capacity(a);
    for &c in &cats {
        singles.push(d.u32_vec(c)?);
    }
    let n_pairs = d.usize()?;
    if n_pairs != a * a.saturating_sub(1) / 2 {
        return None;
    }
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let i = d.usize()?;
        let j = d.usize()?;
        if i >= a || j >= a || i >= j {
            return None;
        }
        let cells = cats[i].checked_mul(cats[j])?;
        let table = d.u32_vec(cells)?;
        pairs.push((i, j, table));
    }
    if !d.done() {
        return None;
    }
    let tables = ContingencyTables::from_parts(singles, pairs, cats.clone(), n);

    // PINDEX
    let mut d = Dec::new(section(&parsed, TAG_PINDEX)?);
    let n_patterns = d.usize()?;
    let n_codes = n_patterns.checked_mul(a)?;
    let codes = d.u16_vec(n_codes)?;
    let mult = d.u32_vec(n_patterns)?;
    let row_pid = d.u32_vec(n)?;
    if !d.done() {
        return None;
    }
    let pattern_index = PatternIndex::from_parts(a, codes, mult, row_pid, &cats).ok()?;

    let prep = PreparedOriginal::from_parts(
        original.clone(),
        cats,
        ordinal,
        inv_span,
        counts,
        probs,
        order_keys,
        rank_start,
        tables,
        chance_agreement,
        pattern_index,
        min_cell_dist,
    );
    Evaluator::from_prepared(prep, *cfg).ok()
}

// ---------------------------------------------------------------------------
// Inspection (for `cdp cache ls` / `verify`)
// ---------------------------------------------------------------------------

/// Summary of one snapshot file, as reported by [`inspect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version of the file.
    pub version: u32,
    /// Content hash of the `(original, config)` key it was written for.
    pub content_hash: u64,
    /// Records of the snapshotted original.
    pub rows: usize,
    /// Protected attributes of the snapshotted original.
    pub attrs: usize,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// Structurally verify the snapshot at `path` without its original: magic,
/// format version, section framing and every checksum, plus the META
/// shape. (The content hash can only be cross-checked by [`load`], which
/// holds the live original.)
///
/// # Errors
/// A human-readable description of the first defect found.
pub fn inspect(path: &Path) -> std::result::Result<SnapshotInfo, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    let mut d = Dec::new(&bytes);
    if d.take(MAGIC.len()) != Some(MAGIC.as_slice()) {
        return Err("bad magic (not a snapshot file)".into());
    }
    let version = d.u32().ok_or("truncated header")?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let parsed = parse(&bytes).ok_or("corrupt framing or checksum mismatch")?;
    let mut m = Dec::new(section(&parsed, TAG_META).ok_or("missing META section")?);
    let rows = m.usize().ok_or("truncated META")?;
    let attrs = m.usize().ok_or("truncated META")?;
    Ok(SnapshotInfo {
        version,
        content_hash: parsed.content_hash,
        rows,
        attrs,
        bytes: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdp_dataset::generators::{DatasetKind, GeneratorConfig};

    fn original(n: usize) -> SubTable {
        DatasetKind::Adult
            .generate(&GeneratorConfig::seeded(21).with_records(n))
            .protected_subtable()
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cdp_snapshot_tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn masked(s: &SubTable) -> SubTable {
        let mut m = s.clone();
        for r in 0..m.n_rows() {
            let k = r % m.n_attrs();
            let c = m.attr(k).n_categories() as Code;
            m.set(r, k, (m.get(r, k) + 1) % c);
        }
        m
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let s = original(120);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("roundtrip");
        let path = write(&ev, &dir).unwrap();
        assert_eq!(path, snapshot_path(&dir, &s, &cfg));
        let loaded = load(&path, &s, &cfg).expect("clean snapshot loads");
        // whole assessments, identity and a masked file, bit for bit
        let m = masked(&s);
        assert_eq!(ev.evaluate(&s), loaded.evaluate(&s));
        assert_eq!(ev.evaluate(&m), loaded.evaluate(&m));
        // the delta-evaluation engine works on the rehydrated state too
        let mut m2 = m.clone();
        let st = loaded.assess(&m2);
        let old = m2.get(3, 0);
        m2.set(3, 0, (old + 2) % loaded.prepared().cats(0) as Code);
        let patched = loaded.reassess_mutation(&st, &m2, 3, 0, old);
        assert_eq!(patched.assessment, ev.assess(&m2).assessment);
    }

    #[test]
    fn pairs_linkage_config_round_trips_too() {
        let s = original(80);
        let cfg = MetricConfig {
            linkage: LinkageMode::Pairs,
            ..MetricConfig::default()
        };
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("pairs");
        let path = write(&ev, &dir).unwrap();
        let loaded = load(&path, &s, &cfg).expect("loads under pairs linkage");
        assert_eq!(ev.evaluate(&masked(&s)), loaded.evaluate(&masked(&s)));
        // the blocked-mode snapshot is a different key: absent
        assert!(load(
            &snapshot_path(&dir, &s, &MetricConfig::default()),
            &s,
            &MetricConfig::default()
        )
        .is_none());
    }

    #[test]
    fn wrong_original_and_wrong_config_are_rejected() {
        let s = original(100);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("wrongkey");
        let path = write(&ev, &dir).unwrap();
        // same shape, different cells
        let other = original(100);
        let other = masked(&other);
        assert!(load(&path, &other, &cfg).is_none(), "stale content hash");
        // same original, different config
        let other_cfg = MetricConfig {
            interval_fraction: 0.2,
            ..cfg
        };
        assert!(load(&path, &s, &other_cfg).is_none(), "different config");
        // the right key still loads
        assert!(load(&path, &s, &cfg).is_some());
    }

    #[test]
    fn truncation_at_any_boundary_falls_back() {
        let s = original(60);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("trunc");
        let path = write(&ev, &dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // a spread of truncation points: inside the header, inside each
        // section, and one byte short of complete
        for frac in [
            1,
            8,
            12,
            24,
            bytes.len() / 4,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            let cut = &bytes[..frac];
            let p = dir.join("cut.cdpsnap");
            std::fs::write(&p, cut).unwrap();
            assert!(
                load(&p, &s, &cfg).is_none(),
                "truncated at {frac} must not load"
            );
            assert!(inspect(&p).is_err(), "truncated at {frac} must not verify");
        }
    }

    #[test]
    fn a_flipped_byte_in_each_section_falls_back() {
        let s = original(60);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("flip");
        let path = write(&ev, &dir).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // flip one byte at evenly spread offsets covering every section
        let step = (bytes.len() / 16).max(1);
        for offset in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            let p = dir.join("flip.cdpsnap");
            std::fs::write(&p, &corrupt).unwrap();
            assert!(
                load(&p, &s, &cfg).is_none(),
                "bit flip at {offset} must not load"
            );
        }
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let s = original(50);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("version");
        let path = write(&ev, &dir).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path, &s, &cfg).is_none());
        let err = inspect(&path).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn concurrent_writers_leave_a_loadable_file() {
        let s = original(80);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("concurrent");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (ev, dir) = (&ev, &dir);
                scope.spawn(move || write(ev, dir).unwrap());
            }
        });
        // whatever interleaving the renames took, the final file is whole
        let path = snapshot_path(&dir, &s, &cfg);
        let loaded = load(&path, &s, &cfg).expect("atomic rename keeps the file whole");
        assert_eq!(ev.evaluate(&s), loaded.evaluate(&s));
        // and no temp litter survives
        let stray = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_none_or(|x| x != EXTENSION))
            .count();
        assert_eq!(stray, 0, "temp files must be renamed away");
    }

    #[test]
    fn inspect_reports_the_header() {
        let s = original(70);
        let cfg = MetricConfig::default();
        let ev = Evaluator::new(&s, cfg).unwrap();
        let dir = tmp_dir("inspect");
        let path = write(&ev, &dir).unwrap();
        let info = inspect(&path).unwrap();
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.content_hash, content_hash(&s, &cfg));
        assert_eq!(info.rows, 70);
        assert_eq!(info.attrs, s.n_attrs());
        assert_eq!(info.bytes, std::fs::metadata(&path).unwrap().len());
        // not-a-snapshot files are named as such
        let junk = dir.join("junk.cdpsnap");
        std::fs::write(&junk, b"hello").unwrap();
        assert!(inspect(&junk).unwrap_err().contains("magic"));
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let s = original(40);
        let cfg = MetricConfig::default();
        assert!(load(Path::new("/nonexistent/zzz.cdpsnap"), &s, &cfg).is_none());
    }
}
