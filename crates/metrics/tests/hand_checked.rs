//! Hand-computed ground truth on a 4-record, 2-attribute table.
//!
//! Original (O ordinal with 3 categories, N nominal with 2):
//!
//! | row | O | N |
//! |-----|---|---|
//! | 0   | 0 | 0 |
//! | 1   | 1 | 0 |
//! | 2   | 2 | 1 |
//! | 3   | 1 | 1 |
//!
//! The masked variant changes exactly one cell: row 0's O from 0 to 1.
//! Every expected value below is derived in the comments, making this the
//! arithmetic anchor for the whole measure suite.

use std::sync::Arc;

use cdp_dataset::{AttrKind, Attribute, PatternIndex, Schema, SubTable};
use cdp_metrics::linkage::{dbrl_credit, dbrl_credit_blocked, dbrl_credits_blocked};
use cdp_metrics::{Evaluator, LinkageMode, MetricConfig, PreparedOriginal};

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::new(vec![
            Attribute::new(
                "O",
                AttrKind::Ordinal,
                vec!["o0".into(), "o1".into(), "o2".into()],
            )
            .unwrap(),
            Attribute::new("N", AttrKind::Nominal, vec!["n0".into(), "n1".into()]).unwrap(),
        ])
        .unwrap(),
    )
}

fn original() -> SubTable {
    SubTable::new(
        schema(),
        vec![0, 1],
        vec![vec![0, 1, 2, 1], vec![0, 0, 1, 1]],
    )
    .unwrap()
}

fn masked() -> SubTable {
    // row 0: O 0 -> 1
    SubTable::new(
        schema(),
        vec![0, 1],
        vec![vec![1, 1, 2, 1], vec![0, 0, 1, 1]],
    )
    .unwrap()
}

fn evaluator() -> Evaluator {
    Evaluator::new(&original(), MetricConfig::default()).unwrap()
}

const TOL: f64 = 1e-3;

#[test]
fn dbil_single_ordinal_step() {
    // one changed cell at ordinal distance |0-1|/(3-1) = 0.5;
    // 8 cells total -> 100 * 0.5 / 8 = 6.25
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.il_parts.dbil - 6.25).abs() < TOL,
        "dbil = {}",
        a.il_parts.dbil
    );
}

#[test]
fn ctbil_by_table_counting() {
    // singles O: [1,2,1] vs [0,3,1] -> |diff| = 2; singles N: 0;
    // pair O×N: orig {(0,0):1,(1,0):1,(2,1):1,(1,1):1},
    //           masked {(1,0):2,(2,1):1,(1,1):1} -> |diff| = 2;
    // total 4 over denominator 2·n·T = 2·4·3 = 24 -> 100·4/24 = 16.667
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.il_parts.ctbil - 100.0 * 4.0 / 24.0).abs() < TOL,
        "ctbil = {}",
        a.il_parts.ctbil
    );
}

#[test]
fn ebil_from_the_confusion_channel() {
    // attr O: masked value o1 was published for originals {o0 ×1, o1 ×2},
    // so H(orig | masked=o1) = H(1/3, 2/3) = 0.918296 bits, charged to 3
    // records -> 2.754887 bits. masked o2 is unambiguous. attr N identical.
    // capacity = n · (log2 3 + log2 2) = 4 · 2.584963 = 10.339850
    // EBIL = 100 · 2.754887 / 10.339850 = 26.6434
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.il_parts.ebil - 26.6434).abs() < TOL,
        "ebil = {}",
        a.il_parts.ebil
    );
}

#[test]
fn interval_disclosure_window_catches_one_step() {
    // O window = max(1, round(0.1·2)) = 1 -> the 0->1 change stays inside
    // the interval; everything else is identical. ID = 100.
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.dr_parts.id - 100.0).abs() < TOL,
        "id = {}",
        a.dr_parts.id
    );
}

#[test]
fn dbrl_links_three_of_four() {
    // masked rows: (1,0),(1,0),(2,1),(1,1)
    // record 0 -> nearest original is row 1 (distance 0), not itself: 0
    // records 1..3 -> their own originals at distance 0, unique: 1 each
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.dr_parts.dbrl - 75.0).abs() < TOL,
        "dbrl = {}",
        a.dr_parts.dbrl
    );
}

#[test]
fn prl_links_three_of_four() {
    // full-agreement candidates are unique for records 1..3 and point to
    // row 1 (not 0) for record 0; with m > u the full-agreement pattern
    // dominates, so PRL = 75 regardless of the exact EM estimates
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.dr_parts.prl - 75.0).abs() < TOL,
        "prl = {}",
        a.dr_parts.prl
    );
}

#[test]
fn rsrl_candidate_sets_by_hand() {
    // window = max(1, 0.05·4) = 1 rank position.
    // original rank starts O: o0:0, o1:1, o2:3; N: n0:0, n1:2.
    // masked midranks O: o1 -> 1.0 (3 holders from rank 0), o2 -> 3.
    // record 0 (1,0): O∈{o0,o1}, N=n0 -> candidates {row0,row1}, self in -> 1/2
    // record 1 (1,0): same set -> 1/2
    // record 2 (2,1): O∈{o1,o2}, N=n1 -> {row2,row3} -> 1/2
    // record 3 (1,1): O∈{o0,o1}, N=n1 -> {row3} -> 1
    // RSRL = 100·(0.5+0.5+0.5+1)/4 = 62.5
    let a = evaluator().evaluate(&masked());
    assert!(
        (a.dr_parts.rsrl - 62.5).abs() < TOL,
        "rsrl = {}",
        a.dr_parts.rsrl
    );
}

#[test]
fn identity_reference_values() {
    // identity masking: IL components all zero; ID = 100; all four rows
    // are distinct so DBRL = PRL = 100.
    // RSRL by hand: midranks O: o0->0, o1->1.5, o2->3; candidate sets
    // {row0,row1}, {row1}, {row2,row3}, {row3} -> (0.5+1+0.5+1)/4 = 75.
    let a = evaluator().evaluate(&original());
    assert!(a.il_parts.ctbil.abs() < TOL);
    assert!(a.il_parts.dbil.abs() < TOL);
    assert!(a.il_parts.ebil.abs() < TOL);
    assert!((a.dr_parts.id - 100.0).abs() < TOL);
    assert!((a.dr_parts.dbrl - 100.0).abs() < TOL);
    assert!((a.dr_parts.prl - 100.0).abs() < TOL);
    assert!(
        (a.dr_parts.rsrl - 75.0).abs() < TOL,
        "rsrl = {}",
        a.dr_parts.rsrl
    );
}

#[test]
fn aggregates_follow_from_components() {
    let a = evaluator().evaluate(&masked());
    let il = (a.il_parts.ctbil + a.il_parts.dbil + a.il_parts.ebil) / 3.0;
    let dr = (a.dr_parts.id + a.dr_parts.dbrl + a.dr_parts.prl + a.dr_parts.rsrl) / 4.0;
    assert!((a.il() - il).abs() < 1e-12);
    assert!((a.dr() - dr).abs() < 1e-12);
}

#[test]
fn blocked_backend_reproduces_the_hand_checked_numbers() {
    // the same file under both linkage backends: assessments must be
    // assert_eq!-identical, so every hand-derived number above holds for
    // the blocked scans verbatim
    let orig = original();
    let pairs = Evaluator::new(
        &orig,
        MetricConfig {
            linkage: LinkageMode::Pairs,
            ..MetricConfig::default()
        },
    )
    .unwrap();
    let blocked = evaluator(); // LinkageMode::Blocked is the default
    for m in [original(), masked()] {
        assert_eq!(pairs.evaluate(&m), blocked.evaluate(&m));
    }
}

#[test]
fn blocked_tie_mass_expands_duplicate_originals_by_hand() {
    // original with a duplicated row — (1,0) appears twice:
    //
    // | row | O | N |   distinct patterns: (1,0)×2, (2,1)×1, (1,1)×1
    // |-----|---|---|
    // | 0   | 1 | 0 |
    // | 1   | 1 | 0 |
    // | 2   | 2 | 1 |
    // | 3   | 1 | 1 |
    //
    // identity masking: record 0 sits at distance 0 from originals 0 AND 1,
    // so its tie set has two members and the credit is 1/2. The blocked
    // scan sees ONE original pattern (1,0) with multiplicity 2 and must
    // expand the tie mass to the same 2 — per-record and batch.
    let dup = SubTable::new(
        schema(),
        vec![0, 1],
        vec![vec![1, 1, 2, 1], vec![0, 0, 1, 1]],
    )
    .unwrap();
    let prep = PreparedOriginal::new(&dup);
    let index = PatternIndex::build(&dup);
    assert_eq!(prep.pattern_index().n_patterns(), 3);
    let expected = [0.5, 0.5, 1.0, 1.0];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(dbrl_credit_blocked(&prep, &dup, i), want, "record {i}");
        assert_eq!(dbrl_credit(&prep, &dup, i), want, "record {i} (pairs)");
    }
    assert_eq!(dbrl_credits_blocked(&prep, &dup, &index), expected.to_vec());
}

#[test]
fn incremental_path_matches_full_exactly() {
    // the 0->1 mutation changes o0's and o1's masked counts, so the
    // midranks of *untouched* records' values move too (o1: 1.5 -> 1.0).
    // The midrank-aware relink re-credits their holders, making the
    // incremental RSRL the exact 62.5 of `rsrl_candidate_sets_by_hand` —
    // under the old touched-rows-only approximation records 1..3 kept
    // their identity-run credits and the patched state read 75.
    let ev = evaluator();
    let orig = original();
    let state0 = ev.assess(&orig);
    let m = masked();
    let state1 = ev.reassess_mutation(&state0, &m, 0, 0, 0);
    let full = ev.assess(&m);
    assert_eq!(
        state1.assessment, full.assessment,
        "patched state must equal the full recompute bit for bit"
    );
    assert!((state1.assessment.dr_parts.dbrl - 75.0).abs() < TOL);
    assert!(
        (state1.assessment.dr_parts.rsrl - 62.5).abs() < TOL,
        "incremental rsrl = {}",
        state1.assessment.dr_parts.rsrl
    );
}
